//! The threaded execution engine: one OS thread per simulated node.
//!
//! This mode is the shape of the paper's actual deployment: every node runs
//! a control loop draining one-sided active messages from the
//! [`armci_sim`] fabric, executing message handlers, spilling mobile
//! objects through a per-node I/O thread pool (a real [`SegmentStore`] or
//! [`FileStore`] when a spill directory is configured), and participating
//! in **Safra's ring-token termination detection**. Handlers may spawn
//! child tasks on the node's computing-layer pool (work-stealing or FIFO).
//!
//! ## I/O–compute overlap
//!
//! The storage pipeline is built to mask disk latency behind computation,
//! the paper's headline mechanism:
//!
//! * **Message-driven prefetch** — a message arriving for an on-disk
//!   object queues a look-ahead load instead of stalling; loads are
//!   issued under a bounded prefetch window (`prefetch_window_objects` /
//!   `prefetch_window_bytes`) so the disk streams the next objects in
//!   while handlers drain the current ones.
//! * **Resident-first scheduling** — the node keeps executing in-core
//!   objects while loads are in flight, and a look-ahead load is paced:
//!   it is issued only when admission can be paid for by evicting *idle*
//!   objects, so prefetch never displaces anything with queued work.
//! * **Non-blocking storage ops** — `io_threads` workers share the spill
//!   store; object pack/unpack runs on them, off the node's control
//!   thread, and the segmented spill log coalesces writes.
//!
//! Statistics are wall-clock: computation is time spent inside handlers
//! (and packing/unpacking, wherever it runs), disk is the I/O pool's
//! measured busy time, and communication is charged from the configured
//! network model per message (the in-process fabric itself is too fast to
//! measure meaningfully).

#[allow(unused_imports)]
use crate::audit::{audit_emit, RuntimeEvent};
use crate::compute::{ExecutorKind, FifoPool, SequentialBackend, TaskBackend, WorkStealingPool};
use crate::config::{MrtsConfig, SpillBackend};
use crate::ctx::{Ctx, Effect};
use crate::directory::Directory;
use crate::fault::{is_out_of_space, FaultPlan, FaultyStore, MrtsError, RetryPolicy};
use crate::ids::{HandlerId, MobilePtr, NodeId, ObjectId};
use crate::locality::LocalityMap;
use crate::msg::{Message, MulticastInfo};
use crate::netfault::{NetFaultKind, NetFaultPlan};
use crate::object::{MobileObject, Registry};
use crate::ooc::{EvictCandidate, OocManager};
use crate::policy::AccessMeta;
use crate::relnet::{ReliableReceiver, ReliableSender, Safra, TimerAction};
use crate::replay::{Decision, DecisionLog, IoKind, STEAL_DENIED};
use crate::sched::VictimCursor;
use crate::stats::{NodeStats, RunStats};
use crate::storage::{FileStore, MemStore, SegmentStore, StorageBackend};
use armci_sim::{ActiveMessage, Endpoint, Fabric, NetworkModel};
use crossbeam_channel as channel;
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

// Fabric active-message tags.
const AM_MSG: u32 = 1;
const AM_DIR_UPDATE: u32 = 2;
const AM_MIGRATE_REQ: u32 = 3;
const AM_INSTALL: u32 = 4;
const AM_MC_START: u32 = 5;
const AM_META: u32 = 6;
const AM_TOKEN: u32 = 7;
const AM_EXIT: u32 = 8;
/// Positive acknowledgement of one reliable-layer sequence number
/// (net-fault runs only; see [`NetLayer`]).
const AM_ACK: u32 = 9;
/// An idle node asking a peer for one ready task (payload: thief id).
const AM_STEAL_REQ: u32 = 10;
/// The victim had nothing stealable (payload: victim id). A grant has no
/// tag of its own — the stolen object arrives as a regular `AM_INSTALL`.
const AM_STEAL_DENY: u32 = 11;

const META_LOCK: u8 = 0;
const META_UNLOCK: u8 = 1;
const META_PRIO: u8 = 2;

enum TState {
    InCore(Box<dyn MobileObject>),
    OnDisk,
    Loading,
    Moved(NodeId),
}

struct TEntry {
    state: TState,
    queue: VecDeque<Message>,
    meta: AccessMeta,
    priority: u8,
    locked: bool,
    footprint: usize,
    packed_len: usize,
    spill_key: Option<u64>,
    pending_migration: Option<NodeId>,
    /// The object sits in `pending_loads` awaiting issue.
    load_queued: bool,
    /// Queued by cluster prefetch (a demand load faulted on a clustermate)
    /// rather than by pending work of its own; keeps the entry alive in
    /// `pending_loads` despite an empty queue, and is counted/cleared when
    /// the load issues.
    prefetch_hint: bool,
    /// The object's latest spill is still in the I/O pool: a load for its
    /// key must wait until the store lands (the pool is not FIFO).
    store_inflight: bool,
    /// Mutation version: bumped after every handler run and on migration
    /// install, never by a read-only load. The dirty-tracking basis for
    /// clean-eviction elision.
    version: u64,
    /// The mutation version the on-disk bytes correspond to (`None` until
    /// the first store lands, and after any store failure).
    stored_version: Option<u64>,
}

impl TEntry {
    /// On-disk bytes current: a spill key exists, the last store landed,
    /// and no handler has mutated the object since that store. Evicting a
    /// clean object needs no re-pack and no write.
    fn is_clean(&self) -> bool {
        self.spill_key.is_some()
            && !self.store_inflight
            && self.stored_version == Some(self.version)
    }
}

enum IoReq {
    /// Pack `obj` on the I/O thread and persist it under `key`.
    Store {
        key: u64,
        obj: Box<dyn MobileObject>,
        oid: ObjectId,
    },
    /// Pack every object on the I/O thread and persist the batch through
    /// one [`StorageBackend::store_batch`] call — a single coalesced
    /// append (one syscall, one sync decision) on the segment log.
    StoreBatch {
        items: Vec<(u64, Box<dyn MobileObject>, ObjectId)>,
    },
    Load {
        key: u64,
        oid: ObjectId,
    },
    /// Install the locality-curve rank per spill key in the store (see
    /// [`StorageBackend::set_key_ranks`]). Fire-and-forget: no `IoDone`
    /// reply, so it never counts against `outstanding_io`.
    SetRanks(Vec<(u64, u64)>),
    /// Health check of the spill store (degraded-mode recovery).
    Probe,
    Shutdown,
}

enum IoDone {
    Stored {
        oid: ObjectId,
        packed_len: usize,
        io_dur: Duration,
        pack_dur: Duration,
        retries: u32,
        faults: usize,
        /// The pack buffer came from the I/O pool's buffer pool.
        pool_hit: bool,
        /// Compactions triggered by this store that rewrote live records
        /// in locality-curve order.
        reorders: usize,
    },
    /// A whole [`IoReq::StoreBatch`] landed; `items` are per-object
    /// `(oid, packed_len)` in batch order.
    StoredBatch {
        items: Vec<(ObjectId, usize)>,
        io_dur: Duration,
        pack_dur: Duration,
        retries: u32,
        faults: usize,
        pool_hits: usize,
        /// Compactions triggered by this batch that rewrote live records
        /// in locality-curve order.
        reorders: usize,
    },
    /// A batch store failed as a whole (a prefix may have landed, but no
    /// record is trusted); every object is reconstituted for the control
    /// thread to reinstate in-core.
    StoreBatchFailed {
        items: Vec<(ObjectId, Box<dyn MobileObject>)>,
        io_dur: Duration,
        pack_dur: Duration,
        retries: u32,
        faults: usize,
    },
    Loaded {
        oid: ObjectId,
        obj: Box<dyn MobileObject>,
        packed_len: usize,
        io_dur: Duration,
        unpack_dur: Duration,
        retries: u32,
        faults: usize,
        /// Sequential-read tracker drained from the store with this load:
        /// `(loads served, segment switches)` — see
        /// [`StorageBackend::take_read_stats`].
        seg_reads: u64,
        seg_switches: u64,
    },
    /// The store rejected the object after exhausting the retry policy
    /// (or reported `ENOSPC`). `obj` is reconstituted from the packed
    /// bytes so the control thread can reinstate it in-core.
    StoreFailed {
        oid: ObjectId,
        obj: Box<dyn MobileObject>,
        io_dur: Duration,
        pack_dur: Duration,
        retries: u32,
        faults: usize,
    },
    /// A spilled object could not be read back — unrecoverable (the
    /// object exists nowhere else).
    LoadFailed {
        oid: ObjectId,
        error: std::io::Error,
        attempts: u32,
        retries: u32,
        faults: usize,
    },
    Probed {
        ok: bool,
        faults: usize,
    },
}

/// The `(kind, key)` identity of an I/O completion, for decision
/// matching during record/replay: the pool's per-key ordering makes it
/// unique among in-flight operations (batches are identified by their
/// first object; health probes carry no key).
fn io_done_key(d: &IoDone) -> (IoKind, u64) {
    match d {
        IoDone::Stored { oid, .. } => (IoKind::Stored, oid.0),
        IoDone::StoredBatch { items, .. } => (
            IoKind::StoredBatch,
            items.first().map_or(0, |(oid, _)| oid.0),
        ),
        IoDone::StoreBatchFailed { items, .. } => (
            IoKind::StoreBatchFailed,
            items.first().map_or(0, |(oid, _)| oid.0),
        ),
        IoDone::Loaded { oid, .. } => (IoKind::Loaded, oid.0),
        IoDone::StoreFailed { oid, .. } => (IoKind::StoreFailed, oid.0),
        IoDone::LoadFailed { oid, .. } => (IoKind::LoadFailed, oid.0),
        IoDone::Probed { .. } => (IoKind::Probed, 0),
    }
}

/// Per-worker record/replay role (see `mrts::replay`). `Off` is the
/// default and costs one enum-discriminant check per channel poll.
enum ReplayRole {
    Off,
    /// Append every nondeterministic decision to the log.
    Record(Vec<Decision>),
    /// Substitute recorded decisions for live nondeterminism.
    Replay(Box<ReplayState>),
}

/// Sequencer state for one replaying worker: the recorded decision
/// stream plus holding buffers for events that arrived before the log
/// says they may be observed.
struct ReplayState {
    log: Vec<Decision>,
    cursor: usize,
    /// Fabric frames received while waiting for a different edge.
    fabric_buf: VecDeque<ActiveMessage>,
    /// I/O completions received while waiting for a different key.
    io_buf: VecDeque<IoDone>,
    /// The schedule could not be followed (mismatch, timeout, or log
    /// exhaustion): the worker fell back to live execution. Buffered
    /// items are always consumed before the channels.
    live: bool,
    /// How long a replaying worker waits for the recorded next event
    /// before declaring a divergence ([`MrtsConfig::replay_wait`]).
    wait: Duration,
}

struct McWait {
    info: MulticastInfo,
    handler: HandlerId,
    payload: Vec<u8>,
    waiting: Vec<ObjectId>,
}

/// Reliable-delivery state for one node, active only when
/// [`MrtsConfig::net_fault`] is set (fault-free runs bypass the layer
/// entirely, so their fast path is untouched).
///
/// Every remote data message (every tag except `AM_TOKEN` / `AM_EXIT` /
/// `AM_ACK`) gets a per-destination sequence number, is buffered until the
/// receiver acknowledges it, and is retransmitted on a bounded-exponential
/// backoff ([`RetryPolicy`]). The receiver acks every arrival, suppresses
/// duplicates, and *releases* frames strictly in per-source sequence
/// order — restoring the per-edge FIFO the fault-free fabric provides, so
/// handler execution under drop/duplicate/reorder faults is exactly-once
/// and in-order, and the mesh comes out byte-identical. The token/exit
/// control ring is deliberately out of scope: it models a reliable
/// control plane and stays out of the race detector's channel FIFOs,
/// whose stamp order faults would otherwise scramble (see `DESIGN.md`
/// §11).
struct NetLayer {
    plan: NetFaultPlan,
    /// Protocol state, sender half: sequence assignment plus the
    /// unacknowledged-frame buffer (see [`crate::relnet`]; the same
    /// state machine the loom suite model-checks).
    tx: ReliableSender,
    /// Protocol state, receiver half: dedup plus in-order release.
    rx: ReliableReceiver,
    /// Backoff deadline per outstanding frame. Physical timing lives
    /// here, outside the deterministic protocol core.
    timers: HashMap<(NodeId, u64), Instant>,
    /// Transmissions deferred by an injected delay/reorder fault:
    /// `(due, dest, tag, frame)`.
    deferred: Vec<(Instant, NodeId, u32, Vec<u8>)>,
    /// Handlers executed on this node, for the kill countdown.
    handlers_run: u64,
    /// This node crashes once `handlers_run` reaches this bound — after
    /// finishing that handler (its sends are in flight, possibly
    /// unacknowledged) but before touching anything else.
    kill_at: Option<u64>,
}

struct Worker {
    node: NodeId,
    n_nodes: usize,
    cfg: MrtsConfig,
    registry: std::sync::Arc<Registry>,
    ep: Endpoint,
    table: HashMap<ObjectId, TEntry>,
    ooc: OocManager,
    dir: Directory,
    ready: VecDeque<ObjectId>,
    io_tx: channel::Sender<IoReq>,
    io_rx: channel::Receiver<IoDone>,
    outstanding_io: usize,
    /// Queued-but-on-disk objects awaiting a load slot, in arrival order.
    pending_loads: VecDeque<ObjectId>,
    /// Loads currently in the I/O pool, for the prefetch window.
    inflight_load_objs: usize,
    inflight_load_bytes: usize,
    /// Adjacency-learned locality ordering (see `mrts::locality`); fed
    /// from handler sends, consumed by eviction, cluster prefetch, and
    /// rank shipping to the spill store. Unused when `cfg.locality` is
    /// off.
    locality: LocalityMap,
    /// Ordering generation last shipped to the store via
    /// [`IoReq::SetRanks`], plus the `next_spill_key` watermark at that
    /// shipment (spill keys are assigned monotonically, so the watermark
    /// bounds how many keys are new since).
    ranks_gen: u64,
    ranks_keys: usize,
    /// Curve key of the most recent demand anchor; successive anchors
    /// estimate which way the access front is moving along the curve, so
    /// cluster prefetch pulls mates ahead of the front, not behind it.
    last_anchor_key: u64,
    backend: Box<dyn TaskBackend>,
    stats: NodeStats,
    next_obj_seq: u64,
    next_spill_key: u64,
    multicasts: Vec<McWait>,
    safra: Safra,
    done: bool,
    /// Reliable-delivery layer; `Some` only under a net-fault plan.
    net: Option<NetLayer>,
    /// Crashed by the plan's `kill_node`: silent until the exit broadcast.
    dead: bool,
    /// A degraded-mode health probe is in the I/O pool.
    probe_inflight: bool,
    /// First unrecoverable storage failure seen by this node.
    fatal: Option<MrtsError>,
    /// Record/replay role of this worker (see `mrts::replay`).
    replay: ReplayRole,
    /// Victim of the steal request this node is awaiting an answer to
    /// (`AM_INSTALL` or `AM_STEAL_DENY`); at most one in flight.
    steal_inflight: Option<NodeId>,
    /// Round-robin victim selection for work stealing.
    victim_cursor: VictimCursor,
    /// Consecutive empty idle polls; a steal fires only after
    /// `cfg.steal_patience` of them, so transient gaps don't migrate work.
    empty_polls: u32,
    /// Consecutive denials since the last successful steal or local
    /// handler run; at `n_nodes - 1` every peer said no and requests stop
    /// until new work arrives (otherwise an all-idle fabric would trade
    /// steal requests forever and Safra could never terminate).
    deny_streak: u32,
    #[cfg(any(feature = "audit", debug_assertions))]
    audit: Option<std::sync::Arc<dyn crate::audit::EventSink>>,
    #[cfg(any(feature = "audit", debug_assertions))]
    race: Option<std::sync::Arc<crate::audit::RaceDetector>>,
}

impl Worker {
    fn comm_charge(&mut self, bytes: usize) {
        self.stats.comm += self.cfg.net.transfer_time(bytes);
    }

    /// Snapshot this node's memory accounting for the invariant checker.
    /// `enforced = false` on paths where the engine deliberately overshoots
    /// the budget (reloads, bootstrap) before evicting back down.
    #[allow(unused_variables)]
    fn audit_budget(&self, enforced: bool) {
        #[cfg(any(feature = "audit", debug_assertions))]
        {
            if let Some(sink) = self.audit.as_ref() {
                sink.record(&RuntimeEvent::Budget {
                    node: self.node,
                    used: self.ooc.used(),
                    budget: self.ooc.budget(),
                    hard_reserve: self.ooc.hard_reserve(),
                    // Degraded mode deliberately overshoots the budget.
                    enforced: enforced && !self.ooc.is_degraded(),
                });
            }
        }
    }

    /// Happens-before edge out: stamp this node's vector clock onto the
    /// (self → to) channel. Must pair 1:1 with fabric sends so the
    /// detector's channel FIFOs stay aligned with the fabric's.
    #[allow(unused_variables)]
    fn race_send(&self, to: NodeId) {
        #[cfg(any(feature = "audit", debug_assertions))]
        {
            if let Some(r) = self.race.as_ref() {
                r.on_send(self.node, to);
            }
        }
    }

    /// Happens-before edge in: join the sender's stamp from the
    /// (from → self) channel.
    #[allow(unused_variables)]
    fn race_recv(&self, from: NodeId) {
        #[cfg(any(feature = "audit", debug_assertions))]
        {
            if let Some(r) = self.race.as_ref() {
                r.on_recv(self.node, from);
            }
        }
    }

    /// Record a (write) access to a mobile object's bytes by this worker
    /// thread. Every touch of object state — handler execution, pack for
    /// spill or migration, unpack on load or install — is a write from the
    /// detector's point of view.
    #[allow(unused_variables)]
    fn race_access(&self, oid: ObjectId) {
        #[cfg(any(feature = "audit", debug_assertions))]
        {
            if let Some(r) = self.race.as_ref() {
                r.on_access(self.node, oid, true);
            }
        }
    }

    fn am(&mut self, dest: NodeId, tag: u32, payload: Vec<u8>) {
        let bytes = payload.len();
        if self.net.is_some() && dest != self.node {
            if tag == AM_TOKEN || tag == AM_EXIT {
                // Control ring: modeled as a reliable control plane (out of
                // fault scope) and kept out of the race detector's channel
                // FIFOs, whose stamp order would no longer match the data
                // stream's under faults.
                self.ep.am_send(dest, tag, payload);
                self.comm_charge(bytes);
                return;
            }
            // Reliable-delivery path. Safra, the race detector, and the
            // comm meter account the *logical* send exactly once, here —
            // retransmits and duplicate copies are invisible to them.
            self.race_send(dest);
            self.comm_charge(bytes);
            self.safra.on_send();
            self.net_send(dest, tag, payload);
            return;
        }
        self.race_send(dest);
        self.ep.am_send(dest, tag, payload);
        if dest != self.node {
            self.comm_charge(bytes);
            if tag != AM_TOKEN && tag != AM_EXIT {
                self.safra.on_send();
            }
        }
    }

    /// An object's home node in *this* fabric. After a checkpoint restore
    /// onto fewer nodes than the capture ran with, ids homed on a lost
    /// node wrap onto a survivor — the same modulo the restore placement
    /// uses, so routing and placement agree.
    fn home_of(&self, oid: ObjectId) -> NodeId {
        (oid.home() as usize % self.n_nodes) as NodeId
    }

    fn dir_next_hop(&self, oid: ObjectId) -> NodeId {
        let d = self.dir.lookup(oid);
        let d = (d as usize % self.n_nodes) as NodeId;
        if d == self.node {
            self.home_of(oid)
        } else {
            d
        }
    }

    fn entry_present(&self, oid: ObjectId) -> bool {
        matches!(self.table.get(&oid), Some(e) if !matches!(e.state, TState::Moved(_)))
    }

    // ----- record/replay sequencing (see mrts::replay) ----------------------

    /// Append one decision in record mode; no-op otherwise.
    fn record_decision(&mut self, d: Decision) {
        if let ReplayRole::Record(log) = &mut self.replay {
            log.push(d);
            self.stats.decisions_recorded += 1;
        }
    }

    /// The schedule can no longer be followed: count it once and fall
    /// back to live execution for the rest of the run.
    fn replay_diverge(&mut self, st: &mut ReplayState) {
        if !st.live {
            st.live = true;
            self.stats.replay_divergences += 1;
        }
    }

    /// Raw fabric poll: the control loop's non-blocking drain, or the
    /// brief idle wait of step 6.
    fn fabric_poll_raw(&mut self, idle: bool) -> Option<ActiveMessage> {
        if idle {
            self.ep.recv_timeout(Duration::from_micros(500))
        } else {
            self.ep.try_recv()
        }
    }

    /// One fabric poll, virtualized for record/replay: in record mode
    /// the outcome (which edge won, or nothing ripe) is logged; in
    /// replay mode the recorded outcome is substituted — the sequencer
    /// waits for the recorded edge's next frame, buffering others.
    fn recv_fabric(&mut self, idle: bool) -> Option<ActiveMessage> {
        if matches!(self.replay, ReplayRole::Replay(_)) {
            let ReplayRole::Replay(mut st) = std::mem::replace(&mut self.replay, ReplayRole::Off)
            else {
                unreachable!("matched Replay above")
            };
            let out = self.replay_recv_fabric(&mut st, idle);
            self.replay = ReplayRole::Replay(st);
            return out;
        }
        let am = self.fabric_poll_raw(idle);
        if matches!(self.replay, ReplayRole::Record(_)) {
            match &am {
                Some(m) => self.record_decision(Decision::FabricRecv {
                    src: m.src,
                    tag: m.handler,
                }),
                None => self.record_decision(Decision::FabricEmpty),
            }
        }
        am
    }

    fn replay_recv_fabric(&mut self, st: &mut ReplayState, idle: bool) -> Option<ActiveMessage> {
        if !st.live {
            match st.log.get(st.cursor) {
                Some(Decision::FabricEmpty) => {
                    // Frames may already sit in the channel that the
                    // recorded run had not yet observed; leave them there.
                    st.cursor += 1;
                    return None;
                }
                Some(&Decision::FabricRecv { src, tag }) => {
                    // Per-edge FIFO: the next frame from `src` is exactly
                    // the recorded one.
                    if let Some(i) = st.fabric_buf.iter().position(|m| m.src == src) {
                        let m = st.fabric_buf.remove(i).expect("position() index in bounds");
                        if m.handler == tag {
                            st.cursor += 1;
                            return Some(m);
                        }
                        // Same edge, different tag: genuinely diverged.
                        st.fabric_buf.push_front(m);
                        self.replay_diverge(st);
                    } else {
                        let deadline = Instant::now() + st.wait;
                        loop {
                            match self.ep.recv_timeout(Duration::from_micros(500)) {
                                Some(m) if m.src == src => {
                                    if m.handler == tag {
                                        st.cursor += 1;
                                        return Some(m);
                                    }
                                    st.fabric_buf.push_back(m);
                                    self.replay_diverge(st);
                                    break;
                                }
                                Some(m) => st.fabric_buf.push_back(m),
                                None => {}
                            }
                            if Instant::now() >= deadline {
                                self.replay_diverge(st);
                                break;
                            }
                        }
                    }
                }
                // Log exhausted, or a non-fabric decision at a fabric
                // poll: the schedule cannot be followed further.
                _ => self.replay_diverge(st),
            }
        }
        // Live fallback: always drain the holding buffer first.
        if let Some(m) = st.fabric_buf.pop_front() {
            return Some(m);
        }
        self.fabric_poll_raw(idle)
    }

    /// One I/O-completion poll, virtualized for record/replay. The
    /// post-termination drain blocks (`blocking = true`); the control
    /// loop's drain does not, and only the non-blocking form records
    /// `IoEmpty`.
    fn recv_io(&mut self, blocking: bool) -> Option<IoDone> {
        if matches!(self.replay, ReplayRole::Replay(_)) {
            let ReplayRole::Replay(mut st) = std::mem::replace(&mut self.replay, ReplayRole::Off)
            else {
                unreachable!("matched Replay above")
            };
            let out = self.replay_recv_io(&mut st, blocking);
            self.replay = ReplayRole::Replay(st);
            return out;
        }
        let done = if blocking {
            self.io_rx.recv().ok()
        } else {
            self.io_rx.try_recv().ok()
        };
        if matches!(self.replay, ReplayRole::Record(_)) {
            match &done {
                Some(d) => {
                    let (kind, oid) = io_done_key(d);
                    self.record_decision(Decision::IoDone { kind, oid });
                }
                None if !blocking => self.record_decision(Decision::IoEmpty),
                None => {}
            }
        }
        done
    }

    fn replay_recv_io(&mut self, st: &mut ReplayState, blocking: bool) -> Option<IoDone> {
        if !st.live {
            match st.log.get(st.cursor) {
                // A blocking drain never recorded an empty poll; seeing
                // one here is a divergence handled by the catch-all.
                Some(Decision::IoEmpty) if !blocking => {
                    st.cursor += 1;
                    return None;
                }
                Some(&Decision::IoDone { kind, oid }) => {
                    if let Some(i) = st.io_buf.iter().position(|d| io_done_key(d) == (kind, oid)) {
                        st.cursor += 1;
                        return st.io_buf.remove(i);
                    }
                    let deadline = Instant::now() + st.wait;
                    loop {
                        if let Ok(d) = self.io_rx.recv_timeout(Duration::from_micros(500)) {
                            if io_done_key(&d) == (kind, oid) {
                                st.cursor += 1;
                                return Some(d);
                            }
                            st.io_buf.push_back(d);
                        }
                        if Instant::now() >= deadline {
                            self.replay_diverge(st);
                            break;
                        }
                    }
                }
                _ => self.replay_diverge(st),
            }
        }
        if let Some(d) = st.io_buf.pop_front() {
            return Some(d);
        }
        if blocking {
            self.io_rx.recv().ok()
        } else {
            self.io_rx.try_recv().ok()
        }
    }

    // ----- reliable delivery (net-fault runs) -------------------------------

    /// Assign the next sequence number on the `self → dest` edge, record
    /// the frame for retransmission, and physically transmit it.
    fn net_send(&mut self, dest: NodeId, tag: u32, payload: Vec<u8>) {
        let (seq, frame) = {
            let net = self.net.as_mut().expect("net layer");
            let (seq, frame) = net.tx.next_frame(dest, tag, &payload);
            net.timers
                .insert((dest, seq), Instant::now() + self.cfg.retry.delay(1, seq));
            (seq, frame)
        };
        self.transmit(dest, tag, seq, frame, 0);
    }

    /// One physical transmission, subject to the fault plan. Drops,
    /// duplicates and delays are injected here — below the logical
    /// accounting, so they only show up as retransmits and suppressed
    /// duplicates, never as semantics.
    fn transmit(&mut self, dest: NodeId, tag: u32, seq: u64, frame: Vec<u8>, attempt: u32) {
        let plan = self.net.as_ref().expect("net layer").plan;
        let d = plan.decide(self.node, dest, seq, attempt);
        if d.drop {
            self.stats.messages_dropped += 1;
            audit_emit!(
                self.audit,
                RuntimeEvent::NetFault {
                    node: self.node,
                    dest,
                    kind: NetFaultKind::Drop
                }
            );
            return;
        }
        if d.duplicate {
            audit_emit!(
                self.audit,
                RuntimeEvent::NetFault {
                    node: self.node,
                    dest,
                    kind: NetFaultKind::Duplicate
                }
            );
            self.ep.am_send(dest, tag, frame.clone());
        }
        if d.delay.is_zero() {
            self.ep.am_send(dest, tag, frame);
        } else {
            #[allow(unused_variables)] // consumed only by audit_emit!
            let kind = if d.delay > plan.delay {
                NetFaultKind::Reorder
            } else {
                NetFaultKind::Delay
            };
            audit_emit!(
                self.audit,
                RuntimeEvent::NetFault {
                    node: self.node,
                    dest,
                    kind
                }
            );
            self.net.as_mut().expect("net layer").deferred.push((
                Instant::now() + d.delay,
                dest,
                tag,
                frame,
            ));
        }
    }

    /// Arrival of a reliable-layer frame: ack it, dedup it, hold it for
    /// in-order release. Handler execution happens only at release, so a
    /// duplicated or reordered transmission can never run a handler twice
    /// or out of order.
    fn on_net_arrival(&mut self, am: ActiveMessage) {
        let src = am.src;
        let seq = u64::from_le_bytes(am.payload[..8].try_into().expect("seq prefix"));
        // Ack every arrival, duplicates included: the previous ack may
        // have raced the sender's retransmit timer.
        self.stats.acks_sent += 1;
        self.comm_charge(8);
        self.ep.am_send(src, AM_ACK, seq.to_le_bytes().to_vec());
        let accepted = self.net.as_mut().expect("net layer").rx.accept(
            src,
            seq,
            am.handler,
            am.payload[8..].to_vec(),
        );
        if !accepted {
            self.stats.dup_suppressed += 1;
            audit_emit!(
                self.audit,
                RuntimeEvent::DupSuppressed {
                    node: self.node,
                    src,
                    seq
                }
            );
            return;
        }
        // Release every consecutive frame from the watermark up.
        while let Some((tag, payload)) = self.net.as_mut().expect("net layer").rx.next_release(src)
        {
            self.release(src, tag, &payload);
            if self.done {
                break;
            }
        }
    }

    /// In-order release of one logical message: every fault-free receive
    /// effect (happens-before edge, Safra counter, comm charge, handler
    /// dispatch) happens here, exactly once per logical message.
    fn release(&mut self, src: NodeId, tag: u32, payload: &[u8]) {
        self.race_recv(src);
        self.safra.on_deliver();
        self.comm_charge(payload.len());
        self.dispatch_data(tag, payload);
    }

    /// Crash this node if the plan's kill countdown has expired.
    fn check_kill(&mut self) -> bool {
        if self.dead {
            return true;
        }
        if let Some(net) = self.net.as_ref() {
            if net.kill_at.is_some_and(|k| net.handlers_run >= k) {
                self.dead = true;
            }
        }
        self.dead
    }

    /// Retransmissions before a destination is declared unreachable:
    /// generous enough for the bounded-drop guarantee to land both the
    /// frame and its ack with margin, so only a genuinely dead peer ever
    /// exhausts it.
    fn net_attempt_limit(&self) -> u32 {
        let plan = &self.net.as_ref().expect("net layer").plan;
        self.cfg.retry.max_attempts.max(4) + 2 * plan.max_drops_per_msg + 4
    }

    /// Drive the reliable layer's timers: flush deferred (delayed)
    /// transmissions that have come due and retransmit unacked messages
    /// whose backoff deadline passed, escalating once a peer exhausts the
    /// retry budget.
    fn net_pump(&mut self) {
        if self.net.is_none() || self.dead || self.done {
            return;
        }
        // Replay: fire deferred flushes and timers at the logged points
        // instead of consulting the wall clock.
        if matches!(self.replay, ReplayRole::Replay(_)) {
            let ReplayRole::Replay(mut st) = std::mem::replace(&mut self.replay, ReplayRole::Off)
            else {
                unreachable!("matched Replay above")
            };
            let mut handled = false;
            if !st.live {
                self.replay_net_pump(&mut st);
                handled = !st.live;
            }
            self.replay = ReplayRole::Replay(st);
            if handled {
                return;
            }
            // Diverged (now or earlier): fall through to the live pump.
        }
        let now = Instant::now();
        loop {
            let due = {
                let net = self.net.as_mut().expect("net layer");
                match net.deferred.iter().position(|(t, ..)| *t <= now) {
                    Some(i) => net.deferred.swap_remove(i),
                    None => break,
                }
            };
            let (_, dest, tag, frame) = due;
            let seq = u64::from_le_bytes(frame[..8].try_into().expect("seq prefix"));
            self.record_decision(Decision::FlushDeferred { dest, seq });
            self.ep.am_send(dest, tag, frame);
        }
        let limit = self.net_attempt_limit();
        let due: Vec<(NodeId, u64)> = self
            .net
            .as_ref()
            .expect("net layer")
            .timers
            .iter()
            .filter(|(_, t)| **t <= now)
            .map(|(&k, _)| k)
            .collect();
        for (dest, seq) in due {
            self.record_decision(Decision::TimerExpire { dest, seq });
            let action = {
                let net = self.net.as_mut().expect("net layer");
                let action = net.tx.on_timer(dest, seq, limit);
                match &action {
                    TimerAction::Retransmit { attempt, .. } => {
                        net.timers
                            .insert((dest, seq), now + self.cfg.retry.delay(attempt + 1, seq));
                    }
                    TimerAction::Acked | TimerAction::GiveUp { .. } => {
                        net.timers.remove(&(dest, seq));
                    }
                }
                action
            };
            match action {
                TimerAction::Acked => {}
                TimerAction::GiveUp {
                    tag,
                    frame,
                    attempts,
                } => {
                    self.escalate(dest, tag, &frame, attempts);
                    if self.done {
                        // Both pump exits record their end marker, or a
                        // replay desynchronizes right here.
                        self.record_decision(Decision::PumpEnd);
                        return;
                    }
                }
                TimerAction::Retransmit {
                    tag,
                    frame,
                    attempt,
                } => {
                    self.stats.retransmits += 1;
                    audit_emit!(
                        self.audit,
                        RuntimeEvent::Retransmit {
                            node: self.node,
                            dest,
                            seq,
                            attempt
                        }
                    );
                    self.transmit(dest, tag, seq, frame, attempt);
                }
            }
        }
        self.record_decision(Decision::PumpEnd);
    }

    /// Replay half of [`Worker::net_pump`]: consume recorded
    /// `FlushDeferred` / `TimerExpire` decisions up to the pump's
    /// recorded end marker, re-enacting each one against the reliable
    /// layer's (deterministically evolved) protocol state.
    fn replay_net_pump(&mut self, st: &mut ReplayState) {
        let limit = self.net_attempt_limit();
        loop {
            match st.log.get(st.cursor) {
                Some(Decision::PumpEnd) => {
                    st.cursor += 1;
                    return;
                }
                Some(&Decision::FlushDeferred { dest, seq }) => {
                    let net = self.net.as_mut().expect("net layer");
                    let pos = net.deferred.iter().position(|(_, d, _, frame)| {
                        *d == dest
                            && frame
                                .get(..8)
                                .is_some_and(|b| b == seq.to_le_bytes().as_slice())
                    });
                    match pos {
                        Some(i) => {
                            let (_, d, tag, frame) = net.deferred.swap_remove(i);
                            st.cursor += 1;
                            self.ep.am_send(d, tag, frame);
                        }
                        None => {
                            self.replay_diverge(st);
                            return;
                        }
                    }
                }
                Some(&Decision::TimerExpire { dest, seq }) => {
                    st.cursor += 1;
                    let action = {
                        let net = self.net.as_mut().expect("net layer");
                        let action = net.tx.on_timer(dest, seq, limit);
                        match &action {
                            TimerAction::Retransmit { attempt, .. } => {
                                net.timers.insert(
                                    (dest, seq),
                                    Instant::now() + self.cfg.retry.delay(attempt + 1, seq),
                                );
                            }
                            TimerAction::Acked | TimerAction::GiveUp { .. } => {
                                net.timers.remove(&(dest, seq));
                            }
                        }
                        action
                    };
                    match action {
                        TimerAction::Acked => {}
                        TimerAction::GiveUp {
                            tag,
                            frame,
                            attempts,
                        } => {
                            // The recorded run stopped pumping here; its
                            // PumpEnd marker is next and ends the loop.
                            self.escalate(dest, tag, &frame, attempts);
                        }
                        TimerAction::Retransmit {
                            tag,
                            frame,
                            attempt,
                        } => {
                            self.stats.retransmits += 1;
                            audit_emit!(
                                self.audit,
                                RuntimeEvent::Retransmit {
                                    node: self.node,
                                    dest,
                                    seq,
                                    attempt
                                }
                            );
                            self.transmit(dest, tag, seq, frame, attempt);
                        }
                    }
                }
                // Log exhausted or a foreign decision mid-pump.
                _ => {
                    self.replay_diverge(st);
                    return;
                }
            }
        }
    }

    /// A peer exhausted the retransmit budget — under the bounded-drop
    /// guarantee that means it is dead, or the hint that routed us there
    /// is stale. Cancel the logical send (restoring the global Safra sum),
    /// invalidate whatever routing state pointed at the peer, and either
    /// re-route the message toward the object's home or declare the peer
    /// unreachable.
    fn escalate(&mut self, dest: NodeId, tag: u32, frame: &[u8], attempts: u32) {
        self.safra.on_cancel();
        match tag {
            // A lazy hint push is an optimization; losing one is safe.
            AM_DIR_UPDATE => {}
            AM_MSG => {
                let msg = Message::decode(&frame[8..]).expect("valid message");
                let oid = msg.to.id;
                if self.dir.invalidate(oid) {
                    self.stats.hints_invalidated += 1;
                    audit_emit!(
                        self.audit,
                        RuntimeEvent::HintInvalidated {
                            node: self.node,
                            oid,
                            loc: dest
                        }
                    );
                }
                // A forwarding tombstone pointing at the dead peer is just
                // as stale as a directory hint.
                if matches!(
                    self.table.get(&oid),
                    Some(TEntry { state: TState::Moved(f), .. }) if *f == dest
                ) {
                    self.table.remove(&oid);
                }
                let next = self.dir_next_hop(oid);
                if self.entry_present(oid) {
                    // The object came back to us while the send was in
                    // flight; deliver locally.
                    self.route_msg(msg);
                } else if next != dest && next != self.node {
                    self.am(next, AM_MSG, msg.encode());
                } else {
                    self.fatal_unreachable(dest, attempts);
                }
            }
            _ => self.fatal_unreachable(dest, attempts),
        }
    }

    /// Unrecoverable: a peer is gone and an in-flight message cannot be
    /// re-routed. Record the typed error and bring the whole computation
    /// down (mirrors the unreadable-spill path).
    fn fatal_unreachable(&mut self, dest: NodeId, attempts: u32) {
        if self.fatal.is_none() {
            self.fatal = Some(MrtsError::NodeUnreachable {
                node: self.node,
                dest,
                attempts,
            });
        }
        for n in 0..self.n_nodes as NodeId {
            if n != self.node {
                self.am(n, AM_EXIT, vec![]);
            }
        }
        self.done = true;
        audit_emit!(self.audit, RuntimeEvent::Terminate { node: self.node });
    }

    // ----- message dispatch -------------------------------------------------

    fn on_fabric(&mut self, am: ActiveMessage) {
        if self.net.is_some() && am.src != self.node {
            match am.handler {
                AM_ACK => {
                    let seq = u64::from_le_bytes(am.payload[..8].try_into().expect("ack seq"));
                    let net = self.net.as_mut().expect("net layer");
                    net.tx.on_ack(am.src, seq);
                    net.timers.remove(&(am.src, seq));
                    return;
                }
                // Control ring: delivered directly, no race stamp (see
                // `am`).
                AM_TOKEN | AM_EXIT => {}
                _ => {
                    self.on_net_arrival(am);
                    return;
                }
            }
        } else {
            self.race_recv(am.src);
        }
        if am.src != self.node && am.handler != AM_TOKEN && am.handler != AM_EXIT {
            self.safra.on_deliver();
            self.comm_charge(am.payload.len());
        }
        match am.handler {
            AM_TOKEN => {
                self.safra.on_token(
                    am.payload[0] != 0,
                    i64::from_le_bytes(
                        am.payload[1..9]
                            .try_into()
                            .expect("ring token payload is 9 bytes"),
                    ),
                );
            }
            AM_EXIT => {
                self.done = true;
                audit_emit!(self.audit, RuntimeEvent::Terminate { node: self.node });
            }
            other => self.dispatch_data(other, &am.payload),
        }
    }

    /// Dispatch one data message (every tag except TOKEN/EXIT/ACK) to its
    /// handler. Under the reliable layer this runs exactly once per
    /// logical message, at in-order release.
    fn dispatch_data(&mut self, tag: u32, payload: &[u8]) {
        match tag {
            AM_MSG => {
                let msg = Message::decode(payload).expect("valid message");
                self.route_msg(msg);
            }
            AM_DIR_UPDATE => {
                let oid = ObjectId(u64::from_le_bytes(
                    payload[..8]
                        .try_into()
                        .expect("dir-update payload is 10 bytes"),
                ));
                let loc = u16::from_le_bytes(
                    payload[8..10]
                        .try_into()
                        .expect("dir-update payload is 10 bytes"),
                );
                self.dir.update(oid, loc);
                audit_emit!(
                    self.audit,
                    RuntimeEvent::DirUpdate {
                        node: self.node,
                        oid,
                        loc
                    }
                );
            }
            AM_MIGRATE_REQ => {
                let oid = ObjectId(u64::from_le_bytes(
                    payload[..8]
                        .try_into()
                        .expect("migrate-req payload is 10 bytes"),
                ));
                let dest = u16::from_le_bytes(
                    payload[8..10]
                        .try_into()
                        .expect("migrate-req payload is 10 bytes"),
                );
                self.on_migrate_req(oid, dest);
            }
            AM_INSTALL => self.on_install(payload),
            AM_MC_START => {
                let msg = Message::decode(payload).expect("valid mc message");
                let info = msg.multicast.clone().expect("mc info");
                self.on_mc_start(info, msg.handler, msg.payload);
            }
            AM_META => {
                let oid = ObjectId(u64::from_le_bytes(
                    payload[..8]
                        .try_into()
                        .expect("meta payload starts with an 8-byte oid"),
                ));
                let op = payload[8];
                let arg = payload[9];
                self.on_meta(oid, op, arg);
            }
            AM_STEAL_REQ => {
                let thief = u16::from_le_bytes(
                    payload[..2]
                        .try_into()
                        .expect("steal-req payload is 2 bytes"),
                );
                self.on_steal_req(thief);
            }
            AM_STEAL_DENY => {
                #[allow(unused_variables)] // consumed by the audit emission
                let victim = u16::from_le_bytes(
                    payload[..2]
                        .try_into()
                        .expect("steal-deny payload is 2 bytes"),
                );
                if self.steal_inflight.take().is_some() {
                    self.deny_streak += 1;
                }
                // The deny is logged thief-side, where the round-trip
                // resolves; the checker treats it as pure observability.
                audit_emit!(
                    self.audit,
                    RuntimeEvent::StealDeny {
                        node: victim,
                        to: self.node
                    }
                );
            }
            other => panic!("unknown AM tag {other}"),
        }
    }

    fn route_msg(&mut self, mut msg: Message) {
        let oid = msg.to.id;
        if !self.entry_present(oid) {
            // Forward along the last-known-location chain.
            let next = match self.table.get(&oid) {
                Some(TEntry {
                    state: TState::Moved(f),
                    ..
                }) => *f,
                _ => self.dir_next_hop(oid),
            };
            assert_ne!(next, self.node, "message stuck for {oid:?}");
            msg.route.push(self.node);
            self.stats.msgs_forwarded += 1;
            audit_emit!(
                self.audit,
                RuntimeEvent::Forward {
                    node: self.node,
                    oid,
                    to: next
                }
            );
            self.am(next, AM_MSG, msg.encode());
            return;
        }
        // Lazy directory updates for forwarded messages.
        if !msg.route.is_empty() {
            let mut upd = Vec::with_capacity(10);
            upd.extend_from_slice(&oid.0.to_le_bytes());
            upd.extend_from_slice(&self.node.to_le_bytes());
            for hop in msg.route.clone() {
                if hop != self.node {
                    self.am(hop, AM_DIR_UPDATE, upd.clone());
                }
            }
        }
        let e = self
            .table
            .get_mut(&oid)
            .expect("tracked object has a table entry");
        let was_empty = e.queue.is_empty();
        e.queue.push_back(msg);
        match e.state {
            TState::InCore(_) => {
                if was_empty {
                    self.ready.push_back(oid);
                }
            }
            TState::OnDisk => self.queue_load(oid),
            TState::Loading | TState::Moved(_) => {}
        }
    }

    // ----- out-of-core -------------------------------------------------------

    fn admit(&mut self, incoming: usize) {
        let need = self.ooc.needed_for_admission(incoming);
        if need > 0 {
            self.evict_bytes(need, true);
        }
    }

    /// Load admission never displaces queued objects (see the DES engine:
    /// mutual displacement of queued objects is an evict/reload livelock).
    fn admit_for_load(&mut self, incoming: usize) {
        let need = self.ooc.needed_for_admission(incoming);
        if need > 0 {
            self.evict_bytes(need, false);
        }
    }

    /// Post-handler budget enforcement (objects grow in place).
    fn enforce_budget(&mut self) {
        // Degraded: the store is rejecting writes, so evicting would only
        // burn retries; knowingly overshoot until the backend recovers.
        if !self.ooc.enabled() || self.ooc.is_degraded() {
            return;
        }
        let over = self.ooc.used().saturating_sub(self.ooc.budget());
        if over > 0 {
            self.evict_bytes(over, true);
        }
    }

    fn soft_swap(&mut self) {
        let excess = self.ooc.soft_excess();
        if excess > 0 {
            self.evict_bytes(excess, false);
        }
    }

    fn evict_bytes(&mut self, need: usize, allow_queued: bool) {
        let legacy = self.cfg.legacy_spill;
        let locality = self.cfg.locality;
        if locality {
            self.locality.maybe_rebuild();
            self.push_ranks_if_stale();
        }
        let mut candidates: Vec<EvictCandidate> = self
            .table
            .iter()
            .filter(|(_, e)| {
                matches!(e.state, TState::InCore(_))
                    && !e.locked
                    && e.pending_migration.is_none()
                    && (allow_queued || e.queue.is_empty())
            })
            .map(|(&oid, e)| EvictCandidate {
                oid,
                footprint: e.footprint,
                meta: e.meta,
                priority: e.priority,
                queued_msgs: e.queue.len(),
                // Legacy spill ignores dirty tracking; forcing `false`
                // keeps the victim ordering byte-for-byte the old one.
                clean: !legacy && e.is_clean(),
                cluster: if locality {
                    self.locality.cluster_of(oid)
                } else {
                    None
                },
                lkey: self
                    .locality
                    .key_of(oid)
                    .unwrap_or(crate::locality::UNRANKED),
            })
            .collect();
        let victims = self.ooc.pick_victims(&mut candidates, need);
        if legacy || victims.len() <= 1 {
            for oid in victims {
                self.spill(oid);
            }
            return;
        }
        // Fast path, multiple victims: elide the clean ones and coalesce
        // the dirty remainder into one batched store.
        let mut dirty = Vec::new();
        for oid in victims {
            if !self.try_elide(oid) {
                dirty.push(oid);
            }
        }
        match dirty.len() {
            0 => {}
            1 => self.spill(dirty[0]),
            _ => self.spill_batch(dirty),
        }
    }

    /// Clean-eviction elision: drop the resident copy of a clean object
    /// without re-packing or re-writing — the on-disk bytes are already
    /// current. Returns `false` (caller must store) when the fast path is
    /// disabled or the object is dirty.
    fn try_elide(&mut self, oid: ObjectId) -> bool {
        if self.cfg.legacy_spill {
            return false;
        }
        let (footprint, packed_len) = {
            let e = self
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry");
            if !matches!(e.state, TState::InCore(_)) || !e.is_clean() {
                return false;
            }
            let obj = match std::mem::replace(&mut e.state, TState::OnDisk) {
                TState::InCore(o) => o,
                _ => unreachable!(),
            };
            drop(obj);
            (e.footprint, e.packed_len)
        };
        self.ooc.note_out(footprint);
        self.ooc.note_spilled(footprint);
        self.race_access(oid);
        audit_emit!(
            self.audit,
            RuntimeEvent::ElidedUnload {
                node: self.node,
                oid,
                footprint,
                version: self.table[&oid].version,
                stored_version: self.table[&oid]
                    .stored_version
                    .expect("clean object has a stored version"),
            }
        );
        self.stats.evictions += 1;
        self.stats.evictions_elided += 1;
        self.stats.bytes_write_avoided += packed_len as u64;
        self.ready.retain(|&r| r != oid);
        if !self.table[&oid].queue.is_empty() {
            self.queue_load(oid);
        }
        true
    }

    fn spill(&mut self, oid: ObjectId) {
        if self.try_elide(oid) {
            return;
        }
        let e = self
            .table
            .get_mut(&oid)
            .expect("tracked object has a table entry");
        let obj = match std::mem::replace(&mut e.state, TState::OnDisk) {
            TState::InCore(o) => o,
            other => {
                e.state = other;
                return;
            }
        };
        let key = {
            let next = &mut self.next_spill_key;
            let e = self
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry");
            e.store_inflight = true;
            // The object cannot mutate while out of core, so the version
            // at send time is the version the packed bytes will carry.
            e.stored_version = Some(e.version);
            *e.spill_key.get_or_insert_with(|| {
                let k = *next;
                *next += 1;
                k
            })
        };
        let footprint = self.table[&oid].footprint;
        self.ooc.note_out(footprint);
        self.ooc.note_spilled(footprint);
        self.race_access(oid);
        audit_emit!(
            self.audit,
            RuntimeEvent::Unload {
                node: self.node,
                oid,
                footprint
            }
        );
        self.stats.evictions += 1;
        self.stats.stores += 1;
        self.outstanding_io += 1;
        // Pack happens on the I/O pool, off this control thread.
        self.io_tx
            .send(IoReq::Store { key, obj, oid })
            .expect("I/O pool outlives the worker");
        // Drop the object from the ready list if it was there.
        self.ready.retain(|&r| r != oid);
        // An object evicted with queued messages still owes work: queue
        // the reload (it issues once the store lands).
        if !self.table[&oid].queue.is_empty() {
            self.queue_load(oid);
        }
    }

    /// Spill several dirty victims through one coalesced batch write: one
    /// store op (a single append on the segment log), one sync decision,
    /// one I/O-pool round trip — instead of one of each per victim.
    fn spill_batch(&mut self, victims: Vec<ObjectId>) {
        let mut items: Vec<(u64, Box<dyn MobileObject>, ObjectId)> =
            Vec::with_capacity(victims.len());
        for oid in victims {
            let next = &mut self.next_spill_key;
            let e = self
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry");
            let obj = match std::mem::replace(&mut e.state, TState::OnDisk) {
                TState::InCore(o) => o,
                other => {
                    e.state = other;
                    continue;
                }
            };
            e.store_inflight = true;
            e.stored_version = Some(e.version);
            let key = *e.spill_key.get_or_insert_with(|| {
                let k = *next;
                *next += 1;
                k
            });
            let footprint = e.footprint;
            self.ooc.note_out(footprint);
            self.ooc.note_spilled(footprint);
            self.race_access(oid);
            audit_emit!(
                self.audit,
                RuntimeEvent::Unload {
                    node: self.node,
                    oid,
                    footprint
                }
            );
            self.stats.evictions += 1;
            self.stats.stores += 1;
            self.ready.retain(|&r| r != oid);
            if !self.table[&oid].queue.is_empty() {
                self.queue_load(oid);
            }
            items.push((key, obj, oid));
        }
        if items.is_empty() {
            return;
        }
        if items.len() >= 2 {
            self.stats.spill_batches += 1;
        }
        self.outstanding_io += 1;
        self.io_tx
            .send(IoReq::StoreBatch { items })
            .expect("I/O pool outlives the worker");
    }

    /// Note that `oid` (on disk) has pending work; the load is issued by
    /// [`Worker::pump_loads`] under the prefetch window.
    fn queue_load(&mut self, oid: ObjectId) {
        let e = self
            .table
            .get_mut(&oid)
            .expect("tracked object has a table entry");
        if e.load_queued || !matches!(e.state, TState::OnDisk) {
            return;
        }
        e.load_queued = true;
        self.pending_loads.push_back(oid);
    }

    /// Cluster prefetch: a demanded load of `anchor` just completed as a
    /// miss (the node stalled on it), so enqueue the anchor's nearest
    /// on-disk clustermates as hinted look-ahead loads — only on the side
    /// of the curve the demand front is moving toward (mates behind the
    /// front were just used; prefetching them is guaranteed waste under a
    /// tight budget). Triggering on demand misses rather than on every
    /// load keeps the speculation bounded: queue-visible work is already
    /// covered by the ordinary look-ahead window, and a miss is precisely
    /// the signal that the front moved somewhere that window could not
    /// see. The mates flow through [`Worker::pump_loads`] window/pacing
    /// (the hint only keeps them wanted despite their empty queues), so
    /// the prefetch budget and degraded-mode shedding apply unchanged.
    fn cluster_prefetch(&mut self, anchor: ObjectId) {
        // Pointless without look-ahead (window 0) and off-contract in the
        // legacy unpaced shape (usize::MAX), which predates prefetching.
        if !self.cfg.locality
            || self.cfg.locality_prefetch_mates == 0
            || self.cfg.prefetch_window_objects == 0
            || self.cfg.prefetch_window_objects == usize::MAX
        {
            return;
        }
        self.locality.maybe_rebuild();
        let Some(key) = self.locality.key_of(anchor) else {
            return;
        };
        let forward = key >= self.last_anchor_key;
        self.last_anchor_key = key;
        for oid in
            self.locality
                .companions_toward(anchor, self.cfg.locality_prefetch_mates, forward)
        {
            let Some(e) = self.table.get_mut(&oid) else {
                continue;
            };
            if e.load_queued || !matches!(e.state, TState::OnDisk) {
                continue;
            }
            e.load_queued = true;
            e.prefetch_hint = true;
            self.pending_loads.push_back(oid);
        }
    }

    /// Ship the locality-curve ranks of all spilled objects to the store
    /// when the ordering changed or enough new spill keys appeared since
    /// the last shipment — compaction then rewrites live records in curve
    /// order.
    fn push_ranks_if_stale(&mut self) {
        let gen = self.locality.generation();
        if gen == 0 {
            return;
        }
        // O(1) staleness gate before the table scan: `next_spill_key`
        // only grows, so it bounds how many spill keys can be new since
        // the last shipment.
        if gen == self.ranks_gen && (self.next_spill_key as usize) < self.ranks_keys + 32 {
            return;
        }
        let ranks = self.locality.ranks_for(
            self.table
                .iter()
                .filter_map(|(&oid, e)| e.spill_key.map(|k| (oid, k))),
        );
        self.ranks_gen = gen;
        self.ranks_keys = self.next_spill_key as usize;
        if ranks.is_empty() {
            return;
        }
        // Fire-and-forget: no IoDone reply, no outstanding_io accounting.
        self.io_tx
            .send(IoReq::SetRanks(ranks))
            .expect("I/O pool outlives the worker");
    }

    /// Bytes reclaimable by evicting only objects with no pending work —
    /// the only victims a look-ahead load is allowed to displace.
    fn idle_evictable_bytes(&self) -> usize {
        self.table
            .values()
            .filter(|e| {
                matches!(e.state, TState::InCore(_))
                    && !e.locked
                    && e.pending_migration.is_none()
                    && e.queue.is_empty()
            })
            .map(|e| e.footprint)
            .sum()
    }

    /// Issue queued loads. A **look-ahead** load (the node still has
    /// resident work) stays inside the prefetch window and is paced so it
    /// never displaces an object with queued messages; a **demand** load
    /// (nothing resident to run) or an urgent one (migration or multicast
    /// waiting on the object) always makes progress. Entries whose reason
    /// to load evaporated are cancelled here.
    /// Drop the pending hint-only load at `idx`: a cluster prefetch that
    /// cannot issue right now is stale by the time conditions change, and
    /// keeping it queued wedges termination (`idle()` requires an empty
    /// `pending_loads`).
    fn cancel_hint(&mut self, oid: ObjectId, idx: usize) {
        self.pending_loads.remove(idx);
        let e = self
            .table
            .get_mut(&oid)
            .expect("tracked object has a table entry");
        e.load_queued = false;
        e.prefetch_hint = false;
        self.stats.prefetch_cancels += 1;
    }

    fn pump_loads(&mut self) {
        if self.pending_loads.is_empty() {
            return;
        }
        let window_objs = self.cfg.prefetch_window_objects;
        let window_bytes = self.cfg.prefetch_window_bytes;
        // `usize::MAX` objects = the pre-overlap shape: issue immediately,
        // never pace against the budget.
        let unpaced = window_objs == usize::MAX;
        let mut idle_evictable: Option<usize> = None;
        let mut i = 0;
        while i < self.pending_loads.len() {
            let oid = self.pending_loads[i];
            let (wants, store_inflight, urgent, hinted, demanded, footprint, packed_len) = {
                let e = self
                    .table
                    .get(&oid)
                    .expect("tracked object has a table entry");
                let urgent = e.pending_migration.is_some() || e.locked;
                let wants = matches!(e.state, TState::OnDisk)
                    && (urgent || !e.queue.is_empty() || e.prefetch_hint);
                (
                    wants,
                    e.store_inflight,
                    urgent,
                    e.prefetch_hint,
                    !e.queue.is_empty(),
                    e.footprint,
                    e.packed_len,
                )
            };
            if !wants {
                self.pending_loads.remove(i);
                let e = self
                    .table
                    .get_mut(&oid)
                    .expect("tracked object has a table entry");
                e.load_queued = false;
                e.prefetch_hint = false;
                self.stats.prefetch_cancels += 1;
                continue;
            }
            if store_inflight {
                // Per-key ordering: the pool is not FIFO, so the load must
                // wait for this object's store to land.
                i += 1;
                continue;
            }
            // A hinted (cluster-prefetched) load is look-ahead by nature:
            // nothing queued demands it, so it must respect the window,
            // the pacing, and degraded-mode shedding even when the node
            // happens to be idle.
            let look_ahead = !self.ready.is_empty() || hinted;
            // A hint with nothing queued behind it is pure opportunism: if
            // it cannot issue under the current gates it must be dropped,
            // not parked — nothing else will ever change an idle node's
            // pacing headroom, and `idle()` refuses to terminate while
            // `pending_loads` is non-empty.
            let hint_only = hinted && !urgent && !demanded;
            if look_ahead && !urgent {
                if self.ooc.is_degraded() {
                    // Disk pressure: shed prefetch entirely; only demand
                    // and urgent loads keep flowing.
                    if hint_only {
                        self.cancel_hint(oid, i);
                        continue;
                    }
                    i += 1;
                    continue;
                }
                if self.inflight_load_objs >= window_objs {
                    break;
                }
                if self.inflight_load_objs > 0
                    && self.inflight_load_bytes.saturating_add(packed_len) > window_bytes
                {
                    break;
                }
                if !unpaced {
                    let need = self.ooc.needed_for_admission(footprint);
                    if need > 0 {
                        let avail =
                            *idle_evictable.get_or_insert_with(|| self.idle_evictable_bytes());
                        if need > avail {
                            // Paced: admission would thrash queued objects.
                            if hint_only {
                                self.cancel_hint(oid, i);
                                continue;
                            }
                            i += 1;
                            continue;
                        }
                    }
                }
            } else if self.inflight_load_objs > 0 && self.inflight_load_objs >= window_objs {
                // Demand loads keep the pipe bounded too, but at least one
                // is always in flight so the node cannot stall.
                break;
            }
            self.pending_loads.remove(i);
            self.table
                .get_mut(&oid)
                .expect("tracked object has a table entry")
                .load_queued = false;
            self.issue_load(oid, look_ahead && !urgent);
            // Issuing may have evicted; recompute pacing headroom lazily.
            idle_evictable = None;
        }
    }

    fn issue_load(&mut self, oid: ObjectId, look_ahead: bool) {
        let (key, footprint, packed_len, hinted) = {
            let e = self
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry");
            debug_assert!(matches!(e.state, TState::OnDisk));
            e.state = TState::Loading;
            let hinted = std::mem::replace(&mut e.prefetch_hint, false);
            (
                e.spill_key.expect("on-disk object has spill key"),
                e.footprint,
                e.packed_len,
                hinted,
            )
        };
        self.inflight_load_objs += 1;
        self.inflight_load_bytes += packed_len;
        if hinted {
            self.stats.cluster_prefetches += 1;
            audit_emit!(
                self.audit,
                RuntimeEvent::ClusterPrefetch {
                    node: self.node,
                    oid,
                    cluster: self.locality.cluster_of(oid).unwrap_or(0),
                }
            );
        }
        if look_ahead {
            self.stats.prefetch_issued += 1;
            audit_emit!(
                self.audit,
                RuntimeEvent::Prefetch {
                    node: self.node,
                    oid,
                    inflight_objects: self.inflight_load_objs,
                    window_objects: self.cfg.prefetch_window_objects,
                    inflight_bytes: self.inflight_load_bytes,
                    window_bytes: self.cfg.prefetch_window_bytes,
                }
            );
        }
        self.admit_for_load(footprint);
        self.stats.loads += 1;
        self.stats.bytes_from_disk += packed_len as u64;
        self.outstanding_io += 1;
        self.io_tx
            .send(IoReq::Load { key, oid })
            .expect("I/O pool outlives the worker");
    }

    fn on_io(&mut self, done: IoDone) {
        self.outstanding_io -= 1;
        match done {
            IoDone::Stored {
                oid,
                packed_len,
                io_dur,
                pack_dur,
                retries,
                faults,
                pool_hit,
                reorders,
            } => {
                self.stats.disk += io_dur;
                self.stats.comp += pack_dur;
                self.stats.bytes_to_disk += packed_len as u64;
                self.stats.io_retries += retries as usize;
                self.stats.faults_injected += faults;
                self.stats.buffer_pool_hits += usize::from(pool_hit);
                self.stats.compaction_reorders += reorders;
                let e = self
                    .table
                    .get_mut(&oid)
                    .expect("tracked object has a table entry");
                e.store_inflight = false;
                e.packed_len = packed_len;
            }
            IoDone::StoredBatch {
                items,
                io_dur,
                pack_dur,
                retries,
                faults,
                pool_hits,
                reorders,
            } => {
                self.stats.disk += io_dur;
                self.stats.comp += pack_dur;
                self.stats.io_retries += retries as usize;
                self.stats.faults_injected += faults;
                self.stats.buffer_pool_hits += pool_hits;
                self.stats.compaction_reorders += reorders;
                for (oid, packed_len) in items {
                    self.stats.bytes_to_disk += packed_len as u64;
                    let e = self
                        .table
                        .get_mut(&oid)
                        .expect("tracked object has a table entry");
                    e.store_inflight = false;
                    e.packed_len = packed_len;
                }
            }
            IoDone::StoreBatchFailed {
                items,
                io_dur,
                pack_dur,
                retries,
                faults,
            } => {
                self.stats.disk += io_dur;
                self.stats.comp += pack_dur;
                self.stats.io_retries += retries as usize;
                self.stats.faults_injected += faults;
                self.stats.io_gave_up += 1;
                // Whole-batch failure: reinstate every object in-core. A
                // prefix of the batch may have landed, but no record is
                // trusted — all objects are marked dirty so no later
                // elision can reference the torn batch.
                let mut migrations = Vec::new();
                for (oid, obj) in items {
                    let footprint = obj.footprint();
                    let tick = self.ooc.tick();
                    self.ooc.note_in(footprint);
                    let pending = {
                        let e = self
                            .table
                            .get_mut(&oid)
                            .expect("tracked object has a table entry");
                        e.store_inflight = false;
                        e.stored_version = None;
                        e.state = TState::InCore(obj);
                        e.footprint = footprint;
                        e.meta.touch(tick);
                        e.pending_migration
                    };
                    self.race_access(oid);
                    audit_emit!(
                        self.audit,
                        RuntimeEvent::Load {
                            node: self.node,
                            oid,
                            footprint
                        }
                    );
                    if let Some(dest) = pending {
                        migrations.push((oid, dest));
                    } else {
                        if !self.table[&oid].queue.is_empty() {
                            self.ready.push_back(oid);
                        }
                        self.mc_note_available(oid);
                    }
                }
                if self.ooc.enter_degraded() {
                    self.stats.degraded_entries += 1;
                    self.stats.degraded_mode_transitions += 1;
                    audit_emit!(
                        self.audit,
                        RuntimeEvent::Degraded {
                            node: self.node,
                            on: true
                        }
                    );
                }
                self.audit_budget(false);
                for (oid, dest) in migrations {
                    self.do_migrate(oid, dest);
                }
            }
            IoDone::StoreFailed {
                oid,
                obj,
                io_dur,
                pack_dur,
                retries,
                faults,
            } => {
                self.stats.disk += io_dur;
                self.stats.comp += pack_dur;
                self.stats.io_retries += retries as usize;
                self.stats.faults_injected += faults;
                self.stats.io_gave_up += 1;
                // Graceful degradation: reinstate the object in-core (it
                // was reconstituted from the packed bytes), balance the
                // eager Unload with a Load, and stop evicting until a
                // probe finds the backend healthy again.
                let footprint = obj.footprint();
                let tick = self.ooc.tick();
                self.ooc.note_in(footprint);
                let pending = {
                    let e = self
                        .table
                        .get_mut(&oid)
                        .expect("tracked object has a table entry");
                    e.store_inflight = false;
                    e.stored_version = None;
                    e.state = TState::InCore(obj);
                    e.footprint = footprint;
                    e.meta.touch(tick);
                    e.pending_migration
                };
                self.race_access(oid);
                audit_emit!(
                    self.audit,
                    RuntimeEvent::Load {
                        node: self.node,
                        oid,
                        footprint
                    }
                );
                if self.ooc.enter_degraded() {
                    self.stats.degraded_entries += 1;
                    self.stats.degraded_mode_transitions += 1;
                    audit_emit!(
                        self.audit,
                        RuntimeEvent::Degraded {
                            node: self.node,
                            on: true
                        }
                    );
                }
                self.audit_budget(false);
                if let Some(dest) = pending {
                    self.do_migrate(oid, dest);
                    return;
                }
                if !self.table[&oid].queue.is_empty() {
                    self.ready.push_back(oid);
                }
                self.mc_note_available(oid);
            }
            IoDone::LoadFailed {
                oid,
                error,
                attempts,
                retries,
                faults,
            } => {
                self.stats.io_retries += retries as usize;
                self.stats.faults_injected += faults;
                self.stats.io_gave_up += 1;
                let packed_len = self.table[&oid].packed_len;
                self.inflight_load_objs -= 1;
                self.inflight_load_bytes = self.inflight_load_bytes.saturating_sub(packed_len);
                // Unrecoverable: the object exists nowhere else. Record the
                // typed error and bring the whole computation down.
                if self.fatal.is_none() {
                    self.fatal = Some(MrtsError::LoadFailed {
                        node: self.node,
                        oid,
                        attempts,
                        source: error,
                    });
                }
                for n in 0..self.n_nodes as NodeId {
                    if n != self.node {
                        self.am(n, AM_EXIT, vec![]);
                    }
                }
                self.done = true;
                audit_emit!(self.audit, RuntimeEvent::Terminate { node: self.node });
            }
            IoDone::Probed { ok, faults } => {
                self.probe_inflight = false;
                self.stats.faults_injected += faults;
                if ok && self.ooc.exit_degraded() {
                    self.stats.degraded_mode_transitions += 1;
                    audit_emit!(
                        self.audit,
                        RuntimeEvent::Degraded {
                            node: self.node,
                            on: false
                        }
                    );
                    // Shed the footprint overshoot accumulated while
                    // evictions were suspended.
                    self.enforce_budget();
                    self.soft_swap();
                }
            }
            IoDone::Loaded {
                oid,
                obj,
                packed_len,
                io_dur,
                unpack_dur,
                retries,
                faults,
                seg_reads,
                seg_switches,
            } => {
                self.stats.disk += io_dur;
                self.stats.comp += unpack_dur;
                self.stats.io_retries += retries as usize;
                self.stats.faults_injected += faults;
                self.stats.segment_reads += seg_reads as usize;
                self.stats.segment_switches += seg_switches as usize;
                self.inflight_load_objs -= 1;
                self.inflight_load_bytes = self.inflight_load_bytes.saturating_sub(packed_len);
                // Overlap classification: a load that completes while
                // resident work remains was masked by computation.
                let miss = self.ready.is_empty();
                if miss {
                    self.stats.prefetch_misses += 1;
                } else {
                    self.stats.prefetch_hits += 1;
                }
                // Read-amplification accounting: the load was *demanded*
                // if the object has actual work waiting (queued messages,
                // a pending migration, or a lock); a cluster-prefetched
                // load that nothing asked for yet counts only in
                // `bytes_from_disk`, making waste visible.
                let demanded = {
                    let e = &self.table[&oid];
                    !e.queue.is_empty() || e.pending_migration.is_some() || e.locked
                };
                if demanded {
                    self.stats.bytes_demanded += packed_len as u64;
                }
                let footprint = obj.footprint();
                let tick = self.ooc.tick();
                self.ooc.note_in(footprint);
                let pending = {
                    let e = self
                        .table
                        .get_mut(&oid)
                        .expect("tracked object has a table entry");
                    e.state = TState::InCore(obj);
                    e.footprint = footprint;
                    e.meta.touch(tick);
                    e.pending_migration
                };
                self.race_access(oid);
                audit_emit!(
                    self.audit,
                    RuntimeEvent::Load {
                        node: self.node,
                        oid,
                        footprint
                    }
                );
                self.audit_budget(false);
                // A demanded load that stalled the node is the access
                // front arriving somewhere look-ahead did not predict —
                // pull the anchor's cluster mates behind it before the
                // front stalls on them too.
                if miss && demanded {
                    self.cluster_prefetch(oid);
                }
                if let Some(dest) = pending {
                    self.do_migrate(oid, dest);
                    return;
                }
                if !self.table[&oid].queue.is_empty() {
                    self.ready.push_back(oid);
                }
                self.mc_note_available(oid);
            }
        }
    }

    // ----- handler execution -----------------------------------------------------

    /// Execute one queued message of one ready object. Returns false if no
    /// work was available.
    fn step(&mut self) -> bool {
        let oid = loop {
            match self.ready.pop_front() {
                None => return false,
                Some(oid) => {
                    let ok = matches!(
                        self.table.get(&oid),
                        Some(e) if matches!(e.state, TState::InCore(_)) && !e.queue.is_empty()
                    );
                    if ok {
                        break oid;
                    }
                }
            }
        };
        let (mut obj, msg, old_footprint) = {
            let e = self
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry");
            let obj = match std::mem::replace(&mut e.state, TState::Loading) {
                TState::InCore(o) => o,
                _ => unreachable!(),
            };
            let msg = e.queue.pop_front().expect("queue checked non-empty");
            (obj, msg, e.footprint)
        };
        self.race_access(oid);
        audit_emit!(
            self.audit,
            RuntimeEvent::Deliver {
                node: self.node,
                oid
            }
        );

        let handler = self.registry.handler(msg.handler);
        let src = *msg.route.first().unwrap_or(&self.node);
        let mut next_seq = self.next_obj_seq;
        let mut ctx = Ctx::new(self.node, msg.to, src, &mut next_seq, self.backend.as_mut());
        let t0 = Instant::now();
        handler(obj.as_mut(), &mut ctx, &msg.payload);
        let dur = t0.elapsed();
        self.stats.comp += dur;
        // Handler time with storage ops in flight is measured I/O–compute
        // overlap (the paper's headline quantity).
        if self.outstanding_io > 0 {
            self.stats.overlapped += dur;
        }
        let effects = std::mem::take(&mut ctx.effects);
        drop(ctx);
        self.next_obj_seq = next_seq;
        self.stats.handlers_run += 1;
        self.stats.msgs_local += usize::from(msg.route.is_empty());
        self.stats.msgs_remote += usize::from(!msg.route.is_empty());

        let new_footprint = obj.footprint();
        let tick = self.ooc.tick();
        {
            let e = self
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry");
            e.state = TState::InCore(obj);
            e.meta.touch(tick);
            e.footprint = new_footprint;
            // Dirty tracking: the handler may have mutated the object, so
            // any spilled bytes are stale from here on.
            e.version += 1;
        }
        self.ooc.note_resize(old_footprint, new_footprint);
        if old_footprint != new_footprint {
            audit_emit!(
                self.audit,
                RuntimeEvent::Resize {
                    node: self.node,
                    oid,
                    old: old_footprint,
                    new: new_footprint
                }
            );
        }
        if !self.table[&oid].queue.is_empty() {
            self.ready.push_back(oid);
        }

        // Locality learning: an object-to-object send is exactly the
        // buffer-zone adjacency (subdomains talk to their mesh neighbors),
        // so each send contributes an edge to the curve ordering.
        if self.cfg.locality {
            for eff in &effects {
                if let Effect::Send { to, .. } = eff {
                    self.locality.note_edge(oid, to.id);
                }
            }
        }
        self.apply_effects(effects);
        self.enforce_budget();
        self.soft_swap();
        true
    }

    fn apply_effects(&mut self, effects: Vec<Effect>) {
        for eff in effects {
            match eff {
                Effect::Send {
                    to,
                    handler,
                    payload,
                    immediate: _,
                } => {
                    audit_emit!(
                        self.audit,
                        RuntimeEvent::Post {
                            node: self.node,
                            oid: to.id
                        }
                    );
                    let msg = Message::new(to, handler, payload);
                    if self.entry_present(to.id) {
                        self.route_msg(msg);
                    } else {
                        let dest = self.dir_next_hop(to.id);
                        self.am(dest, AM_MSG, msg.encode());
                    }
                }
                Effect::Multicast {
                    info,
                    handler,
                    payload,
                } => {
                    let first = info.targets[0].id;
                    if self.entry_present(first) {
                        self.on_mc_start(info, handler, payload);
                    } else {
                        let coord = self.dir_next_hop(first);
                        let mut msg = Message::new(info.targets[0], handler, payload);
                        msg.multicast = Some(info);
                        self.am(coord, AM_MC_START, msg.encode());
                    }
                }
                Effect::Create { id, obj, priority } => {
                    let footprint = obj.footprint();
                    self.admit(footprint);
                    let tick = self.ooc.tick();
                    self.ooc.note_in(footprint);
                    self.table.insert(
                        id,
                        TEntry {
                            state: TState::InCore(obj),
                            queue: VecDeque::new(),
                            meta: AccessMeta::new(tick),
                            priority,
                            locked: false,
                            footprint,
                            packed_len: 0,
                            spill_key: None,
                            pending_migration: None,
                            load_queued: false,
                            prefetch_hint: false,
                            store_inflight: false,
                            version: 0,
                            stored_version: None,
                        },
                    );
                    audit_emit!(
                        self.audit,
                        RuntimeEvent::Create {
                            node: self.node,
                            oid: id,
                            footprint
                        }
                    );
                    self.audit_budget(true);
                }
                Effect::Lock(p) => self.meta_op(p.id, META_LOCK, 0),
                Effect::Unlock(p) => self.meta_op(p.id, META_UNLOCK, 0),
                Effect::SetPriority(p, v) => self.meta_op(p.id, META_PRIO, v),
                Effect::Migrate(p, dest) => {
                    if self.entry_present(p.id) {
                        self.on_migrate_req(p.id, dest);
                    } else {
                        let owner = self.dir_next_hop(p.id);
                        let mut payload = Vec::with_capacity(10);
                        payload.extend_from_slice(&p.id.0.to_le_bytes());
                        payload.extend_from_slice(&dest.to_le_bytes());
                        self.am(owner, AM_MIGRATE_REQ, payload);
                    }
                }
            }
        }
    }

    fn meta_op(&mut self, oid: ObjectId, op: u8, arg: u8) {
        if self.entry_present(oid) {
            self.on_meta(oid, op, arg);
        } else {
            let owner = self.dir_next_hop(oid);
            let mut payload = Vec::with_capacity(10);
            payload.extend_from_slice(&oid.0.to_le_bytes());
            payload.push(op);
            payload.push(arg);
            self.am(owner, AM_META, payload);
        }
    }

    fn on_meta(&mut self, oid: ObjectId, op: u8, arg: u8) {
        if !self.entry_present(oid) {
            let owner = self.dir_next_hop(oid);
            if owner == self.node {
                return;
            }
            let mut payload = Vec::with_capacity(10);
            payload.extend_from_slice(&oid.0.to_le_bytes());
            payload.push(op);
            payload.push(arg);
            self.am(owner, AM_META, payload);
            return;
        }
        let e = self
            .table
            .get_mut(&oid)
            .expect("tracked object has a table entry");
        match op {
            META_LOCK => e.locked = true,
            META_UNLOCK => e.locked = false,
            META_PRIO => e.priority = arg,
            _ => unreachable!(),
        }
        match op {
            META_LOCK => audit_emit!(
                self.audit,
                RuntimeEvent::Pin {
                    node: self.node,
                    oid
                }
            ),
            META_UNLOCK => audit_emit!(
                self.audit,
                RuntimeEvent::Unpin {
                    node: self.node,
                    oid
                }
            ),
            _ => {}
        }
    }

    // ----- migration & multicast ------------------------------------------------

    fn on_migrate_req(&mut self, oid: ObjectId, dest: NodeId) {
        if !self.entry_present(oid) {
            let next = match self.table.get(&oid) {
                Some(TEntry {
                    state: TState::Moved(f),
                    ..
                }) => *f,
                _ => self.dir_next_hop(oid),
            };
            if next == self.node {
                return;
            }
            let mut payload = Vec::with_capacity(10);
            payload.extend_from_slice(&oid.0.to_le_bytes());
            payload.extend_from_slice(&dest.to_le_bytes());
            self.am(next, AM_MIGRATE_REQ, payload);
            return;
        }
        if dest == self.node {
            self.mc_note_available(oid);
            return;
        }
        match self.table[&oid].state {
            TState::InCore(_) => self.do_migrate(oid, dest),
            TState::OnDisk => {
                self.table
                    .get_mut(&oid)
                    .expect("tracked object has a table entry")
                    .pending_migration = Some(dest);
                self.queue_load(oid);
            }
            TState::Loading => {
                self.table
                    .get_mut(&oid)
                    .expect("tracked object has a table entry")
                    .pending_migration = Some(dest);
            }
            TState::Moved(_) => unreachable!(),
        }
    }

    fn do_migrate(&mut self, oid: ObjectId, dest: NodeId) {
        let (obj, queue, priority, locked, footprint, version) = {
            let e = self
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry");
            e.pending_migration = None;
            let obj = match std::mem::replace(&mut e.state, TState::Moved(dest)) {
                TState::InCore(o) => o,
                other => {
                    e.state = other;
                    return;
                }
            };
            (
                obj,
                std::mem::take(&mut e.queue),
                e.priority,
                e.locked,
                e.footprint,
                e.version,
            )
        };
        self.ready.retain(|&r| r != oid);
        self.race_access(oid);
        let t0 = Instant::now();
        let packed = Registry::pack(obj.as_ref());
        self.stats.comp += t0.elapsed();
        drop(obj);
        self.ooc.note_out(footprint);
        self.stats.migrations += 1;
        // Emitted before the install message ships so the checker sees the
        // departure strictly before the arrival.
        audit_emit!(
            self.audit,
            RuntimeEvent::MigrateOut {
                node: self.node,
                oid,
                to: dest,
                queued: queue.len(),
                footprint
            }
        );

        // Install payload: oid, priority, locked, mutation version, packed
        // object, queued messages. The version travels with the object so
        // the receiver's dirty tracking stays in sync with the checker's
        // model (install counts as a mutation on arrival).
        let mut w = crate::codec::PayloadWriter::with_capacity(packed.len() + 64);
        w.u64(oid.0)
            .u8(priority)
            .u8(locked as u8)
            .u64(version)
            .bytes(&packed);
        w.u32(queue.len() as u32);
        for m in &queue {
            w.bytes(&m.encode());
        }
        self.am(dest, AM_INSTALL, w.finish());
        self.dir.update(oid, dest);
        audit_emit!(
            self.audit,
            RuntimeEvent::DirUpdate {
                node: self.node,
                oid,
                loc: dest
            }
        );
        let home = self.home_of(oid);
        if home != self.node && home != dest {
            let mut upd = Vec::with_capacity(10);
            upd.extend_from_slice(&oid.0.to_le_bytes());
            upd.extend_from_slice(&dest.to_le_bytes());
            self.am(home, AM_DIR_UPDATE, upd);
        }
    }

    // ----- work stealing ----------------------------------------------------

    /// Can `oid` be handed to a thief right now? Mirrors the audit
    /// checker's legality rule: resident here, not pinned, not already
    /// migrating — plus "actually has work", or the steal is pointless.
    fn steal_grantable(&self, oid: ObjectId) -> bool {
        matches!(
            self.table.get(&oid),
            Some(e) if matches!(e.state, TState::InCore(_))
                && !e.locked
                && e.pending_migration.is_none()
                && !e.queue.is_empty()
        )
    }

    /// Deterministic victim-side candidate pick: the grantable object with
    /// the deepest message queue, ties broken by smallest id. Selection by
    /// total order, so the hash map's iteration order cannot leak into the
    /// result (replay depends on this being a pure function of state).
    fn steal_candidate(&self) -> Option<ObjectId> {
        let mut best: Option<(usize, ObjectId)> = None;
        for (&oid, e) in &self.table {
            let ok = matches!(e.state, TState::InCore(_))
                && !e.locked
                && e.pending_migration.is_none()
                && !e.queue.is_empty();
            if !ok {
                continue;
            }
            let len = e.queue.len();
            let better = match best {
                None => true,
                Some((blen, boid)) => len > blen || (len == blen && oid.0 < boid.0),
            };
            if better {
                best = Some((len, oid));
            }
        }
        best.map(|(_, oid)| oid)
    }

    /// Victim side of the steal protocol. The grant-or-deny choice is a
    /// recorded [`Decision`]: the live pick depends on this node's queue
    /// depths at arrival, which a replay cannot reconstruct, so the log
    /// overrides it (a recorded grant that is no longer grantable is a
    /// divergence and falls back live).
    fn on_steal_req(&mut self, thief: NodeId) {
        audit_emit!(
            self.audit,
            RuntimeEvent::StealRequest {
                node: self.node,
                thief
            }
        );
        let mut pick = self.steal_candidate();
        if matches!(self.replay, ReplayRole::Replay(_)) {
            let ReplayRole::Replay(mut st) = std::mem::replace(&mut self.replay, ReplayRole::Off)
            else {
                unreachable!("matched Replay above")
            };
            if !st.live {
                match st.log.get(st.cursor) {
                    Some(&Decision::StealGrant { oid }) => {
                        st.cursor += 1;
                        if oid == STEAL_DENIED {
                            pick = None;
                        } else if self.steal_grantable(ObjectId(oid)) {
                            pick = Some(ObjectId(oid));
                        } else {
                            self.replay_diverge(&mut st);
                        }
                    }
                    _ => self.replay_diverge(&mut st),
                }
            }
            self.replay = ReplayRole::Replay(st);
        }
        self.record_decision(Decision::StealGrant {
            oid: pick.map_or(STEAL_DENIED, |o| o.0),
        });
        match pick {
            Some(oid) => {
                // Emitted while the object is still resident and unpinned
                // here, so the checker validates the legality of the grant
                // against the pre-migration state.
                audit_emit!(
                    self.audit,
                    RuntimeEvent::StealGrant {
                        node: self.node,
                        oid,
                        to: thief
                    }
                );
                self.do_migrate(oid, thief);
            }
            None => {
                self.am(thief, AM_STEAL_DENY, self.node.to_le_bytes().to_vec());
            }
        }
    }

    /// Thief side: fire one steal request if this node has been idle for
    /// `cfg.steal_patience` empty polls and peers remain untried. Whether
    /// (and whom) to ask is recorded as a [`Decision`] so a replay steals
    /// at exactly the recorded points — and nowhere else.
    fn maybe_steal(&mut self) {
        if !self.cfg.work_stealing
            || self.n_nodes < 2
            || self.done
            || self.dead
            || self.steal_inflight.is_some()
            || !self.ready.is_empty()
            || self.outstanding_io > 0
            || !self.pending_loads.is_empty()
            || (self.deny_streak as usize) >= self.n_nodes - 1
            || self.empty_polls < self.cfg.steal_patience
        {
            return;
        }
        let victim = if let ReplayRole::Replay(st) = &mut self.replay {
            if st.live {
                self.victim_cursor.next_victim(self.node, self.n_nodes)
            } else {
                // Faithful replay: steal only where the record did. A
                // missing decision here is not a divergence — the recorded
                // run simply didn't steal at this poll.
                match st.log.get(st.cursor) {
                    Some(&Decision::StealRequest { victim }) => {
                        st.cursor += 1;
                        Some(victim)
                    }
                    _ => None,
                }
            }
        } else {
            self.victim_cursor.next_victim(self.node, self.n_nodes)
        };
        let Some(victim) = victim else { return };
        self.record_decision(Decision::StealRequest { victim });
        self.stats.steal_requests += 1;
        self.steal_inflight = Some(victim);
        self.am(victim, AM_STEAL_REQ, self.node.to_le_bytes().to_vec());
    }

    fn on_install(&mut self, payload: &[u8]) {
        let mut r = crate::codec::PayloadReader::new(payload);
        let oid = ObjectId(r.u64().expect("install payload well-formed"));
        let priority = r.u8().expect("install payload well-formed");
        let locked = r.u8().expect("install payload well-formed") != 0;
        let version = r.u64().expect("install payload well-formed");
        // Unpack straight from the payload's borrowed bytes — no
        // intermediate copy of the packed object.
        let packed = r.bytes().expect("install payload well-formed");
        let n_msgs = r.u32().expect("install payload well-formed");
        let mut queue = VecDeque::with_capacity(n_msgs as usize);
        for _ in 0..n_msgs {
            queue.push_back(
                Message::decode(r.bytes().expect("install payload well-formed"))
                    .expect("embedded message decodes"),
            );
        }
        let t0 = Instant::now();
        let obj = self
            .registry
            .unpack(packed)
            .expect("install bytes were packed by the sending node from a registered type");
        self.stats.comp += t0.elapsed();
        let footprint = obj.footprint();
        self.admit(footprint);
        let tick = self.ooc.tick();
        self.ooc.note_in(footprint);
        self.table.insert(
            oid,
            TEntry {
                state: TState::InCore(obj),
                queue: VecDeque::new(),
                meta: AccessMeta::new(tick),
                priority,
                locked,
                footprint,
                packed_len: packed.len(),
                spill_key: None,
                pending_migration: None,
                load_queued: false,
                prefetch_hint: false,
                store_inflight: false,
                // Installing is a mutation (matches the checker's
                // `MigrateIn` bump); any bytes spilled on the old node
                // are unreachable here.
                version: version + 1,
                stored_version: None,
            },
        );
        self.dir.update(oid, self.node);
        self.race_access(oid);
        audit_emit!(
            self.audit,
            RuntimeEvent::MigrateIn {
                node: self.node,
                oid,
                queued: n_msgs as usize,
                footprint
            }
        );
        audit_emit!(
            self.audit,
            RuntimeEvent::DirUpdate {
                node: self.node,
                oid,
                loc: self.node
            }
        );
        self.audit_budget(true);
        // An install that lands while a steal request is pending is its
        // answer: count the stolen task and re-arm the thief.
        if self.steal_inflight.take().is_some() {
            self.stats.tasks_stolen += 1;
            self.deny_streak = 0;
        }
        for m in queue {
            self.route_msg(m);
        }
        self.mc_note_available(oid);
    }

    fn on_mc_start(&mut self, info: MulticastInfo, handler: HandlerId, payload: Vec<u8>) {
        let mut waiting = Vec::new();
        for t in &info.targets {
            let oid = t.id;
            if self.entry_present(oid) {
                match self.table[&oid].state {
                    TState::InCore(_) => {
                        self.table
                            .get_mut(&oid)
                            .expect("tracked object has a table entry")
                            .locked = true;
                        audit_emit!(
                            self.audit,
                            RuntimeEvent::Pin {
                                node: self.node,
                                oid
                            }
                        );
                    }
                    _ => {
                        waiting.push(oid);
                        self.table
                            .get_mut(&oid)
                            .expect("tracked object has a table entry")
                            .locked = true;
                        audit_emit!(
                            self.audit,
                            RuntimeEvent::Pin {
                                node: self.node,
                                oid
                            }
                        );
                        self.queue_load(oid);
                    }
                }
            } else {
                waiting.push(oid);
                let owner = self.dir_next_hop(oid);
                let mut p = Vec::with_capacity(10);
                p.extend_from_slice(&oid.0.to_le_bytes());
                p.extend_from_slice(&self.node.to_le_bytes());
                self.am(owner, AM_MIGRATE_REQ, p);
            }
        }
        let mc = McWait {
            info,
            handler,
            payload,
            waiting,
        };
        if mc.waiting.is_empty() {
            self.mc_deliver(mc);
        } else {
            self.multicasts.push(mc);
        }
    }

    fn mc_note_available(&mut self, oid: ObjectId) {
        let mut ready = Vec::new();
        let mut i = 0;
        while i < self.multicasts.len() {
            let mc = &mut self.multicasts[i];
            mc.waiting.retain(|&w| w != oid);
            if mc.waiting.is_empty() {
                ready.push(self.multicasts.swap_remove(i));
            } else {
                i += 1;
            }
        }
        for mc in ready {
            self.mc_deliver(mc);
        }
    }

    fn mc_deliver(&mut self, mc: McWait) {
        audit_emit!(
            self.audit,
            RuntimeEvent::McDeliver {
                node: self.node,
                targets: mc.info.targets.iter().map(|t| t.id).collect()
            }
        );
        for (i, t) in mc.info.targets.iter().enumerate() {
            if (i as u32) < mc.info.deliver_to {
                audit_emit!(
                    self.audit,
                    RuntimeEvent::Post {
                        node: self.node,
                        oid: t.id
                    }
                );
                self.route_msg(Message::new(*t, mc.handler, mc.payload.clone()));
            }
        }
        for t in &mc.info.targets {
            if let Some(e) = self.table.get_mut(&t.id) {
                e.locked = false;
            }
            audit_emit!(
                self.audit,
                RuntimeEvent::Unpin {
                    node: self.node,
                    oid: t.id
                }
            );
        }
    }

    // ----- termination ------------------------------------------------------------

    fn idle(&self) -> bool {
        self.ready.is_empty()
            && self.outstanding_io == 0
            && self.pending_loads.is_empty()
            // A thief awaiting a steal answer is not quiet: the granted
            // install (or the deny) is still in flight toward it.
            && self.steal_inflight.is_none()
            // Under faults a node with an unacked message, a deferred
            // transmission, or a held-back frame is *not* quiet: Safra must
            // never see it idle, or termination could be declared with a
            // retransmit still owed. (The counter sum already protects the
            // released/unacked window; these checks close the rest.)
            && self.net.as_ref().is_none_or(|n| {
                n.tx.outstanding() == 0 && n.deferred.is_empty() && n.rx.held_frames() == 0
            })
    }

    fn send_token(&mut self, to: NodeId, black: bool, q: i64) {
        let mut payload = vec![u8::from(black)];
        payload.extend_from_slice(&q.to_le_bytes());
        self.am(to, AM_TOKEN, payload);
    }

    /// Safra's algorithm: node 0 initiates white tokens carrying a running
    /// message-count sum; a probe that returns white with
    /// `q + counter_0 == 0` to a white, idle node 0 proves global
    /// quiescence.
    fn try_pass_token(&mut self) {
        if !self.idle() {
            return;
        }
        if self.n_nodes == 1 {
            // Idle with no peers and no in-flight work: done.
            self.done = true;
            audit_emit!(self.audit, RuntimeEvent::Terminate { node: self.node });
            return;
        }
        if self.node == 0 {
            if !self.safra.initiated {
                self.safra.start_probe();
                self.send_token(1, false, 0);
                return;
            }
            if self.safra.has_token {
                self.safra.has_token = false;
                if self.safra.probe_clean() {
                    for n in 1..self.n_nodes as NodeId {
                        self.am(n, AM_EXIT, vec![]);
                    }
                    self.done = true;
                    audit_emit!(self.audit, RuntimeEvent::Terminate { node: self.node });
                    return;
                }
                // Unclean probe: whiten and try again.
                self.safra.start_probe();
                self.send_token(1, false, 0);
            }
        } else if self.safra.has_token {
            let (black, q) = self.safra.forward_token();
            let next = ((self.node as usize + 1) % self.n_nodes) as NodeId;
            self.send_token(next, black, q);
        }
    }

    /// While degraded, keep one health probe of the spill store in the
    /// I/O pool; its completion decides whether to exit degraded mode.
    fn maybe_probe(&mut self) {
        if self.ooc.is_degraded() && !self.probe_inflight && !self.done {
            self.probe_inflight = true;
            self.outstanding_io += 1;
            self.io_tx.send(IoReq::Probe).ok();
        }
    }

    fn run(mut self) -> WorkerResult {
        while !self.done {
            // 1. Drain the fabric.
            while let Some(am) = self.recv_fabric(false) {
                self.on_fabric(am);
                if self.done || self.dead {
                    break;
                }
            }
            if self.dead {
                return self.run_dead();
            }
            if self.done {
                break;
            }
            // 2. Reliable-delivery timers: deferred transmissions and
            //    retransmit backoffs (no-op without a net-fault plan).
            self.net_pump();
            if self.done {
                break;
            }
            // 3. Drain I/O completions.
            while let Some(done) = self.recv_io(false) {
                self.on_io(done);
            }
            // 4. Issue queued loads under the prefetch window, so the disk
            //    streams while step() executes resident work.
            self.pump_loads();
            self.maybe_probe();
            // 5. Execute one handler.
            if self.step() {
                // Local progress re-arms the steal heuristics.
                self.empty_polls = 0;
                self.deny_streak = 0;
                if self.net.is_some() {
                    self.net.as_mut().expect("net layer").handlers_run += 1;
                    if self.check_kill() {
                        return self.run_dead();
                    }
                }
                continue;
            }
            // 6. Idle: try to steal work, run the termination protocol,
            //    then block briefly. The blocking poll is the engine's
            //    idle-time measurement point: nothing ready, nothing in
            //    the I/O pool, just waiting on peers.
            self.maybe_steal();
            self.try_pass_token();
            if self.done {
                break;
            }
            let t_idle = Instant::now();
            let am = self.recv_fabric(true);
            self.stats.idle += t_idle.elapsed();
            match am {
                Some(am) => {
                    self.empty_polls = 0;
                    self.on_fabric(am);
                    if self.dead {
                        return self.run_dead();
                    }
                }
                None => {
                    self.stats.idle_ticks += 1;
                    self.empty_polls += 1;
                }
            }
        }
        // Drain outstanding I/O so every object is materializable.
        while self.outstanding_io > 0 {
            match self.recv_io(true) {
                Some(done) => self.on_io(done),
                None => break, // pool gone; nothing more will arrive
            }
            self.pump_loads();
        }
        audit_emit!(
            self.audit,
            RuntimeEvent::Shutdown {
                node: self.node,
                used: self.ooc.used()
            }
        );
        // Materialize all objects for extraction.
        let mut out: HashMap<ObjectId, ExtractedObject> = HashMap::new();
        let keys: Vec<ObjectId> = self.table.keys().copied().collect();
        for oid in keys {
            let e = self
                .table
                .remove(&oid)
                .expect("tracked object has a table entry");
            let (priority, locked) = (e.priority, e.locked);
            match e.state {
                TState::InCore(obj) => {
                    out.insert(
                        oid,
                        ExtractedObject {
                            obj,
                            priority,
                            locked,
                        },
                    );
                }
                TState::OnDisk | TState::Loading => {
                    // Loading cannot remain (outstanding_io drained), but
                    // both carry a spill key.
                    let key = e.spill_key.expect("spilled object has a key");
                    self.io_tx.send(IoReq::Load { key, oid }).ok();
                    match self.io_rx.recv() {
                        Ok(IoDone::Loaded { obj, .. }) => {
                            out.insert(
                                oid,
                                ExtractedObject {
                                    obj,
                                    priority,
                                    locked,
                                },
                            );
                        }
                        Ok(IoDone::LoadFailed {
                            error, attempts, ..
                        }) if self.fatal.is_none() => {
                            self.fatal = Some(MrtsError::LoadFailed {
                                node: self.node,
                                oid,
                                attempts,
                                source: error,
                            });
                        }
                        _ => {}
                    }
                }
                TState::Moved(_) => {}
            }
        }
        for _ in 0..self.cfg.io_threads {
            self.io_tx.send(IoReq::Shutdown).ok();
        }
        // Peak footprint comes from the budget manager's own high-water
        // mark — the single source of truth for in-core accounting.
        self.stats.peak_mem = self.ooc.peak_used;
        if self.cfg.locality {
            self.stats.locality_digest = self.locality.digest();
        }
        let decisions = self.finish_replay(true);
        WorkerResult {
            node: self.node,
            objects: out,
            stats: self.stats,
            next_seq: self.next_obj_seq,
            fatal: self.fatal,
            decisions,
        }
    }

    /// Close out the record/replay role at worker shutdown: hand the
    /// recorded decisions back, and in replay mode flag unconsumed
    /// residual decisions (the recorded run did more than we did) as one
    /// final divergence.
    fn finish_replay(&mut self, count_residual: bool) -> Vec<Decision> {
        match std::mem::replace(&mut self.replay, ReplayRole::Off) {
            ReplayRole::Record(log) => log,
            ReplayRole::Replay(st) => {
                if count_residual && !st.live && st.cursor < st.log.len() {
                    self.stats.replay_divergences += 1;
                }
                Vec::new()
            }
            ReplayRole::Off => Vec::new(),
        }
    }

    /// Crashed-node mode (`NetFaultPlan::kill_node`): the worker goes
    /// silent — no sends, no acks, no handler execution — and merely
    /// drains its inbox until a survivor's retransmit exhaustion escalates
    /// into an exit broadcast that releases the thread. Its objects are
    /// lost with it, exactly like a real node crash; recovery is the
    /// checkpoint subsystem's job (see `crate::checkpoint` and
    /// `tests/chaos.rs`).
    fn run_dead(mut self) -> WorkerResult {
        audit_emit!(self.audit, RuntimeEvent::Terminate { node: self.node });
        // A replaying worker's sequencer may already hold frames or
        // completions pulled off the channels; a crashed node discards
        // them like everything else (including a buffered exit, which
        // would otherwise never be seen again).
        let mut buffered_exit = false;
        if let ReplayRole::Replay(st) = &mut self.replay {
            self.outstanding_io = self.outstanding_io.saturating_sub(st.io_buf.len());
            st.io_buf.clear();
            buffered_exit = st.fabric_buf.iter().any(|m| m.handler == AM_EXIT);
            st.fabric_buf.clear();
        }
        if !buffered_exit {
            loop {
                // Keep the I/O pool from backing up while we linger.
                while self.io_rx.try_recv().is_ok() {
                    self.outstanding_io = self.outstanding_io.saturating_sub(1);
                }
                match self.ep.recv_timeout(Duration::from_millis(2)) {
                    Some(am) if am.handler == AM_EXIT => break,
                    _ => {} // discarded unanswered — the node is gone
                }
            }
        }
        while self.outstanding_io > 0 {
            if self.io_rx.recv().is_err() {
                break;
            }
            self.outstanding_io -= 1;
        }
        for _ in 0..self.cfg.io_threads {
            self.io_tx.send(IoReq::Shutdown).ok();
        }
        self.stats.peak_mem = self.ooc.peak_used;
        // A crash truncates the schedule by design: residual recorded
        // decisions past the kill point are not a divergence.
        let decisions = self.finish_replay(false);
        WorkerResult {
            node: self.node,
            objects: HashMap::new(),
            stats: self.stats,
            next_seq: self.next_obj_seq,
            fatal: None,
            decisions,
        }
    }
}

/// An object recovered from a worker at shutdown, with the metadata a
/// checkpoint needs.
struct ExtractedObject {
    obj: Box<dyn MobileObject>,
    priority: u8,
    locked: bool,
}

struct WorkerResult {
    node: NodeId,
    objects: HashMap<ObjectId, ExtractedObject>,
    stats: NodeStats,
    next_seq: u64,
    fatal: Option<MrtsError>,
    /// This worker's decision stream (record mode only; empty otherwise).
    decisions: Vec<Decision>,
}

/// Bounded pool of reusable pack buffers shared by one node's I/O pool
/// workers. `max = 0` disables pooling (the legacy-spill escape hatch):
/// every `get` misses and every `put` drops the buffer.
struct BufferPool {
    bufs: crate::sync::Mutex<Vec<Vec<u8>>>,
    max: usize,
}

impl BufferPool {
    fn new(max: usize) -> Self {
        BufferPool {
            bufs: crate::sync::Mutex::new(Vec::new()),
            max,
        }
    }

    /// A buffer to pack into, plus whether it came from the pool (its
    /// capacity is reused — no fresh allocation on the hot path).
    fn get(&self) -> (Vec<u8>, bool) {
        match self.bufs.lock().pop() {
            Some(b) => (b, true),
            None => (Vec::new(), false),
        }
    }

    fn put(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut g = self.bufs.lock();
        if g.len() < self.max {
            g.push(buf);
        }
    }
}

/// Spawn the node's I/O pool: `n_threads` workers sharing one spill store
/// behind a mutex. Pack/unpack run on the pool **outside** the store lock,
/// so serialization of one object overlaps the disk op of another and the
/// node's control thread never blocks on either. Pack buffers are drawn
/// from a bounded [`BufferPool`] (capacity `pool_max`) and recycled after
/// each store — and load result buffers feed back into it.
fn spawn_io_pool(
    node: NodeId,
    store: Box<dyn StorageBackend>,
    registry: std::sync::Arc<Registry>,
    n_threads: usize,
    retry: RetryPolicy,
    pool_max: usize,
    audit: Option<std::sync::Arc<dyn crate::audit::EventSink>>,
) -> (
    channel::Sender<IoReq>,
    channel::Receiver<IoDone>,
    Vec<std::thread::JoinHandle<()>>,
) {
    let (req_tx, req_rx) = channel::unbounded::<IoReq>();
    let (done_tx, done_rx) = channel::unbounded::<IoDone>();
    let store = crate::sync::Arc::new(crate::sync::Mutex::new(store));
    let pool = std::sync::Arc::new(BufferPool::new(pool_max));
    let mut handles = Vec::with_capacity(n_threads);
    for t in 0..n_threads {
        let req_rx = req_rx.clone();
        let done_tx = done_tx.clone();
        let store = store.clone();
        let pool = pool.clone();
        let registry = registry.clone();
        let audit = audit.clone();
        let handle = std::thread::Builder::new()
            .name(format!("mrts-io-{t}"))
            .spawn(move || {
                while let Ok(req) = req_rx.recv() {
                    match req {
                        IoReq::Store { key, obj, oid } => {
                            let t0 = Instant::now();
                            let (mut bytes, pool_hit) = pool.get();
                            Registry::pack_into(obj.as_ref(), &mut bytes);
                            let pack_dur = t0.elapsed();
                            drop(obj);
                            let packed_len = bytes.len();
                            let t1 = Instant::now();
                            let mut retries = 0u32;
                            let mut faults = 0usize;
                            let mut reorders = 0usize;
                            let mut attempt = 0u32;
                            // Retry with real backoff sleeps (outside the
                            // store lock). A torn write is repaired by the
                            // retry overwriting the same key: per-key
                            // ordering means no load races this store.
                            let outcome = loop {
                                attempt += 1;
                                let (res, fr, cr) = {
                                    let mut s = store.lock();
                                    let res = s.store(key, &bytes);
                                    // Drained unconditionally so the backend's
                                    // report buffers never accumulate.
                                    (res, s.take_fault_reports(), s.take_compaction_reports())
                                };
                                faults += fr.len();
                                reorders += count_reorders(&cr);
                                emit_faults(node, &fr, &audit);
                                emit_compactions(node, &cr, &audit);
                                match res {
                                    Ok(()) => break Ok(()),
                                    Err(e) => {
                                        if attempt >= retry.max_attempts || is_out_of_space(&e) {
                                            break Err(e);
                                        }
                                        retries += 1;
                                        emit_retry(node, oid, attempt, &audit);
                                        std::thread::sleep(retry.delay(attempt, key));
                                    }
                                }
                            };
                            let io_dur = t1.elapsed();
                            let done = match outcome {
                                Ok(()) => {
                                    let done = IoDone::Stored {
                                        oid,
                                        packed_len,
                                        io_dur,
                                        pack_dur,
                                        retries,
                                        faults,
                                        pool_hit,
                                        reorders,
                                    };
                                    pool.put(bytes);
                                    done
                                }
                                Err(_) => IoDone::StoreFailed {
                                    // The store rejected it: rebuild the
                                    // object from the packed bytes so the
                                    // control thread can reinstate it.
                                    oid,
                                    obj: registry
                                        .unpack(&bytes)
                                        .expect("store holds pack output of registered types"),
                                    io_dur,
                                    pack_dur,
                                    retries,
                                    faults,
                                },
                            };
                            done_tx.send(done).ok();
                        }
                        IoReq::StoreBatch { items } => {
                            // Pack every object into a pooled buffer, then
                            // land the whole batch through one
                            // `store_batch` call under one lock hold: a
                            // single coalesced append on the segment log.
                            let t0 = Instant::now();
                            let mut pool_hits = 0usize;
                            let mut packed: Vec<(u64, Vec<u8>, ObjectId)> =
                                Vec::with_capacity(items.len());
                            for (key, obj, oid) in items {
                                let (mut buf, hit) = pool.get();
                                pool_hits += usize::from(hit);
                                Registry::pack_into(obj.as_ref(), &mut buf);
                                drop(obj);
                                packed.push((key, buf, oid));
                            }
                            let pack_dur = t0.elapsed();
                            let first = packed[0].2;
                            let t1 = Instant::now();
                            let mut retries = 0u32;
                            let mut faults = 0usize;
                            let mut reorders = 0usize;
                            let mut attempt = 0u32;
                            let outcome = loop {
                                attempt += 1;
                                let pairs: Vec<(u64, &[u8])> =
                                    packed.iter().map(|(k, b, _)| (*k, b.as_slice())).collect();
                                let (res, fr, cr) = {
                                    let mut s = store.lock();
                                    let res = s.store_batch(&pairs);
                                    (res, s.take_fault_reports(), s.take_compaction_reports())
                                };
                                faults += fr.len();
                                reorders += count_reorders(&cr);
                                emit_faults(node, &fr, &audit);
                                emit_compactions(node, &cr, &audit);
                                match res {
                                    Ok(()) => break Ok(()),
                                    Err(e) => {
                                        if attempt >= retry.max_attempts || is_out_of_space(&e) {
                                            break Err(e);
                                        }
                                        retries += 1;
                                        emit_retry(node, first, attempt, &audit);
                                        std::thread::sleep(retry.delay(attempt, packed[0].0));
                                    }
                                }
                            };
                            let io_dur = t1.elapsed();
                            let done = match outcome {
                                Ok(()) => {
                                    let mut out = Vec::with_capacity(packed.len());
                                    for (_, buf, oid) in packed {
                                        out.push((oid, buf.len()));
                                        pool.put(buf);
                                    }
                                    IoDone::StoredBatch {
                                        items: out,
                                        io_dur,
                                        pack_dur,
                                        retries,
                                        faults,
                                        pool_hits,
                                        reorders,
                                    }
                                }
                                Err(_) => IoDone::StoreBatchFailed {
                                    items: packed
                                        .iter()
                                        .map(|(_, b, oid)| {
                                            let obj = registry.unpack(b).expect(
                                                "store holds pack output of registered types",
                                            );
                                            (*oid, obj)
                                        })
                                        .collect(),
                                    io_dur,
                                    pack_dur,
                                    retries,
                                    faults,
                                },
                            };
                            done_tx.send(done).ok();
                        }
                        IoReq::Load { key, oid } => {
                            let t0 = Instant::now();
                            let mut retries = 0u32;
                            let mut faults = 0usize;
                            let mut seg_reads = 0u64;
                            let mut seg_switches = 0u64;
                            let mut attempt = 0u32;
                            let outcome = loop {
                                attempt += 1;
                                let (res, fr, rs) = {
                                    let mut s = store.lock();
                                    (s.load(key), s.take_fault_reports(), s.take_read_stats())
                                };
                                faults += fr.len();
                                seg_reads += rs.0;
                                seg_switches += rs.1;
                                emit_faults(node, &fr, &audit);
                                match res {
                                    Ok(b) => break Ok(b),
                                    Err(e) => {
                                        if attempt >= retry.max_attempts {
                                            break Err(e);
                                        }
                                        retries += 1;
                                        emit_retry(node, oid, attempt, &audit);
                                        std::thread::sleep(retry.delay(attempt, key));
                                    }
                                }
                            };
                            let io_dur = t0.elapsed();
                            let done = match outcome {
                                Ok(bytes) => {
                                    let packed_len = bytes.len();
                                    let t1 = Instant::now();
                                    let obj = registry
                                        .unpack(&bytes)
                                        .expect("store holds pack output of registered types");
                                    let unpack_dur = t1.elapsed();
                                    // The loaded allocation feeds the pack
                                    // buffer pool for future stores.
                                    pool.put(bytes);
                                    IoDone::Loaded {
                                        oid,
                                        obj,
                                        packed_len,
                                        io_dur,
                                        unpack_dur,
                                        retries,
                                        faults,
                                        seg_reads,
                                        seg_switches,
                                    }
                                }
                                Err(error) => IoDone::LoadFailed {
                                    oid,
                                    error,
                                    attempts: attempt,
                                    retries,
                                    faults,
                                },
                            };
                            done_tx.send(done).ok();
                        }
                        IoReq::SetRanks(ranks) => {
                            // Fire-and-forget placement hint: no reply.
                            store.lock().set_key_ranks(&ranks);
                        }
                        IoReq::Probe => {
                            let (ok, fr) = {
                                let mut s = store.lock();
                                (s.probe().is_ok(), s.take_fault_reports())
                            };
                            emit_faults(node, &fr, &audit);
                            done_tx
                                .send(IoDone::Probed {
                                    ok,
                                    faults: fr.len(),
                                })
                                .ok();
                        }
                        IoReq::Shutdown => break,
                    }
                }
            })
            .expect("spawn io thread");
        handles.push(handle);
    }
    (req_tx, done_rx, handles)
}

/// Forward injected-fault reports from the I/O pool to the audit sink
/// (compiled out without the `audit` feature in release builds).
#[allow(unused_variables)]
fn emit_faults(
    node: NodeId,
    reports: &[crate::fault::FaultReport],
    audit: &Option<std::sync::Arc<dyn crate::audit::EventSink>>,
) {
    #[cfg(any(feature = "audit", debug_assertions))]
    {
        if let Some(sink) = audit.as_ref() {
            for r in reports {
                sink.record(&RuntimeEvent::Fault {
                    node,
                    kind: r.kind,
                    key: r.key,
                });
            }
        }
    }
}

/// Emit a retry event from an I/O pool thread.
#[allow(unused_variables)]
fn emit_retry(
    node: NodeId,
    oid: ObjectId,
    attempt: u32,
    audit: &Option<std::sync::Arc<dyn crate::audit::EventSink>>,
) {
    #[cfg(any(feature = "audit", debug_assertions))]
    {
        if let Some(sink) = audit.as_ref() {
            sink.record(&RuntimeEvent::Retry { node, oid, attempt });
        }
    }
}

/// Forward compaction reports from the I/O pool to the audit sink. The
/// emission body compiles out in release builds without the `audit`
/// feature, but callers drain the reports either way.
#[allow(unused_variables)]
fn emit_compactions(
    node: NodeId,
    reports: &[crate::storage::CompactionReport],
    audit: &Option<std::sync::Arc<dyn crate::audit::EventSink>>,
) {
    #[cfg(any(feature = "audit", debug_assertions))]
    {
        if let Some(sink) = audit.as_ref() {
            for r in reports {
                sink.record(&RuntimeEvent::Compaction {
                    node,
                    live_objects_before: r.live_objects_before,
                    live_objects_after: r.live_objects_after,
                    live_bytes_before: r.live_bytes_before,
                    live_bytes_after: r.live_bytes_after,
                    reclaimed_bytes: r.reclaimed_bytes,
                });
                if r.curve_ordered > 0 {
                    sink.record(&RuntimeEvent::CompactionReorder {
                        node,
                        curve_ordered: r.curve_ordered,
                        live_objects: r.live_objects_after,
                    });
                }
            }
        }
    }
}

/// Compactions in `reports` that rewrote live records in curve order
/// (counted outside the audit gate — the stats counter must not depend on
/// whether auditing is compiled in).
fn count_reorders(reports: &[crate::storage::CompactionReport]) -> usize {
    reports.iter().filter(|r| r.curve_ordered > 0).count()
}

enum BootAction {
    Create {
        node: NodeId,
        id: ObjectId,
        obj: Box<dyn MobileObject>,
        priority: u8,
        locked: bool,
    },
    Lock(MobilePtr),
    Post(MobilePtr, HandlerId, Vec<u8>),
}

/// Post-run object record kept by [`ThreadedRuntime`]; the placement and
/// metadata feed [`crate::checkpoint::Checkpoint`] capture.
pub(crate) struct ResultEntry {
    pub(crate) obj: Box<dyn MobileObject>,
    pub(crate) priority: u8,
    pub(crate) locked: bool,
    pub(crate) node: NodeId,
}

/// The threaded MRTS engine. Mirrors [`crate::des::DesRuntime`]'s API:
/// register types/handlers, create bootstrap objects, post initial
/// messages, [`ThreadedRuntime::run`], then inspect results.
pub struct ThreadedRuntime {
    cfg: MrtsConfig,
    registry: Registry,
    boot: Vec<BootAction>,
    next_seq: Vec<u64>,
    /// Post-run: all objects by id, with the metadata a checkpoint needs.
    results: HashMap<ObjectId, ResultEntry>,
    /// Record every worker's nondeterministic decisions next run.
    record_decisions: bool,
    /// Replay the next run against this recorded decision log.
    replay_log: Option<DecisionLog>,
    /// The decision log captured by the last recorded run.
    captured: Option<DecisionLog>,
    #[cfg(any(feature = "audit", debug_assertions))]
    audit: Option<std::sync::Arc<dyn crate::audit::EventSink>>,
    #[cfg(any(feature = "audit", debug_assertions))]
    race: Option<std::sync::Arc<crate::audit::RaceDetector>>,
}

impl ThreadedRuntime {
    pub fn new(cfg: MrtsConfig) -> Self {
        cfg.validate().expect("invalid MrtsConfig");
        let nodes = cfg.nodes;
        ThreadedRuntime {
            cfg,
            registry: Registry::new(),
            boot: Vec::new(),
            next_seq: vec![0; nodes],
            results: HashMap::new(),
            record_decisions: false,
            replay_log: None,
            captured: None,
            #[cfg(any(feature = "audit", debug_assertions))]
            audit: None,
            #[cfg(any(feature = "audit", debug_assertions))]
            race: None,
        }
    }

    /// Attach a runtime-event sink (e.g. [`crate::audit::InvariantChecker`]
    /// or [`crate::audit::EventLog`]). The sink is shared by every worker
    /// thread, which linearizes the event stream; emissions are ordered so
    /// that causally related events (a migration's departure and arrival,
    /// a post and its delivery) reach the sink in causal order.
    ///
    /// Only available in debug builds or with the `audit` feature; release
    /// builds without the feature compile the instrumentation out.
    #[cfg(any(feature = "audit", debug_assertions))]
    pub fn attach_audit(&mut self, sink: std::sync::Arc<dyn crate::audit::EventSink>) {
        self.audit = Some(sink);
    }

    /// Attach a happens-before race detector sized for this runtime's node
    /// count. Every fabric send/receive contributes a vector-clock edge and
    /// every object access is checked against the last conflicting access.
    #[cfg(any(feature = "audit", debug_assertions))]
    pub fn attach_race_detector(&mut self, det: std::sync::Arc<crate::audit::RaceDetector>) {
        self.race = Some(det);
    }

    /// Record every nondeterministic decision of the next run: which
    /// fabric edge won each poll, which I/O completion landed when, and
    /// when each reliable-layer deferred flush / retransmit timer fired.
    /// Retrieve the log afterwards with
    /// [`ThreadedRuntime::take_decision_log`]. Always available (the
    /// decision stream is engine state, not audit instrumentation).
    pub fn record_decisions(&mut self) {
        self.record_decisions = true;
    }

    /// Replay the next run against a recorded decision log: every
    /// worker substitutes the recorded outcomes for live nondeterminism.
    /// A worker that cannot follow its schedule (event mismatch, wait
    /// timeout, log exhaustion) counts a `replay_divergences` and falls
    /// back to live execution rather than deadlocking.
    pub fn replay_decisions(&mut self, log: DecisionLog) {
        self.replay_log = Some(log);
    }

    /// The decision log captured by the last run started after
    /// [`ThreadedRuntime::record_decisions`], if any.
    pub fn take_decision_log(&mut self) -> Option<DecisionLog> {
        self.captured.take()
    }

    pub fn register_type(&mut self, tag: crate::ids::TypeTag, decode: crate::object::DecodeFn) {
        self.registry.register_type(tag, decode);
    }

    pub fn register_handler(
        &mut self,
        id: HandlerId,
        name: &'static str,
        f: crate::object::HandlerFn,
    ) {
        self.registry.register_handler(id, name, f);
    }

    pub fn create_object(
        &mut self,
        node: NodeId,
        obj: Box<dyn MobileObject>,
        priority: u8,
    ) -> MobilePtr {
        let id = ObjectId::new(node, self.next_seq[node as usize]);
        self.next_seq[node as usize] += 1;
        self.boot.push(BootAction::Create {
            node,
            id,
            obj,
            priority,
            locked: false,
        });
        MobilePtr::new(id)
    }

    pub fn lock_object(&mut self, ptr: MobilePtr) {
        self.boot.push(BootAction::Lock(ptr));
    }

    pub fn post(&mut self, to: MobilePtr, handler: HandlerId, payload: Vec<u8>) {
        self.boot.push(BootAction::Post(to, handler, payload));
    }

    /// Run to distributed termination; returns wall-clock statistics.
    /// Panics if a spilled object became unreadable — use
    /// [`ThreadedRuntime::try_run`] to handle that as a typed error.
    pub fn run(&mut self) -> RunStats {
        self.try_run()
            .unwrap_or_else(|e| panic!("MRTS run failed: {e}"))
    }

    /// Like [`ThreadedRuntime::run`], but surfaces unrecoverable storage
    /// failures (a spilled object unreadable after exhausting the retry
    /// policy) as [`MrtsError`] instead of panicking. The failing node
    /// broadcasts an exit to every peer, so all workers stop and join.
    pub fn try_run(&mut self) -> Result<RunStats, MrtsError> {
        let n = self.cfg.nodes;
        let endpoints = Fabric::new(n, NetworkModel::instant());
        let registry = std::sync::Arc::new(std::mem::take(&mut self.registry));
        // A replay log is consumed by the run it drives.
        let replay_log = self.replay_log.take();

        let mut workers: Vec<Worker> = Vec::with_capacity(n);
        let mut io_handles = Vec::with_capacity(n);
        for (i, ep) in endpoints.into_iter().enumerate() {
            let store: Box<dyn StorageBackend> = match &self.cfg.spill_dir {
                Some(dir) => {
                    let node_dir = dir.join(format!("node-{i}"));
                    match self.cfg.spill_backend {
                        SpillBackend::SegmentLog => Box::new(
                            SegmentStore::open(
                                node_dir,
                                self.cfg.segment_bytes,
                                self.cfg.segment_garbage_frac,
                            )
                            .expect("spill dir")
                            .cleanup_on_drop(true),
                        ),
                        SpillBackend::PerObjectFile => {
                            Box::new(FileStore::new(node_dir).expect("spill dir"))
                        }
                    }
                }
                None => Box::new(MemStore::new()),
            };
            // Per-node seed offset: each node draws its own fault schedule,
            // like distinct physical disks failing independently. Latency
            // spikes really sleep here (wall-clock engine).
            let store: Box<dyn StorageBackend> = match self.cfg.fault {
                Some(plan) => Box::new(
                    FaultyStore::new(
                        store,
                        FaultPlan {
                            seed: plan.seed.wrapping_add(i as u64),
                            ..plan
                        },
                    )
                    .with_real_sleep(true),
                ),
                None => store,
            };
            #[cfg(any(feature = "audit", debug_assertions))]
            let pool_audit = self.audit.clone();
            #[cfg(not(any(feature = "audit", debug_assertions)))]
            let pool_audit: Option<std::sync::Arc<dyn crate::audit::EventSink>> = None;
            // Legacy spill disables buffer pooling (capacity 0: every get
            // allocates, every put drops).
            let pool_max = if self.cfg.legacy_spill {
                0
            } else {
                self.cfg.io_threads * 2 + 2
            };
            let (io_tx, io_rx, handles) = spawn_io_pool(
                i as NodeId,
                store,
                registry.clone(),
                self.cfg.io_threads,
                self.cfg.retry,
                pool_max,
                pool_audit,
            );
            io_handles.extend(handles);
            let backend: Box<dyn TaskBackend> = if self.cfg.cores_per_node <= 1 {
                Box::new(SequentialBackend)
            } else {
                match self.cfg.executor {
                    ExecutorKind::WorkStealing => {
                        Box::new(WorkStealingPool::new(self.cfg.cores_per_node))
                    }
                    ExecutorKind::Fifo => Box::new(FifoPool::new(self.cfg.cores_per_node)),
                }
            };
            workers.push(Worker {
                node: i as NodeId,
                n_nodes: n,
                cfg: self.cfg.clone(),
                registry: registry.clone(),
                ep,
                table: HashMap::new(),
                ooc: OocManager::new(
                    self.cfg.mem_budget,
                    self.cfg.hard_threshold_mult,
                    self.cfg.soft_threshold_frac,
                    self.cfg.policy,
                ),
                dir: Directory::new(),
                ready: VecDeque::new(),
                io_tx,
                io_rx,
                outstanding_io: 0,
                pending_loads: VecDeque::new(),
                inflight_load_objs: 0,
                inflight_load_bytes: 0,
                locality: LocalityMap::new(self.cfg.locality_cluster_objects),
                ranks_gen: 0,
                ranks_keys: 0,
                last_anchor_key: 0,
                backend,
                stats: NodeStats::default(),
                next_obj_seq: 0,
                next_spill_key: 0,
                multicasts: Vec::new(),
                safra: Safra::new(),
                done: false,
                net: self.cfg.net_fault.map(|plan| NetLayer {
                    plan,
                    tx: ReliableSender::new(),
                    rx: ReliableReceiver::new(),
                    timers: HashMap::new(),
                    deferred: Vec::new(),
                    handlers_run: 0,
                    kill_at: plan.kills(i as NodeId),
                }),
                dead: false,
                probe_inflight: false,
                fatal: None,
                replay: match &replay_log {
                    Some(log) => ReplayRole::Replay(Box::new(ReplayState {
                        // A node absent from the log replays an empty
                        // schedule: immediate divergence + live fallback.
                        log: log.nodes.get(i).cloned().unwrap_or_default(),
                        cursor: 0,
                        fabric_buf: VecDeque::new(),
                        io_buf: VecDeque::new(),
                        live: false,
                        wait: self.cfg.replay_wait,
                    })),
                    None if self.record_decisions => ReplayRole::Record(Vec::new()),
                    None => ReplayRole::Off,
                },
                steal_inflight: None,
                victim_cursor: VictimCursor::new(),
                empty_polls: 0,
                deny_streak: 0,
                #[cfg(any(feature = "audit", debug_assertions))]
                audit: self.audit.clone(),
                #[cfg(any(feature = "audit", debug_assertions))]
                race: self.race.clone(),
            });
        }

        // Apply bootstrap actions.
        for action in self.boot.drain(..) {
            match action {
                BootAction::Create {
                    node,
                    id,
                    obj,
                    priority,
                    locked,
                } => {
                    let w = &mut workers[node as usize];
                    let footprint = obj.footprint();
                    let tick = w.ooc.tick();
                    w.ooc.note_in(footprint);
                    w.next_obj_seq = w.next_obj_seq.max(id.seq() + 1);
                    w.table.insert(
                        id,
                        TEntry {
                            state: TState::InCore(obj),
                            queue: VecDeque::new(),
                            meta: AccessMeta::new(tick),
                            priority,
                            locked,
                            footprint,
                            packed_len: 0,
                            spill_key: None,
                            pending_migration: None,
                            load_queued: false,
                            prefetch_hint: false,
                            store_inflight: false,
                            version: 0,
                            stored_version: None,
                        },
                    );
                    if locked {
                        audit_emit!(w.audit, RuntimeEvent::Pin { node, oid: id });
                    }
                    audit_emit!(
                        w.audit,
                        RuntimeEvent::Create {
                            node,
                            oid: id,
                            footprint
                        }
                    );
                    // Bootstrap creation bypasses admission (threads are not
                    // running yet), so the budget may legitimately overshoot.
                    w.audit_budget(false);
                }
                BootAction::Lock(p) => {
                    // Modulo: after a restore onto fewer nodes, homes wrap
                    // (matches `Worker::home_of` and the restore placement).
                    let h = p.id.home() as usize % n;
                    let w = &mut workers[h];
                    w.table.get_mut(&p.id).expect("boot lock target").locked = true;
                    audit_emit!(
                        w.audit,
                        RuntimeEvent::Pin {
                            node: h as NodeId,
                            oid: p.id
                        }
                    );
                }
                BootAction::Post(to, handler, payload) => {
                    let w = &mut workers[to.id.home() as usize % n];
                    audit_emit!(
                        w.audit,
                        RuntimeEvent::Post {
                            node: w.node,
                            oid: to.id
                        }
                    );
                    let msg = Message::new(to, handler, payload);
                    w.route_msg(msg);
                }
            }
        }
        // Sequence watermarks: a checkpoint restore may carry allocation
        // counters past the highest installed id; never reuse ids.
        for (i, w) in workers.iter_mut().enumerate() {
            w.next_obj_seq = w.next_obj_seq.max(self.next_seq[i]);
        }

        let t0 = Instant::now();
        let mut joins = Vec::with_capacity(n);
        for w in workers {
            joins.push(std::thread::spawn(move || w.run()));
        }
        let mut nodes_stats = vec![NodeStats::default(); n];
        let mut fatal: Option<MrtsError> = None;
        let mut captured = DecisionLog::new(n);
        for j in joins {
            let r = j.join().expect("worker panic");
            captured.nodes[r.node as usize] = r.decisions;
            nodes_stats[r.node as usize] = r.stats;
            self.next_seq[r.node as usize] = self.next_seq[r.node as usize].max(r.next_seq);
            for (oid, x) in r.objects {
                self.results.insert(
                    oid,
                    ResultEntry {
                        obj: x.obj,
                        priority: x.priority,
                        locked: x.locked,
                        node: r.node,
                    },
                );
            }
            if fatal.is_none() {
                fatal = r.fatal;
            }
        }
        let total = t0.elapsed();
        if self.record_decisions {
            self.captured = Some(captured);
        }
        // The I/O pool threads hold registry clones for unpacking; join
        // them before reclaiming the registry.
        for h in io_handles {
            let _ = h.join();
        }
        self.registry = std::sync::Arc::try_unwrap(registry)
            .unwrap_or_else(|_| panic!("registry still shared"));
        match fatal {
            Some(e) => Err(e),
            None => Ok(RunStats {
                total,
                nodes: nodes_stats,
                // Workers accumulate overlap directly (handler time with
                // storage ops in flight), so `overlap_pct` reports the
                // measurement instead of the busy-excess estimate.
                measured_overlap: true,
            }),
        }
    }

    /// Inspect an object after the run.
    pub fn with_object<R>(&self, ptr: MobilePtr, f: impl FnOnce(&dyn MobileObject) -> R) -> R {
        let entry = self
            .results
            .get(&ptr.id)
            .unwrap_or_else(|| panic!("no object {:?}", ptr.id));
        f(entry.obj.as_ref())
    }

    /// Visit every object that survived the run.
    pub fn for_each_object(&self, mut f: impl FnMut(ObjectId, &dyn MobileObject)) {
        for (oid, entry) in &self.results {
            f(*oid, entry.obj.as_ref());
        }
    }

    pub fn num_objects(&self) -> usize {
        self.results.len()
    }

    // ----- checkpoint support (see crate::checkpoint) ------------------------

    pub fn config(&self) -> &MrtsConfig {
        &self.cfg
    }

    /// Post-run results with metadata, for checkpoint capture.
    pub(crate) fn result_entries(&self) -> &HashMap<ObjectId, ResultEntry> {
        &self.results
    }

    /// Per-node object-sequence watermarks observed at shutdown.
    pub(crate) fn seq_watermarks(&self) -> &[u64] {
        &self.next_seq
    }

    /// Install an object from a checkpoint entry (bootstrap-time): it will
    /// be created on `node` when the next [`ThreadedRuntime::run`] boots.
    pub(crate) fn boot_install(
        &mut self,
        node: NodeId,
        id: ObjectId,
        obj: Box<dyn MobileObject>,
        priority: u8,
        locked: bool,
    ) {
        self.boot.push(BootAction::Create {
            node,
            id,
            obj,
            priority,
            locked,
        });
    }

    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Raise a node's boot sequence watermark (checkpoint restore).
    pub(crate) fn set_seq_watermark(&mut self, node: NodeId, seq: u64) {
        let s = &mut self.next_seq[node as usize];
        *s = (*s).max(seq);
    }
}
