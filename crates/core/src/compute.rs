//! The computing layer: task-parallel execution inside message handlers.
//!
//! The paper's MRTS wraps two industrial multi-threading technologies —
//! Intel TBB (work-stealing) and Apple GCD (global dispatch queue) — behind
//! a uniform interface; message handlers are tasks that may spawn child
//! tasks. This module provides the same shape:
//!
//! * [`TaskBackend`] — the uniform interface: run a batch of tasks to
//!   completion, reporting per-task durations;
//! * [`WorkStealingPool`] — TBB-like: per-worker Chase–Lev deques with
//!   stealing (via `crossbeam-deque`);
//! * [`FifoPool`] — GCD-like: a single global FIFO queue;
//! * [`SequentialBackend`] — runs tasks serially while *measuring* them;
//!   used by the discrete-event (virtual-time) mode, which converts the
//!   measurements into a parallel makespan via [`ExecutorKind::makespan`].

use crossbeam_channel as channel;
use crossbeam_deque::{Injector, Stealer, Worker};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A child task spawned by a message handler.
pub type Task = Box<dyn FnOnce() + Send>;

/// What a parallel section did: per-task durations plus the wall-clock time
/// the section took on this backend.
#[derive(Clone, Debug, Default)]
pub struct ParallelReport {
    pub durations: Vec<Duration>,
    pub wall: Duration,
}

/// Uniform interface over the multi-threading technologies.
pub trait TaskBackend: Send {
    /// Run all tasks to completion.
    fn run_parallel(&mut self, tasks: Vec<Task>) -> ParallelReport;
}

/// Which computing-layer implementation a runtime uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutorKind {
    /// TBB-like work stealing.
    WorkStealing,
    /// GCD-like global FIFO dispatch queue.
    Fifo,
}

impl ExecutorKind {
    /// Modeled per-task dispatch overhead, used by the virtual-time mode.
    /// The FIFO queue pays a contended global-queue access per task; the
    /// work-stealing deques are mostly uncontended. The constants are
    /// calibrated to reproduce the paper's observation that the GCD
    /// implementation is "slightly slower" with similar trends.
    pub fn per_task_overhead(&self) -> Duration {
        match self {
            ExecutorKind::WorkStealing => Duration::from_nanos(200),
            ExecutorKind::Fifo => Duration::from_nanos(900),
        }
    }

    /// Virtual completion time of a task batch on `cores` cores under
    /// greedy list scheduling with this backend's per-task overhead.
    pub fn makespan(&self, durations: &[Duration], cores: usize) -> Duration {
        assert!(cores > 0);
        let ovh = self.per_task_overhead();
        let mut load = vec![Duration::ZERO; cores];
        for &d in durations {
            let idx = (0..cores)
                .min_by_key(|&i| load[i])
                .expect("scheduler has at least one core");
            load[idx] += d + ovh;
        }
        load.into_iter().max().unwrap_or(Duration::ZERO)
    }

    /// Virtual serial time (1 core) of the batch.
    pub fn serial_time(&self, durations: &[Duration]) -> Duration {
        let ovh = self.per_task_overhead();
        durations.iter().map(|&d| d + ovh).sum()
    }
}

// ----- sequential (measuring) backend -------------------------------------

/// Runs tasks serially, timing each — the measurement source for the
/// discrete-event mode's makespan model.
#[derive(Default)]
pub struct SequentialBackend;

impl TaskBackend for SequentialBackend {
    fn run_parallel(&mut self, tasks: Vec<Task>) -> ParallelReport {
        let start = Instant::now();
        let mut durations = Vec::with_capacity(tasks.len());
        for t in tasks {
            let t0 = Instant::now();
            t();
            durations.push(t0.elapsed());
        }
        ParallelReport {
            durations,
            wall: start.elapsed(),
        }
    }
}

// ----- work-stealing pool (TBB-like) -----------------------------------------

enum PoolMsg {
    Run(Task, Arc<AtomicUsize>),
    Shutdown,
}

/// TBB-like pool: a global injector feeding per-worker Chase–Lev deques;
/// idle workers steal from each other.
pub struct WorkStealingPool {
    injector: Arc<Injector<PoolMsg>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    n_workers: usize,
}

impl WorkStealingPool {
    pub fn new(n_workers: usize) -> Self {
        assert!(n_workers > 0);
        let injector: Arc<Injector<PoolMsg>> = Arc::new(Injector::new());
        let workers: Vec<Worker<PoolMsg>> = (0..n_workers).map(|_| Worker::new_lifo()).collect();
        let stealers: Arc<Vec<Stealer<PoolMsg>>> =
            Arc::new(workers.iter().map(|w| w.stealer()).collect());
        let mut handles = Vec::with_capacity(n_workers);
        for (i, local) in workers.into_iter().enumerate() {
            let injector = injector.clone();
            let stealers = stealers.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mrts-ws-{i}"))
                    .spawn(move || loop {
                        // Local work, then the injector, then steal.
                        let job = local.pop().or_else(|| {
                            std::iter::repeat_with(|| {
                                injector.steal_batch_and_pop(&local).or_else(|| {
                                    stealers
                                        .iter()
                                        .enumerate()
                                        .filter(|(j, _)| *j != i)
                                        .map(|(_, s)| s.steal())
                                        .collect()
                                })
                            })
                            .find(|s| !s.is_retry())
                            .and_then(|s| s.success())
                        });
                        match job {
                            Some(PoolMsg::Run(task, pending)) => {
                                task();
                                pending.fetch_sub(1, Ordering::AcqRel);
                            }
                            Some(PoolMsg::Shutdown) => break,
                            None => std::thread::yield_now(),
                        }
                    })
                    .expect("spawn worker"),
            );
        }
        WorkStealingPool {
            injector,
            handles,
            n_workers,
        }
    }

    pub fn workers(&self) -> usize {
        self.n_workers
    }
}

impl TaskBackend for WorkStealingPool {
    fn run_parallel(&mut self, tasks: Vec<Task>) -> ParallelReport {
        let start = Instant::now();
        let n = tasks.len();
        let pending = Arc::new(AtomicUsize::new(n));
        // Timing is collected via wrapper tasks writing into a shared slot
        // vector (each task owns its slot: no contention).
        let slots: Arc<Vec<parking_lot::Mutex<Duration>>> = Arc::new(
            (0..n)
                .map(|_| parking_lot::Mutex::new(Duration::ZERO))
                .collect(),
        );
        for (i, task) in tasks.into_iter().enumerate() {
            let slots = slots.clone();
            let wrapped: Task = Box::new(move || {
                let t0 = Instant::now();
                task();
                *slots[i].lock() = t0.elapsed();
            });
            self.injector.push(PoolMsg::Run(wrapped, pending.clone()));
        }
        while pending.load(Ordering::Acquire) > 0 {
            std::thread::yield_now();
        }
        let durations = slots.iter().map(|s| *s.lock()).collect();
        ParallelReport {
            durations,
            wall: start.elapsed(),
        }
    }
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        for _ in 0..self.handles.len() {
            self.injector.push(PoolMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

// ----- global FIFO pool (GCD-like) -----------------------------------------

/// GCD-like pool: one global FIFO channel that all workers pull from.
pub struct FifoPool {
    tx: channel::Sender<PoolMsg>,
    handles: Vec<std::thread::JoinHandle<()>>,
    n_workers: usize,
}

impl FifoPool {
    pub fn new(n_workers: usize) -> Self {
        assert!(n_workers > 0);
        let (tx, rx) = channel::unbounded::<PoolMsg>();
        let mut handles = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let rx = rx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mrts-fifo-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            match job {
                                PoolMsg::Run(task, pending) => {
                                    task();
                                    pending.fetch_sub(1, Ordering::AcqRel);
                                }
                                PoolMsg::Shutdown => break,
                            }
                        }
                    })
                    .expect("spawn worker"),
            );
        }
        FifoPool {
            tx,
            handles,
            n_workers,
        }
    }

    pub fn workers(&self) -> usize {
        self.n_workers
    }
}

impl TaskBackend for FifoPool {
    fn run_parallel(&mut self, tasks: Vec<Task>) -> ParallelReport {
        let start = Instant::now();
        let n = tasks.len();
        let pending = Arc::new(AtomicUsize::new(n));
        let slots: Arc<Vec<parking_lot::Mutex<Duration>>> = Arc::new(
            (0..n)
                .map(|_| parking_lot::Mutex::new(Duration::ZERO))
                .collect(),
        );
        for (i, task) in tasks.into_iter().enumerate() {
            let slots = slots.clone();
            let wrapped: Task = Box::new(move || {
                let t0 = Instant::now();
                task();
                *slots[i].lock() = t0.elapsed();
            });
            self.tx
                .send(PoolMsg::Run(wrapped, pending.clone()))
                .expect("pool alive");
        }
        while pending.load(Ordering::Acquire) > 0 {
            std::thread::yield_now();
        }
        let durations = slots.iter().map(|s| *s.lock()).collect();
        ParallelReport {
            durations,
            wall: start.elapsed(),
        }
    }
}

impl Drop for FifoPool {
    fn drop(&mut self) {
        for _ in 0..self.handles.len() {
            let _ = self.tx.send(PoolMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn counting_tasks(n: usize, counter: &Arc<AtomicU64>) -> Vec<Task> {
        (0..n)
            .map(|i| {
                let c = counter.clone();
                let t: Task = Box::new(move || {
                    // A little real work so durations are nonzero.
                    let mut acc = i as u64;
                    for k in 0..1000u64 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                    }
                    std::hint::black_box(acc);
                    c.fetch_add(1, Ordering::Relaxed);
                });
                t
            })
            .collect()
    }

    #[test]
    fn sequential_backend_runs_and_measures() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut b = SequentialBackend;
        let rep = b.run_parallel(counting_tasks(10, &counter));
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert_eq!(rep.durations.len(), 10);
        assert!(rep.wall >= rep.durations.iter().copied().sum::<Duration>() / 2);
    }

    #[test]
    fn work_stealing_pool_completes_all_tasks() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut pool = WorkStealingPool::new(3);
        assert_eq!(pool.workers(), 3);
        let rep = pool.run_parallel(counting_tasks(100, &counter));
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(rep.durations.len(), 100);
        // Re-use the pool.
        pool.run_parallel(counting_tasks(50, &counter));
        assert_eq!(counter.load(Ordering::SeqCst), 150);
    }

    #[test]
    fn fifo_pool_completes_all_tasks() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut pool = FifoPool::new(2);
        let rep = pool.run_parallel(counting_tasks(64, &counter));
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(rep.durations.len(), 64);
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut pool = WorkStealingPool::new(2);
        let rep = pool.run_parallel(vec![]);
        assert!(rep.durations.is_empty());
        let mut b = SequentialBackend;
        assert!(b.run_parallel(vec![]).durations.is_empty());
    }

    #[test]
    fn makespan_models_parallelism() {
        let d = vec![Duration::from_millis(10); 8];
        let ws = ExecutorKind::WorkStealing;
        let serial = ws.serial_time(&d);
        let quad = ws.makespan(&d, 4);
        assert!(
            quad < serial / 3,
            "4-core makespan {quad:?} should be ~serial/4 of {serial:?}"
        );
        // Perfect split: 8 × 10ms on 4 cores = 20ms (+ overhead).
        assert!(quad >= Duration::from_millis(20));
        assert!(quad < Duration::from_millis(21));
        // One core degenerates to serial.
        assert_eq!(ws.makespan(&d, 1), serial);
    }

    #[test]
    fn fifo_overhead_exceeds_work_stealing() {
        let d = vec![Duration::from_micros(5); 1000];
        let ws = ExecutorKind::WorkStealing.makespan(&d, 4);
        let fifo = ExecutorKind::Fifo.makespan(&d, 4);
        assert!(
            fifo > ws,
            "GCD-like dispatch must cost more: {fifo:?} vs {ws:?}"
        );
    }

    #[test]
    fn makespan_handles_uneven_tasks() {
        // One long task dominates.
        let mut d = vec![Duration::from_millis(1); 10];
        d.push(Duration::from_millis(100));
        let m = ExecutorKind::WorkStealing.makespan(&d, 4);
        assert!(m >= Duration::from_millis(100));
        assert!(m < Duration::from_millis(110));
    }
}
