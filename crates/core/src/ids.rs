//! Identifiers: object ids, mobile pointers, handler and type tags.

use std::fmt;

/// Index of a (simulated or real) node; re-exported from the fabric.
pub type NodeId = armci_sim::NodeId;

/// Globally unique mobile object identifier: the high 16 bits are the
/// *home* node (where the object was created), the low 48 bits a per-node
/// sequence number. The home node is only a naming scheme — objects are
/// location-independent and may live anywhere.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl ObjectId {
    pub fn new(home: NodeId, seq: u64) -> Self {
        debug_assert!(seq < (1 << 48));
        ObjectId(((home as u64) << 48) | seq)
    }

    /// The node that created the object.
    pub fn home(&self) -> NodeId {
        (self.0 >> 48) as NodeId
    }

    /// Per-home-node sequence number.
    pub fn seq(&self) -> u64 {
        self.0 & ((1 << 48) - 1)
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj:{}:{}", self.home(), self.seq())
    }
}

/// A location-independent reference to a mobile object.
///
/// Sending a message to a mobile pointer works no matter where the object
/// currently lives (another node, or out-of-core on disk) — the runtime
/// routes and queues as needed. The pointer itself is plain data and can be
/// stored inside other mobile objects and shipped in message payloads.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MobilePtr {
    pub id: ObjectId,
}

impl MobilePtr {
    pub fn new(id: ObjectId) -> Self {
        MobilePtr { id }
    }

    /// Serialize into 8 bytes (for embedding in payloads).
    pub fn to_bytes(&self) -> [u8; 8] {
        self.id.0.to_le_bytes()
    }

    pub fn from_bytes(b: [u8; 8]) -> Self {
        MobilePtr {
            id: ObjectId(u64::from_le_bytes(b)),
        }
    }
}

impl fmt::Debug for MobilePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "&{:?}", self.id)
    }
}

/// Application-defined message handler identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct HandlerId(pub u32);

/// Application-defined mobile object type tag, used to select the decoder
/// when an object is loaded from disk or installed after migration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TypeTag(pub u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_packing() {
        let id = ObjectId::new(513, 0x1234_5678_9abc);
        assert_eq!(id.home(), 513);
        assert_eq!(id.seq(), 0x1234_5678_9abc);
        assert_eq!(format!("{id:?}"), "obj:513:20015998343868");
    }

    #[test]
    fn mobile_ptr_roundtrip() {
        let p = MobilePtr::new(ObjectId::new(3, 42));
        let q = MobilePtr::from_bytes(p.to_bytes());
        assert_eq!(p, q);
    }

    #[test]
    fn ids_are_ordered_by_home_then_seq() {
        let a = ObjectId::new(1, 100);
        let b = ObjectId::new(2, 0);
        let c = ObjectId::new(2, 1);
        assert!(a < b && b < c);
    }
}
