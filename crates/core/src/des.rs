//! The deterministic virtual-time (discrete-event) execution engine.
//!
//! This engine *really executes* the application — handlers run, objects
//! serialize, data moves — but node-level parallelism, network transfers,
//! and disk I/O are accounted on **virtual clocks** instead of wall time:
//!
//! * every handler execution is timed with `Instant` and charged to the
//!   destination node's earliest-free virtual core (scaled by
//!   `compute_scale`); intra-handler task batches are charged their modeled
//!   parallel makespan (see [`crate::compute::ExecutorKind::makespan`]);
//! * a message from node *i* to node *j* becomes visible at
//!   `send_time + latency + bytes/bandwidth`; both nodes accrue
//!   communication busy time;
//! * unloading/loading an object occupies one of the node's `io_threads`
//!   virtual disk channels for `seek + bytes/bandwidth`; the disk runs
//!   concurrently with the cores, which is where the paper's
//!   computation/I/O *overlap* comes from. Loads are issued through the
//!   same prefetch-window pump as the threaded engine: a message for an
//!   on-disk object queues a look-ahead load, paced against the memory
//!   budget so prefetch never displaces objects with queued work.
//!
//! The result is a deterministic simulation whose reported quantities
//! (per-PE speed, overheads, comp/comm/disk shares, overlap) have the same
//! meaning as the paper's cluster measurements — the substitution required
//! because this reproduction runs on a single-core host (see DESIGN.md).

#[allow(unused_imports)]
use crate::audit::{audit_emit, RuntimeEvent};
use crate::compute::SequentialBackend;
use crate::config::MrtsConfig;
use crate::ctx::{Ctx, Effect};
use crate::directory::Directory;
use crate::fault::{is_out_of_space, FaultPlan, FaultyStore, MrtsError};
use crate::ids::{HandlerId, MobilePtr, NodeId, ObjectId};
use crate::locality::LocalityMap;
use crate::msg::{Message, MulticastInfo};
use crate::object::{MobileObject, Registry};
use crate::ooc::{EvictCandidate, OocManager};
use crate::policy::AccessMeta;
use crate::stats::{NodeStats, RunStats};
use crate::storage::{MemStore, StorageBackend};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Size in bytes charged for a directory-update service message.
const DIR_UPDATE_BYTES: usize = 32;
/// Size charged for control messages (migrate requests, multicast starts).
const CTL_BYTES: usize = 64;

enum EntryState {
    InCore(Box<dyn MobileObject>),
    OnDisk,
    Loading,
    /// Temporarily taken out for handler execution.
    Executing,
    /// Migrated away; forward messages to the node.
    Moved(NodeId),
}

struct Entry {
    state: EntryState,
    queue: VecDeque<Message>,
    meta: AccessMeta,
    priority: u8,
    locked: bool,
    footprint: usize,
    packed_len: usize,
    spill_key: Option<u64>,
    /// Virtual time at which this object's previous handler finishes.
    obj_free_at: Duration,
    /// Virtual time at which the on-disk bytes become valid.
    disk_ready_at: Duration,
    /// Set when the object must be shipped to another node once available.
    pending_migration: Option<NodeId>,
    /// The object sits in the node's `pending_loads` queue awaiting issue.
    load_queued: bool,
    /// Queued by cluster prefetch rather than by demand: keeps the entry
    /// "wanted" in `pump_loads` even though its message queue is empty.
    prefetch_hint: bool,
    /// Mutation counter: bumped after every handler run and on migration
    /// install, never on read-only loads.
    version: u64,
    /// The [`Entry::version`] the on-disk bytes correspond to, if any.
    stored_version: Option<u64>,
}

impl Entry {
    fn is_in_core(&self) -> bool {
        matches!(self.state, EntryState::InCore(_))
    }

    /// The on-disk bytes are current: a spill key exists and no handler has
    /// mutated the object since the last successful store completed.
    fn is_clean(&self) -> bool {
        self.spill_key.is_some() && self.stored_version == Some(self.version)
    }
}

struct McPending {
    info: MulticastInfo,
    handler: HandlerId,
    payload: Vec<u8>,
    waiting: Vec<ObjectId>,
}

struct NodeState {
    table: HashMap<ObjectId, Entry>,
    ooc: OocManager,
    dir: Directory,
    /// A [`MemStore`] in fault-free runs; wrapped in a
    /// [`FaultyStore`] when the config carries a fault plan.
    store: Box<dyn StorageBackend>,
    core_free: Vec<Duration>,
    /// Earliest-free time per virtual disk channel (`io_threads` of them —
    /// the modeled I/O parallelism of the storage pipeline).
    disk_free: Vec<Duration>,
    stats: NodeStats,
    next_obj_seq: u64,
    next_spill_key: u64,
    multicasts: Vec<McPending>,
    /// Queued-but-on-disk objects awaiting a load slot, in arrival order.
    pending_loads: VecDeque<ObjectId>,
    /// Loads currently occupying disk channels, for the prefetch window.
    inflight_loads: usize,
    inflight_load_bytes: usize,
    /// Reusable pack buffer for spills (the virtual-time analogue of the
    /// threaded engine's I/O-pool buffer pool).
    pack_buf: Vec<u8>,
    /// Buffer-zone adjacency learned from sends; drives cluster eviction
    /// and prefetch. Pure function of the edge set, so both engines agree.
    locality: LocalityMap,
    /// Curve key of the most recent demand anchor; successive anchors
    /// estimate which way the access front is moving along the curve, so
    /// cluster prefetch pulls mates ahead of the front, not behind it.
    last_anchor_key: u64,
}

#[derive(Debug)]
enum EvKind {
    /// Application message arriving at a node.
    Msg(Message),
    /// A disk load completed.
    Loaded(ObjectId),
    /// Lazy directory update.
    DirUpdate(ObjectId, NodeId),
    /// Request to ship an object to `dest`.
    MigrateReq(ObjectId, NodeId),
    /// A migrated object arriving (packed bytes + its message queue).
    Install {
        oid: ObjectId,
        bytes: Vec<u8>,
        priority: u8,
        locked: bool,
        /// Sender-side mutation counter; the receiver installs at
        /// `version + 1`, mirroring the audit checker's model.
        version: u64,
        queue: VecDeque<Message>,
    },
    /// Start collecting a multicast at the coordinator.
    McStart {
        info: MulticastInfo,
        handler: HandlerId,
        payload: Vec<u8>,
    },
    /// Metadata operation routed to the object's owner.
    Meta(ObjectId, MetaOp),
    /// An idle node (the payload) asking this node for one queued task.
    StealReq(NodeId),
    /// The named victim had nothing stealable. A grant has no event of
    /// its own — the stolen object arrives as a regular `Install`.
    StealDeny(NodeId),
}

#[derive(Debug, Clone, Copy)]
enum MetaOp {
    Lock,
    Unlock,
    SetPriority(u8),
}

struct Event {
    at: Duration,
    seq: u64,
    node: NodeId,
    kind: EvKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The virtual-time MRTS engine. See the module docs.
pub struct DesRuntime {
    cfg: MrtsConfig,
    registry: Registry,
    nodes: Vec<NodeState>,
    events: BinaryHeap<Reverse<Event>>,
    now: Duration,
    event_seq: u64,
    end_time: Duration,
    ran: bool,
    /// When set, same-timestamp event tie-breaks are permuted through a
    /// seeded bijection (see [`DesRuntime::set_schedule_seed`]).
    schedule_seed: Option<u64>,
    /// Set when a spilled object could not be read back: the run aborts
    /// and [`DesRuntime::try_run`] surfaces the typed error.
    fatal: Option<MrtsError>,
    /// Per-directed-edge logical message counter for the network fault
    /// model (sequence numbers the fault plan draws against).
    net_seq: HashMap<(NodeId, NodeId), u64>,
    /// Events currently scheduled per node; a node at zero has nothing
    /// coming and is the virtual-time notion of "idle" work stealing keys
    /// off (the threaded engine's empty-poll streak, collapsed).
    pending_events: Vec<usize>,
    /// A steal request has been fired on this node's behalf and its
    /// answer (an `Install` or a `StealDeny`) has not arrived yet.
    thief_waiting: Vec<bool>,
    #[cfg(any(feature = "audit", debug_assertions))]
    audit: Option<std::sync::Arc<dyn crate::audit::EventSink>>,
}

impl DesRuntime {
    pub fn new(cfg: MrtsConfig) -> Self {
        cfg.validate().expect("invalid MrtsConfig");
        let nodes = (0..cfg.nodes)
            .map(|i| NodeState {
                table: HashMap::new(),
                ooc: OocManager::new(
                    cfg.mem_budget,
                    cfg.hard_threshold_mult,
                    cfg.soft_threshold_frac,
                    cfg.policy,
                ),
                dir: Directory::new(),
                store: match cfg.fault {
                    // Per-node seed offset: each node draws its own fault
                    // schedule, like distinct physical disks failing
                    // independently.
                    Some(plan) => Box::new(FaultyStore::new(
                        Box::new(MemStore::new()),
                        FaultPlan {
                            seed: plan.seed.wrapping_add(i as u64),
                            ..plan
                        },
                    )),
                    None => Box::new(MemStore::new()) as Box<dyn StorageBackend>,
                },
                core_free: vec![Duration::ZERO; cfg.cores_per_node],
                disk_free: vec![Duration::ZERO; cfg.io_threads],
                stats: NodeStats::default(),
                next_obj_seq: 0,
                next_spill_key: 0,
                multicasts: Vec::new(),
                pending_loads: VecDeque::new(),
                inflight_loads: 0,
                inflight_load_bytes: 0,
                pack_buf: Vec::new(),
                locality: LocalityMap::new(cfg.locality_cluster_objects),
                last_anchor_key: 0,
            })
            .collect();
        let n = cfg.nodes;
        DesRuntime {
            cfg,
            registry: Registry::new(),
            nodes,
            events: BinaryHeap::new(),
            now: Duration::ZERO,
            event_seq: 0,
            end_time: Duration::ZERO,
            ran: false,
            schedule_seed: None,
            fatal: None,
            net_seq: HashMap::new(),
            pending_events: vec![0; n],
            thief_waiting: vec![false; n],
            #[cfg(any(feature = "audit", debug_assertions))]
            audit: None,
        }
    }

    /// Attach a runtime-event sink (an
    /// [`InvariantChecker`](crate::audit::InvariantChecker), an
    /// [`EventLog`](crate::audit::EventLog), …). Available in debug builds
    /// and under the `audit` feature; release builds without the feature
    /// compile the instrumentation out entirely.
    #[cfg(any(feature = "audit", debug_assertions))]
    pub fn attach_audit(&mut self, sink: std::sync::Arc<dyn crate::audit::EventSink>) {
        self.audit = Some(sink);
    }

    /// Permute same-timestamp event ordering with a deterministic seed.
    ///
    /// Events at equal virtual time are normally processed in creation
    /// (FIFO) order. With a seed, the tie-break sequence numbers are
    /// passed through a seeded bijection ([`crate::audit::mix64`]), so
    /// each seed explores a different — but reproducible — legal schedule.
    /// The runtime invariants and application results must be identical
    /// across seeds; the audit gate sweeps several. `None` restores FIFO.
    pub fn set_schedule_seed(&mut self, seed: Option<u64>) {
        self.schedule_seed = seed;
    }

    pub fn config(&self) -> &MrtsConfig {
        &self.cfg
    }

    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Register an object type decoder.
    pub fn register_type(&mut self, tag: crate::ids::TypeTag, decode: crate::object::DecodeFn) {
        self.registry.register_type(tag, decode);
    }

    /// Register a message handler.
    pub fn register_handler(
        &mut self,
        id: HandlerId,
        name: &'static str,
        f: crate::object::HandlerFn,
    ) {
        self.registry.register_handler(id, name, f);
    }

    // ----- bootstrap API ---------------------------------------------------

    /// Create a mobile object on `node` before (or between) runs.
    pub fn create_object(
        &mut self,
        node: NodeId,
        obj: Box<dyn MobileObject>,
        priority: u8,
    ) -> MobilePtr {
        let n = &mut self.nodes[node as usize];
        let id = ObjectId::new(node, n.next_obj_seq);
        n.next_obj_seq += 1;
        let footprint = obj.footprint();
        self.admit(node, footprint, Duration::ZERO);
        let n = &mut self.nodes[node as usize];
        let tick = n.ooc.tick();
        n.ooc.note_in(footprint);
        n.table.insert(
            id,
            Entry {
                state: EntryState::InCore(obj),
                queue: VecDeque::new(),
                meta: AccessMeta::new(tick),
                priority,
                locked: false,
                footprint,
                packed_len: 0,
                spill_key: None,
                obj_free_at: Duration::ZERO,
                disk_ready_at: Duration::ZERO,
                pending_migration: None,
                load_queued: false,
                prefetch_hint: false,
                version: 0,
                stored_version: None,
            },
        );
        audit_emit!(
            self.audit,
            RuntimeEvent::Create {
                node,
                oid: id,
                footprint
            }
        );
        self.audit_budget(node, true);
        MobilePtr::new(id)
    }

    /// Pin an object before the run.
    pub fn lock_object(&mut self, ptr: MobilePtr) {
        let node = self.owner_of(ptr.id);
        let e = self.nodes[node as usize]
            .table
            .get_mut(&ptr.id)
            .expect("tracked object has a table entry");
        e.locked = true;
        audit_emit!(self.audit, RuntimeEvent::Pin { node, oid: ptr.id });
    }

    /// Post an initial message (delivered at virtual time zero).
    pub fn post(&mut self, to: MobilePtr, handler: HandlerId, payload: Vec<u8>) {
        let node = self.owner_of(to.id);
        audit_emit!(self.audit, RuntimeEvent::Post { node, oid: to.id });
        self.push_event(
            Duration::ZERO,
            node,
            EvKind::Msg(Message::new(to, handler, payload)),
        );
    }

    /// The routing fallback for an object with no directory hint: its home
    /// node, wrapped into the current cluster size (checkpoints may be
    /// restored onto fewer nodes than the ids were minted on).
    fn home_of(&self, oid: ObjectId) -> NodeId {
        (oid.home() as usize % self.nodes.len()) as NodeId
    }

    fn owner_of(&self, oid: ObjectId) -> NodeId {
        // Follow Moved tombstones from the home node.
        let mut n = self.home_of(oid);
        for _ in 0..self.cfg.nodes + 1 {
            match self.nodes[n as usize].table.get(&oid) {
                Some(Entry {
                    state: EntryState::Moved(f),
                    ..
                }) => n = *f,
                Some(_) => return n,
                None => return n,
            }
        }
        n
    }

    /// Compute charge for a measured `wall` interval that processed
    /// `bytes` bytes of work product: measured (scaled) wall time
    /// normally, a synthetic size-proportional cost under
    /// [`MrtsConfig::deterministic_compute`] — the synthetic cost keeps
    /// the virtual schedule a pure function of the inputs.
    fn compute_charge(&self, wall: Duration, bytes: usize) -> Duration {
        if self.cfg.deterministic_compute {
            Duration::from_nanos(1_000 + bytes as u64)
        } else {
            wall.mul_f64(self.cfg.compute_scale)
        }
    }

    /// Virtual-time cost of recovering from an injected fault (storage
    /// retry backoff, injected latency, retransmit backoff, fabric
    /// delay). Charged normally; zero under
    /// [`MrtsConfig::deterministic_compute`], which makes transient-fault
    /// recovery *schedule-transparent*: a chaos run executes the exact
    /// event order of its fault-free twin (faults still count in the
    /// stats and audit stream), so byte-identity of the results is a
    /// provable property rather than a lucky seed. Degraded-mode entry
    /// (ENOSPC) is exempt — suspending eviction is a semantic change,
    /// not a timing charge.
    fn fault_penalty(&self, d: Duration) -> Duration {
        if self.cfg.deterministic_compute {
            Duration::ZERO
        } else {
            d
        }
    }

    // ----- event plumbing ----------------------------------------------------

    fn push_event(&mut self, at: Duration, node: NodeId, kind: EvKind) {
        // Posts issued between runs arrive "now", not at virtual time
        // zero — this keeps multi-phase drivers (post, run, post, run)
        // from scheduling into the past.
        let at = at.max(self.now);
        let raw = self.event_seq;
        self.event_seq += 1;
        // The bijection keeps sequence numbers unique, so permuting them
        // only reshuffles same-timestamp ties, never drops an event.
        let seq = match self.schedule_seed {
            Some(s) => crate::audit::mix64(s ^ raw),
            None => raw,
        };
        self.end_time = self.end_time.max(at);
        self.pending_events[node as usize] += 1;
        self.events.push(Reverse(Event {
            at,
            seq,
            node,
            kind,
        }));
    }

    /// Emit a memory-accounting snapshot for the invariant checker.
    /// `enforced` marks snapshots taken right after an admission decision
    /// (held to the budget invariant); reload completions are
    /// accounting-only (the engine deliberately overshoots there, see
    /// [`DesRuntime::admit_for_load`]).
    #[allow(unused_variables)]
    fn audit_budget(&self, node: NodeId, enforced: bool) {
        #[cfg(any(feature = "audit", debug_assertions))]
        if let Some(sink) = self.audit.as_ref() {
            let ooc = &self.nodes[node as usize].ooc;
            sink.record(&RuntimeEvent::Budget {
                node,
                used: ooc.used(),
                budget: ooc.budget(),
                hard_reserve: ooc.hard_reserve(),
                // Degraded mode deliberately overshoots the budget.
                enforced: enforced && !ooc.is_degraded(),
            });
        }
    }

    /// Send a message (or control traffic) from `from` to `to_node`,
    /// charging both sides. Local sends are free.
    ///
    /// When a network fault plan is configured, the fate of the shipment
    /// is modeled on the virtual channel: dropped transmissions are
    /// recovered by charged retransmissions after the retry policy's
    /// backoff (the bounded-drop guarantee of
    /// [`crate::netfault::NetFaultPlan`] means delivery always succeeds
    /// eventually — the DES has no dead nodes), duplicates are suppressed
    /// by the modeled receiver dedup without re-running the handler, and
    /// delay/reorder faults skew the arrival time, which reorders the
    /// event heap exactly as a reordering fabric would. The final
    /// delivery is positively acknowledged (counted, not charged).
    fn ship(
        &mut self,
        at: Duration,
        from: NodeId,
        to_node: NodeId,
        bytes: usize,
        node_kind: EvKind,
    ) {
        if from == to_node {
            self.push_event(at, to_node, node_kind);
            return;
        }
        let transfer = self.cfg.net.transfer_time(bytes);
        self.nodes[from as usize].stats.comm += transfer;
        self.nodes[to_node as usize].stats.comm += transfer;
        self.nodes[from as usize].stats.bytes_sent += bytes as u64;
        let mut arrive = at + transfer;
        if let Some(plan) = self.cfg.net_fault {
            let seq_slot = self.net_seq.entry((from, to_node)).or_insert(0);
            let seq = *seq_slot;
            *seq_slot += 1;
            let mut attempt = 0u32;
            loop {
                let d = plan.decide(from, to_node, seq, attempt);
                if d.drop {
                    // The sender's ack timeout recovers the loss: charge
                    // the backoff plus a fresh transfer for the
                    // retransmission.
                    self.nodes[from as usize].stats.messages_dropped += 1;
                    self.nodes[from as usize].stats.retransmits += 1;
                    self.nodes[from as usize].stats.comm += transfer;
                    self.nodes[to_node as usize].stats.comm += transfer;
                    self.nodes[from as usize].stats.bytes_sent += bytes as u64;
                    audit_emit!(
                        self.audit,
                        RuntimeEvent::NetFault {
                            node: from,
                            dest: to_node,
                            kind: crate::netfault::NetFaultKind::Drop,
                        }
                    );
                    attempt += 1;
                    audit_emit!(
                        self.audit,
                        RuntimeEvent::Retransmit {
                            node: from,
                            dest: to_node,
                            seq,
                            attempt,
                        }
                    );
                    arrive += self.fault_penalty(self.cfg.retry.delay(attempt, seq) + transfer);
                    continue;
                }
                if d.duplicate {
                    // The duplicate copy reaches the receiver, whose
                    // sequence-number dedup suppresses it: the handler
                    // will run exactly once.
                    self.nodes[to_node as usize].stats.dup_suppressed += 1;
                    audit_emit!(
                        self.audit,
                        RuntimeEvent::NetFault {
                            node: from,
                            dest: to_node,
                            kind: crate::netfault::NetFaultKind::Duplicate,
                        }
                    );
                    audit_emit!(
                        self.audit,
                        RuntimeEvent::DupSuppressed {
                            node: to_node,
                            src: from,
                            seq,
                        }
                    );
                }
                if !d.delay.is_zero() {
                    audit_emit!(
                        self.audit,
                        RuntimeEvent::NetFault {
                            node: from,
                            dest: to_node,
                            kind: if d.delay > plan.delay {
                                crate::netfault::NetFaultKind::Reorder
                            } else {
                                crate::netfault::NetFaultKind::Delay
                            },
                        }
                    );
                    arrive += self.fault_penalty(d.delay);
                }
                break;
            }
            // Every delivered data message is positively acknowledged.
            self.nodes[to_node as usize].stats.acks_sent += 1;
        }
        self.push_event(arrive, to_node, node_kind);
    }

    // ----- main loop -----------------------------------------------------------

    /// Run to quiescence; returns the run's statistics. The runtime can be
    /// inspected afterwards ([`DesRuntime::with_object`]) and re-posted to
    /// for a second phase. Panics if a spilled object became unreadable —
    /// use [`DesRuntime::try_run`] to handle that as a typed error.
    pub fn run(&mut self) -> RunStats {
        self.try_run()
            .unwrap_or_else(|e| panic!("MRTS run failed: {e}"))
    }

    /// Like [`DesRuntime::run`], but surfaces unrecoverable storage
    /// failures (a spilled object unreadable after exhausting the retry
    /// policy) as [`MrtsError`] instead of panicking. The run stops at the
    /// failing event; the heap retains the unprocessed remainder.
    pub fn try_run(&mut self) -> Result<RunStats, MrtsError> {
        self.ran = true;
        while let Some(Reverse(ev)) = self.events.pop() {
            debug_assert!(ev.at >= self.now, "time went backwards");
            self.now = ev.at;
            self.pending_events[ev.node as usize] =
                self.pending_events[ev.node as usize].saturating_sub(1);
            self.handle(ev);
            if let Some(err) = self.fatal.take() {
                return Err(err);
            }
        }
        // Quiescence: the event heap drained, so the computation
        // terminated — every node observes it.
        #[cfg(any(feature = "audit", debug_assertions))]
        for node in 0..self.nodes.len() as NodeId {
            audit_emit!(self.audit, RuntimeEvent::Terminate { node });
            audit_emit!(
                self.audit,
                RuntimeEvent::Shutdown {
                    node,
                    used: self.nodes[node as usize].ooc.used()
                }
            );
        }
        // The curve digest is a pure function of the learned edge set:
        // both engines must agree on it for the same application.
        if self.cfg.locality {
            for n in &mut self.nodes {
                n.stats.locality_digest = n.locality.digest();
            }
        }
        Ok(self.collect_stats())
    }

    fn collect_stats(&self) -> RunStats {
        let mut total = self.end_time;
        for n in &self.nodes {
            for &c in &n.core_free {
                total = total.max(c);
            }
            for &d in &n.disk_free {
                total = total.max(d);
            }
        }
        RunStats {
            total,
            // Virtual time has no wall-clock overlap measurement; the
            // busy-excess estimate in `overlap_pct` applies instead.
            measured_overlap: false,
            nodes: self
                .nodes
                .iter()
                .map(|n| {
                    let mut s = n.stats.clone();
                    // Peak footprint comes from the budget manager's own
                    // high-water mark — the single source of truth.
                    s.peak_mem = n.ooc.peak_used;
                    // Virtual-time idleness: the makespan minus this
                    // node's compute time — the span it spent waiting on
                    // the disk, the network, or a phase's stragglers.
                    s.idle = total.saturating_sub(s.comp);
                    s
                })
                .collect(),
        }
    }

    fn handle(&mut self, ev: Event) {
        let node = ev.node;
        match ev.kind {
            EvKind::Msg(msg) => self.on_msg(node, msg),
            EvKind::Loaded(oid) => self.on_loaded(node, oid),
            EvKind::DirUpdate(oid, loc) => {
                self.nodes[node as usize].dir.update(oid, loc);
                audit_emit!(self.audit, RuntimeEvent::DirUpdate { node, oid, loc });
            }
            EvKind::MigrateReq(oid, dest) => self.on_migrate_req(node, oid, dest),
            EvKind::Install {
                oid,
                bytes,
                priority,
                locked,
                version,
                queue,
            } => self.on_install(node, oid, bytes, priority, locked, version, queue),
            EvKind::McStart {
                info,
                handler,
                payload,
            } => self.on_mc_start(node, info, handler, payload),
            EvKind::Meta(oid, op) => self.on_meta(node, oid, op),
            EvKind::StealReq(thief) => self.on_steal_req(node, thief),
            #[allow(unused_variables)] // `victim` feeds the audit emission
            EvKind::StealDeny(victim) => {
                self.thief_waiting[node as usize] = false;
                audit_emit!(
                    self.audit,
                    RuntimeEvent::StealDeny {
                        node: victim,
                        to: node
                    }
                );
            }
        }
        // A node that still has queued work after this event may feed an
        // idle peer.
        self.maybe_steal(node);
        // Every event may queue or unblock loads (messages arriving for
        // on-disk objects, evictions of queued objects, completed loads
        // freeing window slots); issue what the window allows.
        let now = self.now;
        self.pump_loads(node, now);
        // A degraded node re-probes its backend on every event it handles;
        // the first healthy probe restores normal eviction.
        if self.nodes[node as usize].ooc.is_degraded() {
            self.probe_degraded(node, now);
        }
    }

    /// Re-probe a degraded node's spill store; on success exit degraded
    /// mode and immediately shed the footprint overshoot accumulated while
    /// evictions were suspended.
    fn probe_degraded(&mut self, node: NodeId, at: Duration) {
        let ok = self.nodes[node as usize].store.probe().is_ok();
        self.drain_store_faults(node);
        if ok && self.nodes[node as usize].ooc.exit_degraded() {
            self.nodes[node as usize].stats.degraded_mode_transitions += 1;
            audit_emit!(self.audit, RuntimeEvent::Degraded { node, on: false });
            self.enforce_budget(node, at, None);
            self.soft_swap(node, at);
        }
    }

    /// Drain fault reports from a node's store: count them, emit audit
    /// events, and return the total injected latency (charged to the
    /// virtual disk channel by the caller).
    fn drain_store_faults(&mut self, node: NodeId) -> Duration {
        let reports = self.nodes[node as usize].store.take_fault_reports();
        let mut latency = Duration::ZERO;
        for r in &reports {
            latency += r.delay;
            self.nodes[node as usize].stats.faults_injected += 1;
            audit_emit!(
                self.audit,
                RuntimeEvent::Fault {
                    node,
                    kind: r.kind,
                    key: r.key
                }
            );
        }
        latency
    }

    fn forward(
        &mut self,
        at: Duration,
        node: NodeId,
        mut msg: Message,
        kind_builder: fn(Message) -> EvKind,
    ) {
        let oid = msg.to.id;
        let hint = match self.nodes[node as usize].table.get(&oid) {
            Some(Entry {
                state: EntryState::Moved(f),
                ..
            }) => *f,
            _ => self.nodes[node as usize].dir.lookup(oid),
        };
        let next = if hint == node {
            self.home_of(oid)
        } else {
            hint
        };
        if next == node {
            panic!("message for unknown object {oid:?} stuck at node {node}");
        }
        msg.route.push(node);
        self.nodes[node as usize].stats.msgs_forwarded += 1;
        audit_emit!(
            self.audit,
            RuntimeEvent::Forward {
                node,
                oid,
                to: next
            }
        );
        let bytes = msg.wire_size();
        self.ship(at, node, next, bytes, kind_builder(msg));
    }

    fn on_msg(&mut self, node: NodeId, msg: Message) {
        let oid = msg.to.id;
        let present = matches!(
            self.nodes[node as usize].table.get(&oid),
            Some(e) if !matches!(e.state, EntryState::Moved(_))
        );
        if !present {
            let now = self.now;
            self.forward(now, node, msg, EvKind::Msg);
            return;
        }
        // Lazy directory updates along the route.
        if !msg.route.is_empty() {
            let route = msg.route.clone();
            for hop in route {
                if hop != node {
                    self.ship(
                        self.now,
                        node,
                        hop,
                        DIR_UPDATE_BYTES,
                        EvKind::DirUpdate(oid, node),
                    );
                }
            }
        }
        let entry = self.nodes[node as usize]
            .table
            .get_mut(&oid)
            .expect("tracked object has a table entry");
        match entry.state {
            EntryState::InCore(_) | EntryState::Executing => {
                self.execute(node, oid, msg);
            }
            EntryState::Loading => {
                entry.queue.push_back(msg);
            }
            EntryState::OnDisk => {
                entry.queue.push_back(msg);
                self.queue_load(node, oid);
            }
            EntryState::Moved(_) => unreachable!(),
        }
    }

    /// Note that `oid` (on disk) has pending work; the load is issued by
    /// [`DesRuntime::pump_loads`] under the prefetch window.
    fn queue_load(&mut self, node: NodeId, oid: ObjectId) {
        let e = self.nodes[node as usize]
            .table
            .get_mut(&oid)
            .expect("tracked object has a table entry");
        if e.load_queued || !matches!(e.state, EntryState::OnDisk) {
            return;
        }
        e.load_queued = true;
        self.nodes[node as usize].pending_loads.push_back(oid);
    }

    /// A demanded load of `anchor` completed as a miss (no virtual core
    /// was busy — the node stalled): queue the anchor's nearest on-disk
    /// cluster mates behind it, only on the side of the curve the demand
    /// front is moving toward (mates behind the front were just used and
    /// would be evicted before their next use). Triggering on demand
    /// misses rather than on every load keeps the speculation bounded:
    /// queue-visible work is already covered by the look-ahead window,
    /// and a miss is precisely the signal that the front moved somewhere
    /// the window could not see. Mates enter `pending_loads` with a
    /// prefetch hint, so the pump treats them as wanted look-ahead work —
    /// still bounded by the prefetch window and pacing, and shed first
    /// under disk pressure. Disabled when locality is off and under the
    /// legacy (unpaced or zero-width) window shapes, which predate
    /// prefetch pacing entirely.
    fn cluster_prefetch(&mut self, node: NodeId, anchor: ObjectId) {
        if !self.cfg.locality
            || self.cfg.locality_prefetch_mates == 0
            || self.cfg.prefetch_window_objects == 0
            || self.cfg.prefetch_window_objects == usize::MAX
        {
            return;
        }
        self.nodes[node as usize].locality.maybe_rebuild();
        let Some(key) = self.nodes[node as usize].locality.key_of(anchor) else {
            return;
        };
        let forward = key >= self.nodes[node as usize].last_anchor_key;
        self.nodes[node as usize].last_anchor_key = key;
        let companions = self.nodes[node as usize].locality.companions_toward(
            anchor,
            self.cfg.locality_prefetch_mates,
            forward,
        );
        for mate in companions {
            let n = &mut self.nodes[node as usize];
            let Some(e) = n.table.get_mut(&mate) else {
                continue;
            };
            if e.load_queued || !matches!(e.state, EntryState::OnDisk) {
                continue;
            }
            e.load_queued = true;
            e.prefetch_hint = true;
            n.pending_loads.push_back(mate);
        }
    }

    /// Bytes reclaimable by evicting only objects with no pending work —
    /// the only victims a look-ahead load is allowed to displace.
    fn idle_evictable_bytes(&self, node: NodeId, at: Duration) -> usize {
        self.nodes[node as usize]
            .table
            .values()
            .filter(|e| {
                e.is_in_core()
                    && !e.locked
                    && e.obj_free_at <= at
                    && e.pending_migration.is_none()
                    && e.queue.is_empty()
            })
            .map(|e| e.footprint)
            .sum()
    }

    /// Issue queued loads under the prefetch window; mirrors the threaded
    /// engine's pump (see [`crate::threaded`]). A look-ahead load (virtual
    /// cores busy beyond `at`) stays inside the window and is paced so it
    /// never displaces an object with queued messages; urgent loads
    /// (migration or multicast waiting) bypass the window. Because the DES
    /// has no idle polling loop, the pump guarantees that a non-empty
    /// queue always has at least one load in flight — a fully deferred
    /// queue with nothing in flight would silently drop work.
    fn pump_loads(&mut self, node: NodeId, at: Duration) {
        if self.nodes[node as usize].pending_loads.is_empty() {
            return;
        }
        let window_objs = self.cfg.prefetch_window_objects;
        let window_bytes = self.cfg.prefetch_window_bytes;
        // `usize::MAX` objects = the pre-overlap shape: issue immediately,
        // never pace against the budget.
        let unpaced = window_objs == usize::MAX;
        let mut idle_evictable: Option<usize> = None;
        let mut i = 0;
        while i < self.nodes[node as usize].pending_loads.len() {
            let oid = self.nodes[node as usize].pending_loads[i];
            let (wants, urgent, hinted, footprint, packed_len) = {
                let e = self.nodes[node as usize]
                    .table
                    .get(&oid)
                    .expect("tracked object has a table entry");
                let urgent = e.pending_migration.is_some() || e.locked;
                let wants = matches!(e.state, EntryState::OnDisk)
                    && (urgent || !e.queue.is_empty() || e.prefetch_hint);
                (wants, urgent, e.prefetch_hint, e.footprint, e.packed_len)
            };
            if !wants {
                self.nodes[node as usize].pending_loads.remove(i);
                let n = &mut self.nodes[node as usize];
                let e = n
                    .table
                    .get_mut(&oid)
                    .expect("tracked object has a table entry");
                e.load_queued = false;
                e.prefetch_hint = false;
                n.stats.prefetch_cancels += 1;
                continue;
            }
            let n = &self.nodes[node as usize];
            // A cluster-prefetch hint is look-ahead by definition: nothing
            // demands the object yet, so it must obey window and pacing.
            let look_ahead = n.core_free.iter().any(|&c| c > at) || hinted;
            if look_ahead && !urgent {
                if n.ooc.is_degraded() {
                    // Disk pressure: shed prefetch entirely; only demand
                    // and urgent loads keep flowing.
                    i += 1;
                    continue;
                }
                if n.inflight_loads >= window_objs {
                    break;
                }
                if n.inflight_loads > 0
                    && n.inflight_load_bytes.saturating_add(packed_len) > window_bytes
                {
                    break;
                }
                if !unpaced {
                    let need = n.ooc.needed_for_admission(footprint);
                    if need > 0 {
                        let avail = *idle_evictable
                            .get_or_insert_with(|| self.idle_evictable_bytes(node, at));
                        if need > avail {
                            // Paced: admission would thrash queued objects.
                            i += 1;
                            continue;
                        }
                    }
                }
            } else if n.inflight_loads > 0 && n.inflight_loads >= window_objs {
                // Demand loads keep the pipe bounded too, but at least one
                // is always in flight so the node cannot stall.
                break;
            }
            self.nodes[node as usize].pending_loads.remove(i);
            self.nodes[node as usize]
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry")
                .load_queued = false;
            self.issue_load(node, oid, at, look_ahead && !urgent);
            // Issuing may have evicted; recompute pacing headroom lazily.
            idle_evictable = None;
        }
        // Progress guarantee: force the front entry through if everything
        // was deferred and nothing is in flight (no future Loaded event
        // would ever pump again).
        if self.nodes[node as usize].inflight_loads == 0 {
            if let Some(oid) = self.nodes[node as usize].pending_loads.pop_front() {
                self.nodes[node as usize]
                    .table
                    .get_mut(&oid)
                    .expect("tracked object has a table entry")
                    .load_queued = false;
                self.issue_load(node, oid, at, false);
            }
        }
    }

    /// Begin loading an on-disk object on the earliest-free virtual disk
    /// channel.
    fn issue_load(&mut self, node: NodeId, oid: ObjectId, at: Duration, look_ahead: bool) {
        let (packed_len, footprint, hinted) = {
            let e = self.nodes[node as usize]
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry");
            debug_assert!(matches!(e.state, EntryState::OnDisk));
            e.state = EntryState::Loading;
            let hinted = std::mem::replace(&mut e.prefetch_hint, false);
            (e.packed_len, e.footprint, hinted)
        };
        {
            let n = &mut self.nodes[node as usize];
            n.inflight_loads += 1;
            n.inflight_load_bytes += packed_len;
            if look_ahead {
                n.stats.prefetch_issued += 1;
            }
            if hinted {
                n.stats.cluster_prefetches += 1;
            }
        }
        if hinted {
            #[cfg(any(feature = "audit", debug_assertions))]
            {
                let cluster = self.nodes[node as usize]
                    .locality
                    .cluster_of(oid)
                    .unwrap_or(0);
                audit_emit!(
                    self.audit,
                    RuntimeEvent::ClusterPrefetch { node, oid, cluster }
                );
            }
        }
        if look_ahead {
            #[cfg(any(feature = "audit", debug_assertions))]
            {
                let n = &self.nodes[node as usize];
                audit_emit!(
                    self.audit,
                    RuntimeEvent::Prefetch {
                        node,
                        oid,
                        inflight_objects: n.inflight_loads,
                        window_objects: self.cfg.prefetch_window_objects,
                        inflight_bytes: n.inflight_load_bytes,
                        window_bytes: self.cfg.prefetch_window_bytes,
                    }
                );
            }
        }
        // Admit the (approximate) footprint before the load begins.
        self.admit_for_load(node, footprint, at);
        let n = &mut self.nodes[node as usize];
        let dur = self.cfg.disk.op_time(packed_len);
        let ch = (0..n.disk_free.len())
            .min_by_key(|&i| n.disk_free[i])
            .expect("node has at least one disk channel");
        let e = n
            .table
            .get_mut(&oid)
            .expect("tracked object has a table entry");
        let start = at.max(n.disk_free[ch]).max(e.disk_ready_at);
        let end = start + dur;
        n.disk_free[ch] = end;
        n.stats.disk += dur;
        n.stats.loads += 1;
        n.stats.bytes_from_disk += packed_len as u64;
        self.end_time = self.end_time.max(end);
        self.push_event(end, node, EvKind::Loaded(oid));
    }

    fn on_loaded(&mut self, node: NodeId, oid: ObjectId) {
        let (key, packed_len) = {
            let e = self.nodes[node as usize]
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry");
            debug_assert!(matches!(e.state, EntryState::Loading));
            (
                e.spill_key.expect("loading object has a spill key"),
                e.packed_len,
            )
        };
        let mut cluster_prefetch_after = false;
        {
            let now = self.now;
            let n = &mut self.nodes[node as usize];
            n.inflight_loads -= 1;
            n.inflight_load_bytes = n.inflight_load_bytes.saturating_sub(packed_len);
            // Overlap classification: a load completing while a virtual
            // core is still busy was masked by computation.
            let hit = n.core_free.iter().any(|&c| c > now);
            if hit {
                n.stats.prefetch_hits += 1;
            } else {
                n.stats.prefetch_misses += 1;
            }
            // Demand accounting for read amplification: bytes were wanted
            // if anything is actually waiting on this object. A cluster
            // prefetch that nothing touched stays out of the numerator.
            let e = n.table.get(&oid).expect("tracked object has a table entry");
            let demanded = !e.queue.is_empty() || e.pending_migration.is_some() || e.locked;
            if demanded {
                n.stats.bytes_demanded += packed_len as u64;
            }
            // A demanded load that stalled the node is the access front
            // arriving somewhere look-ahead did not predict — pull the
            // anchor's cluster mates behind it before the front stalls
            // on them too.
            if !hit && demanded {
                cluster_prefetch_after = true;
            }
        }
        // Read the spilled bytes back, retrying transient faults with
        // bounded backoff charged to the virtual disk channel. Exhaustion
        // is unrecoverable (the object exists nowhere else): abort the run
        // with a typed error.
        let retry = self.cfg.retry;
        let mut attempt = 0u32;
        let mut penalty = Duration::ZERO;
        let bytes = loop {
            attempt += 1;
            match self.nodes[node as usize].store.load(key) {
                Ok(b) => break b,
                Err(source) => {
                    let injected = self.drain_store_faults(node);
                    penalty += self.fault_penalty(injected);
                    if attempt >= retry.max_attempts {
                        let n = &mut self.nodes[node as usize];
                        n.stats.io_gave_up += 1;
                        n.stats.disk += penalty;
                        self.fatal = Some(MrtsError::LoadFailed {
                            node,
                            oid,
                            attempts: attempt,
                            source,
                        });
                        return;
                    }
                    penalty += self.fault_penalty(
                        self.cfg.disk.op_time(packed_len) + retry.delay(attempt, key),
                    );
                    self.nodes[node as usize].stats.io_retries += 1;
                    audit_emit!(self.audit, RuntimeEvent::Retry { node, oid, attempt });
                }
            }
        };
        let injected = self.drain_store_faults(node);
        penalty += self.fault_penalty(injected);
        if !penalty.is_zero() {
            let now = self.now;
            let n = &mut self.nodes[node as usize];
            let ch = (0..n.disk_free.len())
                .min_by_key(|&i| n.disk_free[i])
                .expect("node has at least one disk channel");
            let end = now.max(n.disk_free[ch]) + penalty;
            n.disk_free[ch] = end;
            n.stats.disk += penalty;
            self.end_time = self.end_time.max(end);
        }
        debug_assert_eq!(bytes.len(), packed_len);
        // Real unpack, charged as compute.
        let t0 = Instant::now();
        let obj = self
            .registry
            .unpack(&bytes)
            .expect("spill bytes were packed by this runtime from a registered type");
        let unpack = self.compute_charge(t0.elapsed(), bytes.len());
        let footprint = obj.footprint();
        {
            let n = &mut self.nodes[node as usize];
            n.stats.comp += unpack;
            let tick = n.ooc.tick();
            let e = n
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry");
            e.meta.touch(tick);
            // `admit` charged the stale footprint estimate; fix up.
            let old_fp = e.footprint;
            e.footprint = footprint;
            e.state = EntryState::InCore(obj);
            n.ooc.note_in(footprint);
            let _ = old_fp;
        }
        audit_emit!(
            self.audit,
            RuntimeEvent::Load {
                node,
                oid,
                footprint
            }
        );
        self.audit_budget(node, false);
        if cluster_prefetch_after {
            self.cluster_prefetch(node, oid);
        }
        // A pending migration takes precedence over queued work.
        let pending_mig = self.nodes[node as usize].table[&oid].pending_migration;
        if let Some(dest) = pending_mig {
            self.do_migrate(node, oid, dest);
            return;
        }
        // Drain queued messages in arrival order.
        loop {
            let next = {
                let e = self.nodes[node as usize]
                    .table
                    .get_mut(&oid)
                    .expect("tracked object has a table entry");
                e.queue.pop_front()
            };
            match next {
                Some(msg) => self.execute(node, oid, msg),
                None => break,
            }
        }
        self.mc_note_available(node, oid);
    }

    // ----- handler execution --------------------------------------------------

    fn execute(&mut self, node: NodeId, oid: ObjectId, msg: Message) {
        let handler = self.registry.handler(msg.handler);
        // Take the object out for the duration of the call.
        let (mut obj, old_footprint, arrival_floor) = {
            let e = self.nodes[node as usize]
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry");
            let state = std::mem::replace(&mut e.state, EntryState::Executing);
            let obj = match state {
                EntryState::InCore(o) => o,
                other => {
                    e.state = other;
                    // Object got evicted/migrated between queueing and now;
                    // requeue through the normal path.
                    self.on_msg(node, msg);
                    return;
                }
            };
            (obj, e.footprint, e.obj_free_at)
        };
        audit_emit!(self.audit, RuntimeEvent::Deliver { node, oid });

        let mut next_seq = self.nodes[node as usize].next_obj_seq;
        let mut backend = SequentialBackend;
        let src_node = *msg.route.first().unwrap_or(&node);
        let mut ctx = Ctx::new(node, msg.to, src_node, &mut next_seq, &mut backend);
        let t0 = Instant::now();
        handler(obj.as_mut(), &mut ctx, &msg.payload);
        let wall = t0.elapsed();

        // Virtual duration: measured serial time outside parallel sections,
        // plus each section's modeled makespan on this node's cores.
        let reports = std::mem::take(&mut ctx.parallel_reports);
        let effects = std::mem::take(&mut ctx.effects);
        drop(ctx);
        self.nodes[node as usize].next_obj_seq = next_seq;
        let tasks_wall: Duration = reports.iter().map(|r| r.wall).sum();
        let tasks_virtual: Duration = reports
            .iter()
            .map(|r| {
                self.cfg
                    .executor
                    .makespan(&r.durations, self.cfg.cores_per_node)
            })
            .sum();
        let vdur = if self.cfg.deterministic_compute {
            self.compute_charge(Duration::ZERO, msg.payload.len())
        } else {
            (wall.saturating_sub(tasks_wall) + tasks_virtual).mul_f64(self.cfg.compute_scale)
        };

        // Schedule on the earliest-free virtual core.
        let end = {
            let n = &mut self.nodes[node as usize];
            let core = (0..n.core_free.len())
                .min_by_key(|&i| n.core_free[i])
                .expect("node has at least one core");
            let start = self.now.max(arrival_floor).max(n.core_free[core]);
            let end = start + vdur;
            n.core_free[core] = end;
            n.stats.comp += vdur;
            n.stats.handlers_run += 1;
            n.stats.msgs_local += usize::from(msg.route.is_empty());
            n.stats.msgs_remote += usize::from(!msg.route.is_empty());
            end
        };
        self.end_time = self.end_time.max(end);

        // Put the object back; update accounting for growth/shrink.
        let new_footprint = obj.footprint();
        {
            let n = &mut self.nodes[node as usize];
            let tick = n.ooc.tick();
            let e = n
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry");
            e.state = EntryState::InCore(obj);
            e.obj_free_at = end;
            e.meta.touch(tick);
            e.footprint = new_footprint;
            // The handler may have mutated the object: any on-disk copy is
            // now stale, which the version counter records.
            e.version += 1;
            n.ooc.note_resize(old_footprint, new_footprint);
        }
        if old_footprint != new_footprint {
            audit_emit!(
                self.audit,
                RuntimeEvent::Resize {
                    node,
                    oid,
                    old: old_footprint,
                    new: new_footprint
                }
            );
        }

        // Sends between mobile objects trace the buffer-zone adjacency the
        // locality curve is built from; learn them before they dispatch.
        if self.cfg.locality {
            for eff in &effects {
                if let Effect::Send { to, .. } = eff {
                    self.nodes[node as usize].locality.note_edge(oid, to.id);
                }
            }
        }
        self.apply_effects(node, end, effects);

        // Hard budget enforcement (handlers grow objects in place), then
        // advisory soft-threshold swapping.
        self.enforce_budget(node, end, Some(oid));
        self.soft_swap(node, end);
    }

    fn apply_effects(&mut self, node: NodeId, at: Duration, effects: Vec<Effect>) {
        for eff in effects {
            match eff {
                Effect::Send {
                    to,
                    handler,
                    payload,
                    immediate: _,
                } => {
                    audit_emit!(self.audit, RuntimeEvent::Post { node, oid: to.id });
                    let msg = Message::new(to, handler, payload);
                    let local = matches!(
                        self.nodes[node as usize].table.get(&to.id),
                        Some(e) if !matches!(e.state, EntryState::Moved(_))
                    );
                    if local {
                        self.push_event(at, node, EvKind::Msg(msg));
                    } else {
                        // Route like any misdirected message: the sender
                        // joins the route, so the delivery-time lazy
                        // update teaches it the object's location (and
                        // `route.first()` stays the true source node),
                        // matching the threaded engine.
                        self.forward(at, node, msg, EvKind::Msg);
                    }
                }
                Effect::Multicast {
                    info,
                    handler,
                    payload,
                } => {
                    // Coordinate at the (believed) location of the first
                    // target.
                    let coord = {
                        let first = info.targets[0].id;
                        let local = self.nodes[node as usize].table.contains_key(&first);
                        if local {
                            self.owner_of(first)
                        } else {
                            let d = self.nodes[node as usize].dir.lookup(first);
                            if d == node {
                                self.home_of(first)
                            } else {
                                d
                            }
                        }
                    };
                    self.ship(
                        at,
                        node,
                        coord,
                        CTL_BYTES + 8 * info.targets.len(),
                        EvKind::McStart {
                            info,
                            handler,
                            payload,
                        },
                    );
                }
                Effect::Create { id, obj, priority } => {
                    let footprint = obj.footprint();
                    self.admit(node, footprint, at);
                    let n = &mut self.nodes[node as usize];
                    let tick = n.ooc.tick();
                    n.ooc.note_in(footprint);
                    n.table.insert(
                        id,
                        Entry {
                            state: EntryState::InCore(obj),
                            queue: VecDeque::new(),
                            meta: AccessMeta::new(tick),
                            priority,
                            locked: false,
                            footprint,
                            packed_len: 0,
                            spill_key: None,
                            obj_free_at: at,
                            disk_ready_at: Duration::ZERO,
                            pending_migration: None,
                            load_queued: false,
                            prefetch_hint: false,
                            version: 0,
                            stored_version: None,
                        },
                    );
                    audit_emit!(
                        self.audit,
                        RuntimeEvent::Create {
                            node,
                            oid: id,
                            footprint
                        }
                    );
                    self.audit_budget(node, true);
                }
                Effect::Lock(p) => self.route_meta(node, at, p.id, MetaOp::Lock),
                Effect::Unlock(p) => self.route_meta(node, at, p.id, MetaOp::Unlock),
                Effect::SetPriority(p, v) => {
                    self.route_meta(node, at, p.id, MetaOp::SetPriority(v))
                }
                Effect::Migrate(p, dest) => {
                    let oid = p.id;
                    let local = matches!(
                        self.nodes[node as usize].table.get(&oid),
                        Some(e) if !matches!(e.state, EntryState::Moved(_))
                    );
                    if local {
                        self.push_event(at, node, EvKind::MigrateReq(oid, dest));
                    } else {
                        let owner = {
                            let d = self.nodes[node as usize].dir.lookup(oid);
                            if d == node {
                                self.home_of(oid)
                            } else {
                                d
                            }
                        };
                        self.ship(at, node, owner, CTL_BYTES, EvKind::MigrateReq(oid, dest));
                    }
                }
            }
        }
    }

    fn route_meta(&mut self, node: NodeId, at: Duration, oid: ObjectId, op: MetaOp) {
        let local = matches!(
            self.nodes[node as usize].table.get(&oid),
            Some(e) if !matches!(e.state, EntryState::Moved(_))
        );
        if local {
            self.push_event(at, node, EvKind::Meta(oid, op));
        } else {
            let owner = {
                let d = self.nodes[node as usize].dir.lookup(oid);
                if d == node {
                    self.home_of(oid)
                } else {
                    d
                }
            };
            self.ship(at, node, owner, CTL_BYTES, EvKind::Meta(oid, op));
        }
    }

    fn on_meta(&mut self, node: NodeId, oid: ObjectId, op: MetaOp) {
        let present = matches!(
            self.nodes[node as usize].table.get(&oid),
            Some(e) if !matches!(e.state, EntryState::Moved(_))
        );
        if !present {
            let owner = {
                let d = self.nodes[node as usize].dir.lookup(oid);
                if d == node {
                    self.home_of(oid)
                } else {
                    d
                }
            };
            if owner == node {
                return; // object destroyed; drop silently
            }
            self.ship(self.now, node, owner, CTL_BYTES, EvKind::Meta(oid, op));
            return;
        }
        let e = self.nodes[node as usize]
            .table
            .get_mut(&oid)
            .expect("tracked object has a table entry");
        match op {
            MetaOp::Lock => {
                e.locked = true;
                audit_emit!(self.audit, RuntimeEvent::Pin { node, oid });
            }
            MetaOp::Unlock => {
                e.locked = false;
                audit_emit!(self.audit, RuntimeEvent::Unpin { node, oid });
            }
            MetaOp::SetPriority(v) => e.priority = v,
        }
    }

    // ----- out-of-core mechanics ------------------------------------------------

    /// Make room for `incoming` bytes on `node` (hard-threshold admission
    /// for created/installed objects; may displace objects with queued
    /// work — their reload is scheduled so nothing is lost).
    fn admit(&mut self, node: NodeId, incoming: usize, at: Duration) {
        let need = self.nodes[node as usize].ooc.needed_for_admission(incoming);
        if need > 0 {
            self.evict_bytes(node, need, at, true, None);
        }
    }

    /// Admission for a disk *load*. Never displaces objects with queued
    /// messages: a displaced-queued object immediately schedules its own
    /// reload, and two loads displacing each other's queued objects is a
    /// livelock. Prefer briefly overshooting the budget instead.
    fn admit_for_load(&mut self, node: NodeId, incoming: usize, at: Duration) {
        let need = self.nodes[node as usize].ooc.needed_for_admission(incoming);
        if need > 0 {
            self.evict_bytes(node, need, at, false, None);
        }
    }

    /// Post-handler budget enforcement: objects grow during handlers
    /// (meshes refine in place), which no admission path sees. `except`
    /// protects the object whose message queue is currently being drained
    /// (evicting it mid-drain would reorder its messages).
    fn enforce_budget(&mut self, node: NodeId, at: Duration, except: Option<ObjectId>) {
        let n = &self.nodes[node as usize];
        // Degraded: the store is rejecting writes, so evicting would only
        // burn retries; knowingly overshoot until the backend recovers.
        if !n.ooc.enabled() || n.ooc.is_degraded() {
            return;
        }
        let over = n.ooc.used().saturating_sub(n.ooc.budget());
        if over > 0 {
            self.evict_bytes(node, over, at, true, except);
        }
    }

    /// Soft-threshold advisory swap of idle objects.
    fn soft_swap(&mut self, node: NodeId, at: Duration) {
        let excess = self.nodes[node as usize].ooc.soft_excess();
        if excess > 0 {
            self.evict_bytes(node, excess, at, false, None);
        }
    }

    fn evict_bytes(
        &mut self,
        node: NodeId,
        need: usize,
        at: Duration,
        allow_queued: bool,
        except: Option<ObjectId>,
    ) {
        let legacy = self.cfg.legacy_spill;
        let locality = self.cfg.locality;
        if locality {
            self.nodes[node as usize].locality.maybe_rebuild();
        }
        let n = &self.nodes[node as usize];
        let mut candidates: Vec<EvictCandidate> = n
            .table
            .iter()
            .filter(|(&oid, e)| {
                e.is_in_core()
                    && !e.locked
                    && e.obj_free_at <= at
                    && e.pending_migration.is_none()
                    && (allow_queued || e.queue.is_empty())
                    && Some(oid) != except
            })
            .map(|(&oid, e)| EvictCandidate {
                oid,
                footprint: e.footprint,
                meta: e.meta,
                priority: e.priority,
                queued_msgs: e.queue.len(),
                clean: !legacy && e.is_clean(),
                cluster: if locality {
                    n.locality.cluster_of(oid)
                } else {
                    None
                },
                lkey: n.locality.key_of(oid).unwrap_or(crate::locality::UNRANKED),
            })
            .collect();
        let victims = self.nodes[node as usize]
            .ooc
            .pick_victims(&mut candidates, need);
        // Fast path: clean victims are elided (their on-disk bytes are
        // current), and the dirty remainder coalesces into one batched
        // append — only the first store pays the seek component.
        let mut stored = 0usize;
        for oid in victims {
            if self.try_elide(node, oid) {
                continue;
            }
            if self.spill(node, oid, at, !legacy && stored > 0) {
                stored += 1;
            }
        }
        if !legacy && stored >= 2 {
            self.nodes[node as usize].stats.spill_batches += 1;
        }
    }

    /// Clean-eviction elision: drop the resident copy of an object whose
    /// on-disk bytes are already current — no re-pack, no disk charge, and
    /// `disk_ready_at` stays at the (past) completion of the original
    /// store. Returns `false` (caller must spill) under the legacy path or
    /// when the object is dirty.
    fn try_elide(&mut self, node: NodeId, oid: ObjectId) -> bool {
        if self.cfg.legacy_spill {
            return false;
        }
        let has_queue = {
            let n = &mut self.nodes[node as usize];
            let e = n
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry");
            if !e.is_in_core() || !e.is_clean() {
                return false;
            }
            let obj = match std::mem::replace(&mut e.state, EntryState::OnDisk) {
                EntryState::InCore(o) => o,
                _ => unreachable!(),
            };
            drop(obj);
            let footprint = e.footprint;
            let avoided = e.packed_len as u64;
            let has_queue = !e.queue.is_empty();
            n.ooc.note_out(footprint);
            n.ooc.note_spilled(footprint);
            n.stats.evictions += 1;
            n.stats.evictions_elided += 1;
            n.stats.bytes_write_avoided += avoided;
            has_queue
        };
        audit_emit!(
            self.audit,
            RuntimeEvent::ElidedUnload {
                node,
                oid,
                footprint: self.nodes[node as usize].table[&oid].footprint,
                version: self.nodes[node as usize].table[&oid].version,
                stored_version: self.nodes[node as usize].table[&oid]
                    .stored_version
                    .expect("clean object has a stored version"),
            }
        );
        if has_queue {
            self.queue_load(node, oid);
        }
        true
    }

    /// Serialize an in-core object to the (modeled) disk. Store failures
    /// are retried with bounded backoff; exhaustion (or `ENOSPC`)
    /// reinstates the object in-core and enters degraded mode instead of
    /// panicking — the object never left memory.
    ///
    /// `coalesce` marks a store that joins an earlier one from the same
    /// eviction round in a single batched append: it is charged transfer
    /// time only (the seek component was paid by the first store). Returns
    /// `true` iff bytes actually reached the modeled disk.
    fn spill(&mut self, node: NodeId, oid: ObjectId, at: Duration, coalesce: bool) -> bool {
        let obj = {
            let e = self.nodes[node as usize]
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry");
            match std::mem::replace(&mut e.state, EntryState::OnDisk) {
                EntryState::InCore(o) => o,
                other => {
                    e.state = other;
                    return false;
                }
            }
        };
        // Real serialization, charged as compute. The object is kept alive
        // until the store succeeds so a failed spill can reinstate it.
        // The fast path packs into the node's reusable buffer; legacy
        // allocates fresh every time, as the old code did.
        let legacy = self.cfg.legacy_spill;
        let t0 = Instant::now();
        let mut bytes = if legacy {
            Vec::new()
        } else {
            std::mem::take(&mut self.nodes[node as usize].pack_buf)
        };
        let pool_hit = !legacy && bytes.capacity() > 0;
        Registry::pack_into(obj.as_ref(), &mut bytes);
        let pack = self.compute_charge(t0.elapsed(), bytes.len());
        let packed_len = bytes.len();

        let key = {
            let n = &mut self.nodes[node as usize];
            n.stats.comp += pack;
            let e = n
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry");
            let key = *e.spill_key.get_or_insert_with(|| {
                let k = n.next_spill_key;
                n.next_spill_key += 1;
                k
            });
            e.packed_len = packed_len;
            key
        };
        // Retry loop: each failed attempt charges one disk op plus the
        // backoff delay to the virtual channel. A torn write is repaired by
        // the retry overwriting the same key (nothing can load the key
        // while its spill is still in progress — per-object ordering).
        let retry = self.cfg.retry;
        let mut attempt = 0u32;
        let mut penalty = Duration::ZERO;
        let outcome = loop {
            attempt += 1;
            match self.nodes[node as usize].store.store(key, &bytes) {
                Ok(()) => break Ok(()),
                Err(e) => {
                    let injected = self.drain_store_faults(node);
                    penalty += self.fault_penalty(injected);
                    if attempt >= retry.max_attempts || is_out_of_space(&e) {
                        break Err(e);
                    }
                    penalty += self.fault_penalty(
                        self.cfg.disk.op_time(packed_len) + retry.delay(attempt, key),
                    );
                    self.nodes[node as usize].stats.io_retries += 1;
                    audit_emit!(self.audit, RuntimeEvent::Retry { node, oid, attempt });
                }
            }
        };
        let injected = self.drain_store_faults(node);
        penalty += self.fault_penalty(injected);

        if !legacy {
            self.nodes[node as usize].pack_buf = std::mem::take(&mut bytes);
        }

        if outcome.is_err() {
            // Graceful degradation: put the object back, charge the wasted
            // disk time, and stop evicting until a probe succeeds. The
            // on-disk copy (if any) may be torn: mark it stale.
            let n = &mut self.nodes[node as usize];
            n.stats.io_gave_up += 1;
            let e = n
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry");
            debug_assert!(matches!(e.state, EntryState::OnDisk));
            e.state = EntryState::InCore(obj);
            e.stored_version = None;
            if !penalty.is_zero() {
                let ch = (0..n.disk_free.len())
                    .min_by_key(|&i| n.disk_free[i])
                    .expect("node has at least one disk channel");
                let end = at.max(n.disk_free[ch]) + penalty;
                n.disk_free[ch] = end;
                n.stats.disk += penalty;
                self.end_time = self.end_time.max(end);
            }
            if self.nodes[node as usize].ooc.enter_degraded() {
                self.nodes[node as usize].stats.degraded_entries += 1;
                self.nodes[node as usize].stats.degraded_mode_transitions += 1;
                audit_emit!(self.audit, RuntimeEvent::Degraded { node, on: true });
            }
            return false;
        }
        drop(obj);
        let n = &mut self.nodes[node as usize];
        // A coalesced store appends to the same segment the batch's first
        // store opened: charge transfer time only, refunding the seek.
        let op = self.cfg.disk.op_time(packed_len);
        let dur = if coalesce {
            op.saturating_sub(self.cfg.disk.seek) + penalty
        } else {
            op + penalty
        };
        let ch = (0..n.disk_free.len())
            .min_by_key(|&i| n.disk_free[i])
            .expect("node has at least one disk channel");
        let start = at.max(n.disk_free[ch]);
        let end = start + dur;
        n.disk_free[ch] = end;
        n.stats.disk += dur;
        n.stats.stores += 1;
        n.stats.bytes_to_disk += packed_len as u64;
        n.stats.evictions += 1;
        n.stats.buffer_pool_hits += usize::from(pool_hit);
        let (footprint, has_queue) = {
            let e = n
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry");
            e.disk_ready_at = end;
            e.stored_version = Some(e.version);
            (e.footprint, !e.queue.is_empty())
        };
        n.ooc.note_out(footprint);
        n.ooc.note_spilled(footprint);
        audit_emit!(
            self.audit,
            RuntimeEvent::Unload {
                node,
                oid,
                footprint
            }
        );
        self.end_time = self.end_time.max(end);
        // An object evicted with queued messages still owes work: its
        // messages were spilled with it, so queue the reload (the pump
        // issues it; `disk_ready_at` keeps it after the store completes).
        if has_queue {
            self.queue_load(node, oid);
        }
        true
    }

    // ----- migration & multicast -------------------------------------------------

    // ----- work stealing ----------------------------------------------------

    /// Stealable work on `node`: queued-but-not-resident objects (the only
    /// place messages wait in virtual time — resident objects execute
    /// immediately), unpinned and not already migrating. Returns how many
    /// there are plus the pick: deepest queue, ties to the smallest id —
    /// the same total order the threaded victim uses, so the two engines
    /// steal the same object from the same state.
    fn steal_candidates(&self, node: NodeId) -> (usize, Option<ObjectId>) {
        let mut count = 0usize;
        let mut best: Option<(usize, ObjectId)> = None;
        for (&oid, e) in &self.nodes[node as usize].table {
            let ok = matches!(e.state, EntryState::OnDisk | EntryState::Loading)
                && !e.locked
                && e.pending_migration.is_none()
                && !e.queue.is_empty();
            if !ok {
                continue;
            }
            count += 1;
            let len = e.queue.len();
            let better = match best {
                None => true,
                Some((blen, boid)) => len > blen || (len == blen && oid.0 < boid.0),
            };
            if better {
                best = Some((len, oid));
            }
        }
        (count, best.map(|(_, oid)| oid))
    }

    /// After each handled event: if this node has a backlog to spare and a
    /// peer has gone completely quiet, fire a steal request on the idle
    /// peer's behalf. The protocol still runs thief → victim and pays
    /// control-message latency both ways, mirroring the threaded engine;
    /// only the *trigger* is collapsed — virtual time can see "no events
    /// scheduled" directly where a real thief counts empty polls.
    fn maybe_steal(&mut self, node: NodeId) {
        if !self.cfg.work_stealing || self.nodes.len() < 2 {
            return;
        }
        // Keep at least one queued task at home: stealing the victim's
        // last one just moves the imbalance around.
        let (backlog, _) = self.steal_candidates(node);
        if backlog < 2 {
            return;
        }
        let thief = (0..self.nodes.len() as NodeId).find(|&t| {
            t != node && self.pending_events[t as usize] == 0 && !self.thief_waiting[t as usize]
        });
        let Some(thief) = thief else { return };
        self.thief_waiting[thief as usize] = true;
        self.nodes[thief as usize].stats.idle_ticks += 1;
        self.nodes[thief as usize].stats.steal_requests += 1;
        self.ship(self.now, thief, node, CTL_BYTES, EvKind::StealReq(thief));
    }

    /// Victim side: grant the candidate pick (the object travels through
    /// the ordinary migration path — load if spilled, then install at the
    /// thief) or send a deny so the thief is re-armed.
    fn on_steal_req(&mut self, node: NodeId, thief: NodeId) {
        audit_emit!(self.audit, RuntimeEvent::StealRequest { node, thief });
        match self.steal_candidates(node).1 {
            Some(oid) => {
                // Emitted while the object is still tracked here, so the
                // checker validates the grant against pre-migration state.
                audit_emit!(
                    self.audit,
                    RuntimeEvent::StealGrant {
                        node,
                        oid,
                        to: thief
                    }
                );
                self.on_migrate_req(node, oid, thief);
            }
            None => {
                self.ship(self.now, node, thief, CTL_BYTES, EvKind::StealDeny(node));
            }
        }
    }

    fn on_migrate_req(&mut self, node: NodeId, oid: ObjectId, dest: NodeId) {
        let entry_state = self.nodes[node as usize]
            .table
            .get(&oid)
            .map(|e| match e.state {
                EntryState::Moved(f) => Err(f),
                EntryState::InCore(_) | EntryState::Executing => Ok(true),
                EntryState::OnDisk | EntryState::Loading => Ok(false),
            });
        match entry_state {
            None => {
                // Not here: forward along the directory.
                let owner = {
                    let d = self.nodes[node as usize].dir.lookup(oid);
                    if d == node {
                        self.home_of(oid)
                    } else {
                        d
                    }
                };
                if owner != node {
                    self.ship(
                        self.now,
                        node,
                        owner,
                        CTL_BYTES,
                        EvKind::MigrateReq(oid, dest),
                    );
                }
            }
            Some(Err(f)) => {
                self.ship(self.now, node, f, CTL_BYTES, EvKind::MigrateReq(oid, dest));
            }
            Some(Ok(true)) => {
                if node == dest {
                    // Already where it should be.
                    self.mc_note_available(node, oid);
                    return;
                }
                self.do_migrate(node, oid, dest);
            }
            Some(Ok(false)) => {
                // Load it first, then ship (urgent: bypasses the window).
                {
                    let e = self.nodes[node as usize]
                        .table
                        .get_mut(&oid)
                        .expect("tracked object has a table entry");
                    e.pending_migration = Some(dest);
                }
                self.queue_load(node, oid);
            }
        }
    }

    /// Pack and ship an in-core object to `dest`, leaving a Moved
    /// tombstone; its queued messages travel along.
    fn do_migrate(&mut self, node: NodeId, oid: ObjectId, dest: NodeId) {
        let (obj, queue, priority, locked, footprint, free_at, version) = {
            let e = self.nodes[node as usize]
                .table
                .get_mut(&oid)
                .expect("tracked object has a table entry");
            e.pending_migration = None;
            let state = std::mem::replace(&mut e.state, EntryState::Moved(dest));
            let obj = match state {
                EntryState::InCore(o) => o,
                other => {
                    e.state = other;
                    return;
                }
            };
            (
                obj,
                std::mem::take(&mut e.queue),
                e.priority,
                e.locked,
                e.footprint,
                e.obj_free_at,
                e.version,
            )
        };
        let t0 = Instant::now();
        let bytes = Registry::pack(obj.as_ref());
        let pack = self.compute_charge(t0.elapsed(), bytes.len());
        drop(obj);
        {
            let n = &mut self.nodes[node as usize];
            n.stats.comp += pack;
            n.stats.migrations += 1;
            n.ooc.note_out(footprint);
        }
        audit_emit!(
            self.audit,
            RuntimeEvent::MigrateOut {
                node,
                oid,
                to: dest,
                queued: queue.len(),
                footprint
            }
        );
        let at = self.now.max(free_at);
        let nbytes = bytes.len();
        self.ship(
            at,
            node,
            dest,
            nbytes,
            EvKind::Install {
                oid,
                bytes,
                priority,
                locked,
                version,
                queue,
            },
        );
        // Tell the home node where the object went (lazy update).
        let home = self.home_of(oid);
        if home != node && home != dest {
            self.ship(
                at,
                node,
                home,
                DIR_UPDATE_BYTES,
                EvKind::DirUpdate(oid, dest),
            );
        }
        self.nodes[node as usize].dir.update(oid, dest);
        audit_emit!(
            self.audit,
            RuntimeEvent::DirUpdate {
                node,
                oid,
                loc: dest
            }
        );
    }

    #[allow(clippy::too_many_arguments)] // mirrors the Install event's fields
    fn on_install(
        &mut self,
        node: NodeId,
        oid: ObjectId,
        bytes: Vec<u8>,
        priority: u8,
        locked: bool,
        version: u64,
        queue: VecDeque<Message>,
    ) {
        // An install that lands while a steal request is pending on this
        // node's behalf is its answer: count the stolen task.
        if self.thief_waiting[node as usize] {
            self.thief_waiting[node as usize] = false;
            self.nodes[node as usize].stats.tasks_stolen += 1;
        }
        let t0 = Instant::now();
        let obj = self
            .registry
            .unpack(&bytes)
            .expect("migration bytes were packed by the sending node from a registered type");
        let unpack = self.compute_charge(t0.elapsed(), bytes.len());
        let footprint = obj.footprint();
        self.admit(node, footprint, self.now);
        {
            let n = &mut self.nodes[node as usize];
            n.stats.comp += unpack;
            let tick = n.ooc.tick();
            n.ooc.note_in(footprint);
            n.dir.update(oid, node);
            n.table.insert(
                oid,
                Entry {
                    state: EntryState::InCore(obj),
                    queue: VecDeque::new(),
                    meta: AccessMeta::new(tick),
                    priority,
                    locked,
                    footprint,
                    packed_len: bytes.len(),
                    spill_key: None,
                    obj_free_at: self.now,
                    disk_ready_at: Duration::ZERO,
                    pending_migration: None,
                    load_queued: false,
                    prefetch_hint: false,
                    // Install counts as a mutation (the checker model bumps
                    // on MigrateIn); any spill key left behind on the old
                    // node is invalid here anyway.
                    version: version + 1,
                    stored_version: None,
                },
            );
        }
        audit_emit!(
            self.audit,
            RuntimeEvent::MigrateIn {
                node,
                oid,
                queued: queue.len(),
                footprint
            }
        );
        audit_emit!(
            self.audit,
            RuntimeEvent::DirUpdate {
                node,
                oid,
                loc: node
            }
        );
        self.audit_budget(node, true);
        // Replay the messages that traveled with the object.
        for msg in queue {
            self.push_event(self.now, node, EvKind::Msg(msg));
        }
        self.mc_note_available(node, oid);
    }

    fn on_mc_start(
        &mut self,
        node: NodeId,
        info: MulticastInfo,
        handler: HandlerId,
        payload: Vec<u8>,
    ) {
        let mut waiting = Vec::new();
        let now = self.now;
        for t in &info.targets {
            let oid = t.id;
            let status = self.nodes[node as usize]
                .table
                .get(&oid)
                .map(|e| match &e.state {
                    EntryState::Moved(f) => Err(*f),
                    EntryState::InCore(_) | EntryState::Executing => Ok(true),
                    _ => Ok(false),
                });
            match status {
                Some(Ok(true)) => {
                    // Present: pin it until delivery.
                    self.nodes[node as usize]
                        .table
                        .get_mut(&oid)
                        .expect("tracked object has a table entry")
                        .locked = true;
                    audit_emit!(self.audit, RuntimeEvent::Pin { node, oid });
                }
                Some(Ok(false)) => {
                    waiting.push(oid);
                    self.nodes[node as usize]
                        .table
                        .get_mut(&oid)
                        .expect("tracked object has a table entry")
                        .locked = true;
                    audit_emit!(self.audit, RuntimeEvent::Pin { node, oid });
                    self.queue_load(node, oid);
                }
                Some(Err(f)) => {
                    waiting.push(oid);
                    self.ship(now, node, f, CTL_BYTES, EvKind::MigrateReq(oid, node));
                }
                None => {
                    waiting.push(oid);
                    let owner = {
                        let d = self.nodes[node as usize].dir.lookup(oid);
                        if d == node {
                            self.home_of(oid)
                        } else {
                            d
                        }
                    };
                    self.ship(now, node, owner, CTL_BYTES, EvKind::MigrateReq(oid, node));
                }
            }
        }
        let pending = McPending {
            info,
            handler,
            payload,
            waiting,
        };
        if pending.waiting.is_empty() {
            self.mc_deliver(node, pending);
        } else {
            self.nodes[node as usize].multicasts.push(pending);
        }
    }

    /// An object became available in-core on `node`: progress any waiting
    /// multicasts.
    fn mc_note_available(&mut self, node: NodeId, oid: ObjectId) {
        let mut ready = Vec::new();
        {
            let n = &mut self.nodes[node as usize];
            let mut i = 0;
            while i < n.multicasts.len() {
                let mc = &mut n.multicasts[i];
                mc.waiting.retain(|&w| w != oid);
                if mc.waiting.is_empty() {
                    ready.push(n.multicasts.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        for mc in ready {
            self.mc_deliver(node, mc);
        }
    }

    fn mc_deliver(&mut self, node: NodeId, mc: McPending) {
        audit_emit!(
            self.audit,
            RuntimeEvent::McDeliver {
                node,
                targets: mc.info.targets.iter().map(|t| t.id).collect(),
            }
        );
        // Deliver to the first `deliver_to` targets; unlock everyone.
        for (i, t) in mc.info.targets.iter().enumerate() {
            if (i as u32) < mc.info.deliver_to {
                audit_emit!(self.audit, RuntimeEvent::Post { node, oid: t.id });
                let msg = Message::new(*t, mc.handler, mc.payload.clone());
                self.push_event(self.now, node, EvKind::Msg(msg));
            }
        }
        for t in &mc.info.targets {
            if let Some(e) = self.nodes[node as usize].table.get_mut(&t.id) {
                e.locked = false;
                audit_emit!(self.audit, RuntimeEvent::Unpin { node, oid: t.id });
            }
        }
    }

    // ----- inspection (post-run) ---------------------------------------------------

    /// Post-run extraction read. There is no virtual clock left to charge
    /// and a fault plan keeps injecting after the run completes, so retry
    /// hard: the transient-fault counter advances per attempt, making 64
    /// consecutive failures astronomically unlikely under any sane plan.
    fn load_stubborn(store: &mut dyn StorageBackend, key: u64) -> Vec<u8> {
        let mut last: Option<std::io::Error> = None;
        for _ in 0..64 {
            match store.load(key) {
                Ok(b) => return b,
                Err(e) => last = Some(e),
            }
        }
        panic!("spilled object {key} unreadable after 64 attempts: {last:?}")
    }

    /// Visit an object wherever it is (following migrations, loading from
    /// the spill store if needed — uncharged; for result extraction).
    pub fn with_object<R>(&mut self, ptr: MobilePtr, f: impl FnOnce(&dyn MobileObject) -> R) -> R {
        let node = self.owner_of(ptr.id);
        let n = &mut self.nodes[node as usize];
        let e = n
            .table
            .get_mut(&ptr.id)
            .unwrap_or_else(|| panic!("no object {:?}", ptr.id));
        match &e.state {
            EntryState::InCore(obj) => f(obj.as_ref()),
            EntryState::OnDisk | EntryState::Loading => {
                let key = e.spill_key.expect("on-disk object has a key");
                let bytes = Self::load_stubborn(n.store.as_mut(), key);
                let obj = self
                    .registry
                    .unpack(&bytes)
                    .expect("spill bytes were packed by this runtime from a registered type");
                f(obj.as_ref())
            }
            EntryState::Executing => unreachable!("no handler is running post-run"),
            EntryState::Moved(_) => unreachable!("owner_of follows tombstones"),
        }
    }

    /// Visit every live object (post-run; arbitrary order).
    pub fn for_each_object(&mut self, mut f: impl FnMut(ObjectId, &dyn MobileObject)) {
        for node in 0..self.nodes.len() {
            let oids: Vec<ObjectId> = self.nodes[node]
                .table
                .iter()
                .filter(|(_, e)| !matches!(e.state, EntryState::Moved(_)))
                .map(|(&oid, _)| oid)
                .collect();
            for oid in oids {
                self.with_object(MobilePtr::new(oid), |obj| f(oid, obj));
            }
        }
    }

    // ----- checkpoint support (see crate::checkpoint) ------------------------

    /// Install an object from a checkpoint entry (bootstrap-time).
    pub(crate) fn install_from_checkpoint(
        &mut self,
        node: NodeId,
        oid: ObjectId,
        packed: &[u8],
        priority: u8,
        locked: bool,
    ) {
        let obj = self
            .registry
            .unpack(packed)
            .expect("checkpoint entries hold pack output of registered types");
        let footprint = obj.footprint();
        self.admit(node, footprint, Duration::ZERO);
        let n = &mut self.nodes[node as usize];
        let tick = n.ooc.tick();
        n.ooc.note_in(footprint);
        let prev = n.table.insert(
            oid,
            Entry {
                state: EntryState::InCore(obj),
                queue: VecDeque::new(),
                meta: AccessMeta::new(tick),
                priority,
                locked,
                footprint,
                packed_len: packed.len(),
                spill_key: None,
                obj_free_at: Duration::ZERO,
                disk_ready_at: Duration::ZERO,
                pending_migration: None,
                load_queued: false,
                prefetch_hint: false,
                version: 0,
                stored_version: None,
            },
        );
        assert!(prev.is_none(), "checkpoint restore collided with {oid:?}");
        audit_emit!(
            self.audit,
            RuntimeEvent::Create {
                node,
                oid,
                footprint
            }
        );
        self.audit_budget(node, false);
    }

    /// Raise per-node object-id allocation watermarks (restore path).
    pub(crate) fn set_seq_watermarks(&mut self, seq: &[u64]) {
        for (i, &s) in seq.iter().enumerate() {
            if let Some(n) = self.nodes.get_mut(i) {
                n.next_obj_seq = n.next_obj_seq.max(s);
            }
        }
        // Objects restored from a differently-sized cluster keep their
        // original home ids; make sure every node's allocator clears every
        // restored id of its own home.
        for node in 0..self.nodes.len() {
            let max_seq = self.nodes[node]
                .table
                .keys()
                .filter(|oid| oid.home() as usize == node)
                .map(|oid| oid.seq() + 1)
                .max()
                .unwrap_or(0);
            let n = &mut self.nodes[node];
            n.next_obj_seq = n.next_obj_seq.max(max_seq);
        }
    }

    /// Snapshot every live object (must be quiescent: no events pending).
    pub(crate) fn snapshot_objects(
        &mut self,
    ) -> (Vec<crate::checkpoint::CheckpointEntry>, Vec<u64>) {
        assert!(
            self.events.is_empty(),
            "checkpoint requires quiescence (run() completed)"
        );
        let mut out = Vec::new();
        for node in 0..self.nodes.len() {
            // Hash order would leak into the entry order (and from there
            // into the restored runtime's install order, which schedules
            // work): sort so two captures of the same state encode
            // identically, matching the threaded engine's checkpoint.
            let mut oids: Vec<ObjectId> = self.nodes[node].table.keys().copied().collect();
            oids.sort_unstable_by_key(|o| o.0);
            for oid in oids {
                let n = &mut self.nodes[node];
                let e = n.table.get(&oid).expect("tracked object has a table entry");
                let (priority, locked) = (e.priority, e.locked);
                let queued: Vec<Message> = e.queue.iter().cloned().collect();
                let packed = match &e.state {
                    EntryState::InCore(obj) => Registry::pack(obj.as_ref()),
                    EntryState::OnDisk | EntryState::Loading => {
                        let key = e.spill_key.expect("spilled object has key");
                        Self::load_stubborn(n.store.as_mut(), key)
                    }
                    EntryState::Executing => unreachable!("quiescent"),
                    EntryState::Moved(_) => continue,
                };
                out.push(crate::checkpoint::CheckpointEntry {
                    node: node as NodeId,
                    oid,
                    priority,
                    locked,
                    packed,
                    queued,
                });
            }
        }
        let next_seq = self.nodes.iter().map(|n| n.next_obj_seq).collect();
        (out, next_seq)
    }

    // ----- load-balancing support (see crate::balance) ----------------------

    /// Observe all live objects for the balancer.
    pub(crate) fn observe_balance_items(
        &self,
        by: crate::balance::BalanceBy,
    ) -> Vec<crate::balance::BalanceItem> {
        let mut out = Vec::new();
        for (node, n) in self.nodes.iter().enumerate() {
            for (&oid, e) in &n.table {
                if matches!(e.state, EntryState::Moved(_)) {
                    continue;
                }
                let weight = match by {
                    crate::balance::BalanceBy::Footprint => e.footprint as u64,
                    crate::balance::BalanceBy::QueuedWork => e.queue.len() as u64,
                };
                out.push(crate::balance::BalanceItem {
                    oid,
                    node: node as NodeId,
                    weight,
                    locked: e.locked,
                });
            }
        }
        out.sort_by_key(|i| i.oid);
        out
    }

    /// Request an object migration (processed by the next [`DesRuntime::run`]).
    pub(crate) fn request_migration(&mut self, ptr: MobilePtr, dest: NodeId) {
        let owner = self.owner_of(ptr.id);
        let at = self.now;
        self.push_event(at, owner, EvKind::MigrateReq(ptr.id, dest));
    }

    /// Number of live objects across all nodes.
    pub fn num_objects(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                n.table
                    .values()
                    .filter(|e| !matches!(e.state, EntryState::Moved(_)))
                    .count()
            })
            .sum()
    }
}
