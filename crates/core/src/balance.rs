//! Load balancing over mobile objects.
//!
//! The paper inherits "communication and load balancing functionality" from
//! MRTS's predecessor ([3], the mobile-object runtime) and recommends
//! overdecomposition precisely because it "allows greater flexibility for
//! dynamic load balancing". This module provides the balancing primitive on
//! top of object migration: compute a placement that evens out per-node
//! load (by resident footprint or by queued work) and emit the migrations
//! that realize it.
//!
//! The planner is pure (testable in isolation); [`DesRuntime::rebalance`]
//! applies a plan between phases by issuing the engine's ordinary migration
//! machinery, so the cost (pack → ship → unpack) is charged like any other
//! data movement.

use crate::des::DesRuntime;
use crate::ids::{MobilePtr, NodeId, ObjectId};

/// What to equalize.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalanceBy {
    /// Resident footprint bytes.
    Footprint,
    /// Queued messages (pending work).
    QueuedWork,
}

/// One observed object for the planner.
#[derive(Clone, Copy, Debug)]
pub struct BalanceItem {
    pub oid: ObjectId,
    pub node: NodeId,
    /// The load this object contributes (bytes or queued messages).
    pub weight: u64,
    /// Pinned objects are never moved.
    pub locked: bool,
}

/// A planned migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Move {
    pub oid: ObjectId,
    pub from: NodeId,
    pub to: NodeId,
}

/// Greedy rebalancing: repeatedly move the lightest suitable object from
/// the most loaded node to the least loaded node while doing so shrinks the
/// spread. O(n log n)-ish, deterministic, and conservative: it never makes
/// the spread worse and never moves pinned objects.
pub fn plan_rebalance(nodes: usize, items: &[BalanceItem]) -> Vec<Move> {
    assert!(nodes > 0);
    let mut load = vec![0u64; nodes];
    // Per node, movable objects sorted by weight (lightest first moves
    // first: cheap to ship, fine-grained smoothing).
    let mut movable: Vec<Vec<(u64, ObjectId)>> = vec![Vec::new(); nodes];
    for it in items {
        let n = it.node as usize;
        assert!(n < nodes, "item on unknown node {n}");
        load[n] += it.weight;
        if !it.locked {
            movable[n].push((it.weight, it.oid));
        }
    }
    for m in &mut movable {
        m.sort_unstable();
    }

    let mut moves = Vec::new();
    // Guard: each object moves at most once per plan.
    let max_iters = items.len() + 1;
    for _ in 0..max_iters {
        let (max_n, min_n) = {
            let max_n = (0..nodes)
                .max_by_key(|&i| load[i])
                .expect("rebalance needs at least one node");
            let min_n = (0..nodes)
                .min_by_key(|&i| load[i])
                .expect("rebalance needs at least one node");
            (max_n, min_n)
        };
        if max_n == min_n {
            break;
        }
        let gap = load[max_n] - load[min_n];
        // Move the heaviest object that still *reduces* the spread: after
        // moving weight w, the new gap contribution is |gap − 2w|; any
        // w < gap improves it, and the largest such w improves it most.
        let candidate = movable[max_n].iter().rposition(|&(w, _)| w > 0 && w < gap);
        let Some(pos) = candidate else { break };
        let (w, oid) = movable[max_n].remove(pos);
        load[max_n] -= w;
        load[min_n] += w;
        moves.push(Move {
            oid,
            from: max_n as NodeId,
            to: min_n as NodeId,
        });
        // The moved object is not re-movable within this plan (prevents
        // oscillation).
    }
    moves
}

/// Spread = max load − min load for a node count and item set (diagnostic).
pub fn spread(nodes: usize, items: &[BalanceItem]) -> u64 {
    let mut load = vec![0u64; nodes];
    for it in items {
        load[it.node as usize] += it.weight;
    }
    let max = load.iter().copied().max().unwrap_or(0);
    let min = load.iter().copied().min().unwrap_or(0);
    max - min
}

impl DesRuntime {
    /// Observe all live objects for the balancer.
    pub fn balance_items(&self, by: BalanceBy) -> Vec<BalanceItem> {
        self.observe_balance_items(by)
    }

    /// Plan and apply a rebalance between phases: migrations are posted
    /// through the ordinary control-layer machinery and execute on the next
    /// [`DesRuntime::run`] (alongside the phase's own messages), so their
    /// pack/ship/unpack costs are charged normally. Returns the plan.
    pub fn rebalance(&mut self, by: BalanceBy) -> Vec<Move> {
        let items = self.balance_items(by);
        let moves = plan_rebalance(self.config().nodes, &items);
        for m in &moves {
            self.request_migration(MobilePtr::new(m.oid), m.to);
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(seq: u64, node: NodeId, weight: u64, locked: bool) -> BalanceItem {
        BalanceItem {
            oid: ObjectId::new(node, seq),
            node,
            weight,
            locked,
        }
    }

    #[test]
    fn balanced_input_plans_nothing() {
        let items = vec![item(0, 0, 100, false), item(1, 1, 100, false)];
        assert!(plan_rebalance(2, &items).is_empty());
    }

    #[test]
    fn skewed_input_evens_out() {
        let items = vec![
            item(0, 0, 100, false),
            item(1, 0, 100, false),
            item(2, 0, 100, false),
            item(3, 0, 100, false),
        ];
        let moves = plan_rebalance(2, &items);
        assert_eq!(moves.len(), 2);
        for m in &moves {
            assert_eq!(m.from, 0);
            assert_eq!(m.to, 1);
        }
        // Simulate the plan and verify the spread vanished.
        let mut after = items.clone();
        for m in &moves {
            for it in &mut after {
                if it.oid == m.oid {
                    it.node = m.to;
                }
            }
        }
        assert_eq!(spread(2, &after), 0);
    }

    #[test]
    fn locked_objects_never_move() {
        let items = vec![
            item(0, 0, 500, true),
            item(1, 0, 100, false),
            item(2, 1, 50, false),
        ];
        let moves = plan_rebalance(2, &items);
        for m in &moves {
            assert_ne!(m.oid, ObjectId::new(0, 0), "pinned object moved");
        }
    }

    #[test]
    fn never_worsens_spread_and_terminates() {
        // One giant object dominates: nothing useful to move.
        let items = vec![item(0, 0, 10_000, false), item(1, 1, 10, false)];
        let before = spread(2, &items);
        let moves = plan_rebalance(2, &items);
        let mut after = items.clone();
        for m in &moves {
            for it in &mut after {
                if it.oid == m.oid {
                    it.node = m.to;
                }
            }
        }
        assert!(spread(2, &after) <= before);
    }

    #[test]
    fn three_nodes_smooth_out() {
        let items: Vec<BalanceItem> = (0..9).map(|i| item(i, 0, 10 + i % 3, false)).collect();
        let moves = plan_rebalance(3, &items);
        assert!(!moves.is_empty());
        let mut after = items.clone();
        for m in &moves {
            for it in &mut after {
                if it.oid == m.oid {
                    it.node = m.to;
                }
            }
        }
        assert!(spread(3, &after) < spread(3, &items));
    }
}
