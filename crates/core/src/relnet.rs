//! The reliable-delivery and termination protocol core, extracted from
//! the threaded engine as pure state machines.
//!
//! [`ReliableSender`], [`ReliableReceiver`] and [`Safra`] hold *all* of
//! the protocol-visible state of the ack/retransmit/dedup layer and of
//! Safra's termination ring; `threaded.rs` owns only the physical
//! concerns wrapped around them (fault injection, backoff timers,
//! deferred transmissions). Because the types are deterministic (BTree
//! containers, no clocks), the loom suite (`tests/loom.rs`, built with
//! `--cfg loom`) can drive the exact production state machines from
//! concurrent model-checked threads and exhaustively verify:
//!
//! * exactly-once, per-edge-FIFO release under duplication + reordering;
//! * retransmit give-up restoring the global Safra sum *before* the
//!   ring can observe quiescence.
//!
//! Invariant the two sides maintain together: at any instant,
//! `sum over nodes of Safra.counter == logical sends not yet released
//! and not cancelled`; termination is declared only when a whole white
//! probe round sums to zero.

use crate::ids::NodeId;
use std::collections::BTreeMap;

/// Sender half of the reliable edge: per-destination sequence numbers
/// plus the unacknowledged-frame buffer.
#[derive(Debug, Default)]
pub struct ReliableSender {
    send_seq: BTreeMap<NodeId, u64>,
    unacked: BTreeMap<(NodeId, u64), Pending>,
}

/// One logical message awaiting acknowledgement.
#[derive(Debug)]
pub struct Pending {
    pub tag: u32,
    /// Full frame including the 8-byte little-endian sequence prefix,
    /// ready to resend byte-identically.
    pub frame: Vec<u8>,
    /// Retransmissions so far (the initial transmission is attempt 0).
    pub attempts: u32,
}

/// What a due retransmission timer should do, decided by
/// [`ReliableSender::on_timer`].
#[derive(Debug)]
pub enum TimerAction {
    /// Already acknowledged (or cancelled) — nothing to do.
    Acked,
    /// Resend this frame; `attempt` is the new attempt ordinal.
    Retransmit {
        tag: u32,
        frame: Vec<u8>,
        attempt: u32,
    },
    /// The retry budget is exhausted: the logical send is cancelled and
    /// the caller must escalate (restore the Safra sum, re-route or
    /// declare the peer unreachable).
    GiveUp {
        tag: u32,
        frame: Vec<u8>,
        attempts: u32,
    },
}

impl ReliableSender {
    pub fn new() -> ReliableSender {
        ReliableSender::default()
    }

    /// Assign the next sequence number on the `self → dest` edge and
    /// buffer the frame for retransmission. Returns `(seq, frame)`;
    /// the caller transmits the frame (possibly through a fault plan).
    pub fn next_frame(&mut self, dest: NodeId, tag: u32, payload: &[u8]) -> (u64, Vec<u8>) {
        let s = self.send_seq.entry(dest).or_insert(0);
        let seq = *s;
        *s += 1;
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(payload);
        self.unacked.insert(
            (dest, seq),
            Pending {
                tag,
                frame: frame.clone(),
                attempts: 0,
            },
        );
        (seq, frame)
    }

    /// An ack arrived for `(dest, seq)`. Returns whether the frame was
    /// still outstanding (duplicate acks return `false`).
    pub fn on_ack(&mut self, dest: NodeId, seq: u64) -> bool {
        self.unacked.remove(&(dest, seq)).is_some()
    }

    /// A retransmission timer fired for `(dest, seq)`. Bumps the attempt
    /// count and decides between resending and giving up; on
    /// [`TimerAction::GiveUp`] the frame is dropped from the buffer.
    pub fn on_timer(&mut self, dest: NodeId, seq: u64, limit: u32) -> TimerAction {
        let Some(p) = self.unacked.get_mut(&(dest, seq)) else {
            return TimerAction::Acked;
        };
        p.attempts += 1;
        if p.attempts > limit {
            let p = self
                .unacked
                .remove(&(dest, seq))
                .expect("entry fetched above");
            TimerAction::GiveUp {
                tag: p.tag,
                frame: p.frame,
                attempts: p.attempts,
            }
        } else {
            TimerAction::Retransmit {
                tag: p.tag,
                frame: p.frame.clone(),
                attempt: p.attempts,
            }
        }
    }

    /// Outstanding logical messages.
    pub fn outstanding(&self) -> usize {
        self.unacked.len()
    }

    /// Keys of every outstanding frame (for the caller's timer wheel).
    pub fn outstanding_keys(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.unacked.keys().copied()
    }
}

/// Receiver half: duplicate suppression plus in-order (per-source)
/// release. Frames are *held* above the release watermark so handler
/// execution is exactly-once and FIFO per edge no matter how the fabric
/// duplicated or reordered the physical transmissions.
#[derive(Debug, Default)]
pub struct ReliableReceiver {
    /// Next sequence number to release, per source.
    expected: BTreeMap<NodeId, u64>,
    /// Received frames above the watermark, held for in-order release.
    held: BTreeMap<NodeId, BTreeMap<u64, (u32, Vec<u8>)>>,
}

impl ReliableReceiver {
    pub fn new() -> ReliableReceiver {
        ReliableReceiver::default()
    }

    /// A frame arrived. Returns `false` for a duplicate (already
    /// released or already held — the caller still acks it, because the
    /// previous ack may have raced the sender's retransmit timer), or
    /// `true` if the frame is now held for release.
    pub fn accept(&mut self, src: NodeId, seq: u64, tag: u32, payload: Vec<u8>) -> bool {
        let exp = self.expected.get(&src).copied().unwrap_or(0);
        if seq < exp || self.held.get(&src).is_some_and(|h| h.contains_key(&seq)) {
            return false;
        }
        self.held
            .entry(src)
            .or_default()
            .insert(seq, (tag, payload));
        true
    }

    /// Pop the next consecutive frame from the watermark up, if present.
    /// Call in a loop: each return is one logical message, in per-source
    /// sequence order, exactly once.
    pub fn next_release(&mut self, src: NodeId) -> Option<(u32, Vec<u8>)> {
        let exp = self.expected.entry(src).or_insert(0);
        let f = self.held.get_mut(&src)?.remove(exp)?;
        *exp += 1;
        Some(f)
    }

    /// Frames held out-of-order (diagnostics).
    pub fn held_frames(&self) -> usize {
        self.held.values().map(|h| h.len()).sum()
    }
}

/// Safra's termination-detection state for one node.
///
/// Nodes count logical sends (+1) and deliveries (−1); delivering or
/// cancelling a message also blackens the node. Node 0 circulates a
/// token summing the counters; a probe that comes back white to a
/// white, idle node 0 with `token_q + counter == 0` proves no message
/// is in flight anywhere. Cancelling an undeliverable message
/// ([`Safra::on_cancel`]) subtracts the send exactly like a delivery
/// would — and blackens the node, so the probe round that overlapped
/// the cancellation can never report clean.
#[derive(Debug)]
pub struct Safra {
    pub counter: i64,
    pub color_black: bool,
    pub has_token: bool,
    pub token_black: bool,
    pub token_q: i64,
    pub initiated: bool,
}

impl Default for Safra {
    fn default() -> Safra {
        Safra::new()
    }
}

impl Safra {
    pub fn new() -> Safra {
        Safra {
            counter: 0,
            color_black: false,
            has_token: false,
            token_black: false,
            token_q: 0,
            initiated: false,
        }
    }

    /// A logical data message was sent to a peer.
    pub fn on_send(&mut self) {
        self.counter += 1;
    }

    /// A logical data message was delivered (released to its handler).
    pub fn on_deliver(&mut self) {
        self.counter -= 1;
        self.color_black = true;
    }

    /// A logical send was cancelled (retransmit give-up). Restores the
    /// global sum the send incremented and blackens the node: the
    /// in-flight probe round must not be trusted.
    pub fn on_cancel(&mut self) {
        self.counter -= 1;
        self.color_black = true;
    }

    /// The ring token arrived carrying `(black, q)`.
    pub fn on_token(&mut self, black: bool, q: i64) {
        self.has_token = true;
        self.token_black = black;
        self.token_q = q;
    }

    /// Node 0, holding a returned probe: does it prove global
    /// quiescence? (The caller must separately be idle.)
    pub fn probe_clean(&self) -> bool {
        !self.token_black && !self.color_black && self.token_q + self.counter == 0
    }

    /// An intermediate idle node forwards the token: consume it, fold in
    /// this node's color and counter, whiten, and return `(black, q)`
    /// for the next hop.
    pub fn forward_token(&mut self) -> (bool, i64) {
        self.has_token = false;
        let black = self.token_black || self.color_black;
        let q = self.token_q + self.counter;
        self.color_black = false;
        (black, q)
    }

    /// Node 0 starts (or restarts) a probe round: consume any held
    /// token, whiten, and send a fresh white token with `q = 0`.
    pub fn start_probe(&mut self) {
        self.initiated = true;
        self.has_token = false;
        self.color_black = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sender_assigns_per_edge_sequences() {
        let mut s = ReliableSender::new();
        let (a0, f) = s.next_frame(1, 7, b"x");
        let (a1, _) = s.next_frame(1, 7, b"y");
        let (b0, _) = s.next_frame(2, 7, b"z");
        assert_eq!((a0, a1, b0), (0, 1, 0));
        assert_eq!(&f[..8], &0u64.to_le_bytes());
        assert_eq!(&f[8..], b"x");
        assert_eq!(s.outstanding(), 3);
        assert!(s.on_ack(1, 0));
        assert!(!s.on_ack(1, 0), "duplicate ack is a no-op");
        assert_eq!(s.outstanding(), 2);
    }

    #[test]
    fn timer_retransmits_then_gives_up() {
        let mut s = ReliableSender::new();
        let (seq, frame) = s.next_frame(1, 7, b"m");
        for attempt in 1..=2u32 {
            match s.on_timer(1, seq, 2) {
                TimerAction::Retransmit {
                    frame: f,
                    attempt: a,
                    ..
                } => {
                    assert_eq!(f, frame);
                    assert_eq!(a, attempt);
                }
                other => panic!("expected retransmit, got {other:?}"),
            }
        }
        match s.on_timer(1, seq, 2) {
            TimerAction::GiveUp { attempts, .. } => assert_eq!(attempts, 3),
            other => panic!("expected give-up, got {other:?}"),
        }
        assert_eq!(s.outstanding(), 0);
        assert!(matches!(s.on_timer(1, seq, 2), TimerAction::Acked));
    }

    #[test]
    fn receiver_is_exactly_once_and_fifo_under_dup_and_reorder() {
        let mut r = ReliableReceiver::new();
        // Arrivals: 1, 1 (dup), 0, 2, 0 (dup after release).
        assert!(r.accept(3, 1, 7, vec![1]));
        assert!(!r.accept(3, 1, 7, vec![1]), "held duplicate suppressed");
        assert!(r.next_release(3).is_none(), "gap: nothing to release");
        assert!(r.accept(3, 0, 7, vec![0]));
        let mut out = Vec::new();
        while let Some((_, p)) = r.next_release(3) {
            out.push(p[0]);
        }
        assert_eq!(out, vec![0, 1]);
        assert!(r.accept(3, 2, 7, vec![2]));
        assert!(!r.accept(3, 0, 7, vec![0]), "released duplicate suppressed");
        assert_eq!(r.next_release(3).map(|(_, p)| p[0]), Some(2));
        assert_eq!(r.held_frames(), 0);
    }

    #[test]
    fn safra_cancel_restores_sum_and_blackens() {
        let mut a = Safra::new();
        let mut b = Safra::new();
        a.on_send();
        assert_eq!(a.counter + b.counter, 1, "one message in flight");
        // The message is lost; the sender gives up.
        a.on_cancel();
        assert_eq!(a.counter + b.counter, 0, "sum restored");
        assert!(a.color_black, "cancel taints the current probe round");
        // A probe round after the cancel: a is whitened by forwarding,
        // the round it tainted reports dirty, the next reports clean.
        a.start_probe();
        b.on_token(false, 0);
        let (black, q) = b.forward_token();
        a.on_token(black, q);
        assert!(a.probe_clean());
    }
}
