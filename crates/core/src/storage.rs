//! The storage layer: persisting serialized mobile objects.
//!
//! The underlying facility is hidden behind [`StorageBackend`]; the paper
//! mentions regular files, block devices and databases — here we provide
//! two real file-backed stores ([`FileStore`] with one file per object,
//! [`SegmentStore`] as a segmented append-only log; both used by the
//! threaded runtime) and an in-memory store ([`MemStore`], used by tests
//! and by the discrete-event mode, which charges time through a
//! [`DiskModel`] instead of performing physical I/O).

use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::time::Duration;

/// Report of one spill-log compaction, drained by the engine through
/// [`StorageBackend::take_compaction_reports`] so the audit layer can
/// check that no live object was lost.
#[derive(Clone, Copy, Debug)]
pub struct CompactionReport {
    pub live_objects_before: usize,
    pub live_objects_after: usize,
    pub live_bytes_before: u64,
    pub live_bytes_after: u64,
    /// Dead payload bytes reclaimed from the log.
    pub reclaimed_bytes: u64,
    /// Live records rewritten in locality-curve order (records whose key
    /// had a rank installed via [`StorageBackend::set_key_ranks`]); 0 on
    /// a placement-blind compaction.
    pub curve_ordered: usize,
}

/// Where serialized mobile objects go when they are unloaded.
pub trait StorageBackend: Send {
    fn store(&mut self, key: u64, data: &[u8]) -> io::Result<()>;
    /// Store several records as one batch. The default stores them one by
    /// one; log-structured backends override this to coalesce the whole
    /// batch into a single append with one sync decision. On error the
    /// caller must treat the entire batch as failed (a prefix may have
    /// landed; retrying or reinstating every record is safe because each
    /// key's next store overwrites it).
    fn store_batch(&mut self, items: &[(u64, &[u8])]) -> io::Result<()> {
        for (key, data) in items {
            self.store(*key, data)?;
        }
        Ok(())
    }
    fn load(&mut self, key: u64) -> io::Result<Vec<u8>>;
    fn remove(&mut self, key: u64) -> io::Result<()>;
    /// Total bytes currently stored (for reporting).
    fn bytes_stored(&self) -> u64;
    /// Number of stored objects.
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Health check: can the backend accept writes right now? Degraded
    /// mode re-probes through this until space returns.
    fn probe(&mut self) -> io::Result<()> {
        Ok(())
    }
    /// Drain the reports of compactions performed since the last call
    /// (log-structured stores only).
    fn take_compaction_reports(&mut self) -> Vec<CompactionReport> {
        Vec::new()
    }
    /// Drain the reports of injected faults since the last call
    /// ([`crate::fault::FaultyStore`] only).
    fn take_fault_reports(&mut self) -> Vec<crate::fault::FaultReport> {
        Vec::new()
    }
    /// Install the locality-curve rank per key: compaction rewrites live
    /// records in ascending rank so curve neighbors land contiguously.
    /// Replaces any earlier ranks. Default: ignored (backends without a
    /// rewrite step have no use for placement hints).
    fn set_key_ranks(&mut self, _ranks: &[(u64, u64)]) {}
    /// Drain the `(loads, segment_switches)` counters of the sequential-
    /// read tracker (log-structured stores only): how many `load` calls
    /// were served since the last call, and how many of them had to leave
    /// the segment the previous load read from.
    fn take_read_stats(&mut self) -> (u64, u64) {
        (0, 0)
    }
}

/// In-memory backend (tests; virtual-time mode).
#[derive(Default)]
pub struct MemStore {
    map: HashMap<u64, Vec<u8>>,
    bytes: u64,
}

impl MemStore {
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl StorageBackend for MemStore {
    fn store(&mut self, key: u64, data: &[u8]) -> io::Result<()> {
        if let Some(old) = self.map.insert(key, data.to_vec()) {
            self.bytes -= old.len() as u64;
        }
        self.bytes += data.len() as u64;
        Ok(())
    }

    fn load(&mut self, key: u64) -> io::Result<Vec<u8>> {
        self.map
            .get(&key)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no object {key}")))
    }

    fn remove(&mut self, key: u64) -> io::Result<()> {
        match self.map.remove(&key) {
            Some(old) => {
                self.bytes -= old.len() as u64;
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "remove: no key")),
        }
    }

    fn bytes_stored(&self) -> u64 {
        self.bytes
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// File-backed backend: one file per object under a spill directory.
/// Writes are buffered and flushed; the directory is created on demand and
/// cleaned up on drop.
pub struct FileStore {
    dir: PathBuf,
    sizes: HashMap<u64, u64>,
    /// Running total of stored bytes, kept in step with `sizes` so
    /// `bytes_stored` is O(1) instead of a sum over all objects.
    bytes: u64,
    cleanup_on_drop: bool,
}

impl FileStore {
    /// Open (creating) a spill directory.
    pub fn new(dir: PathBuf) -> io::Result<Self> {
        fs::create_dir_all(&dir)?;
        Ok(FileStore {
            dir,
            sizes: HashMap::new(),
            bytes: 0,
            cleanup_on_drop: true,
        })
    }

    /// A store in a fresh unique subdirectory of the system temp dir.
    pub fn new_temp(label: &str) -> io::Result<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mrts-spill-{label}-{}-{n}", std::process::id()));
        FileStore::new(dir)
    }

    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("obj-{key:016x}.bin"))
    }

    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }
}

impl StorageBackend for FileStore {
    fn store(&mut self, key: u64, data: &[u8]) -> io::Result<()> {
        let mut f = io::BufWriter::new(fs::File::create(self.path(key))?);
        f.write_all(data)?;
        f.flush()?;
        if let Some(old) = self.sizes.insert(key, data.len() as u64) {
            self.bytes -= old;
        }
        self.bytes += data.len() as u64;
        Ok(())
    }

    fn load(&mut self, key: u64) -> io::Result<Vec<u8>> {
        // Reject unknown keys eagerly: an absent size entry means the key
        // was never stored, and guessing a 4096-byte allocation would only
        // defer the miss to the (confusing) file-open error.
        let size = *self
            .sizes
            .get(&key)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no object {key}")))?;
        let mut f = io::BufReader::new(fs::File::open(self.path(key))?);
        let mut buf = Vec::with_capacity(size as usize);
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn remove(&mut self, key: u64) -> io::Result<()> {
        if let Some(old) = self.sizes.remove(&key) {
            self.bytes -= old;
        }
        fs::remove_file(self.path(key))
    }

    fn bytes_stored(&self) -> u64 {
        self.bytes
    }

    fn len(&self) -> usize {
        self.sizes.len()
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        if self.cleanup_on_drop {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

/// A record header is `[key: u64 LE][payload len: u32 LE]`; this length
/// value marks a tombstone (a remove, no payload follows).
const TOMBSTONE: u32 = u32::MAX;
const REC_HDR: usize = 12;

/// Where a live record sits: `seg == active_id` means the in-memory
/// buffer, anything else a sealed `seg-*.log` file. `off` points at the
/// payload, past the record header.
#[derive(Clone, Copy, Debug)]
struct RecordLoc {
    seg: u64,
    off: usize,
    len: usize,
}

/// Live vs total payload bytes ever appended to one segment.
#[derive(Clone, Copy, Debug, Default)]
struct SegmentMeta {
    live: u64,
    total: u64,
}

/// Segmented append-only spill log.
///
/// Spills append records to an in-memory **active segment** that hits the
/// disk as a single write when it reaches `segment_bytes` — write
/// coalescing that replaces `FileStore`'s per-object
/// `create`/`open`/`remove` syscalls. Overwrites and removes leave dead
/// bytes behind; per-segment live-byte tracking triggers a **compaction**
/// (rewrite every live record into a fresh log, drop all sealed segments)
/// once the dead fraction exceeds `garbage_frac`. Reopening a directory
/// replays segments in id order — last record per key wins, tombstones
/// delete, and a torn tail (partial record from an interrupted write) is
/// ignored, so a crashed run loses at most its unsealed active segment.
pub struct SegmentStore {
    dir: PathBuf,
    active: Vec<u8>,
    active_id: u64,
    index: HashMap<u64, RecordLoc>,
    segments: BTreeMap<u64, SegmentMeta>,
    /// Cached read handles for sealed segments.
    handles: HashMap<u64, fs::File>,
    live_bytes: u64,
    /// All payload bytes physically in the log, dead ones included.
    total_bytes: u64,
    segment_bytes: usize,
    garbage_frac: f64,
    cleanup_on_drop: bool,
    reports: Vec<CompactionReport>,
    /// Locality-curve rank per key (see [`StorageBackend::set_key_ranks`]);
    /// compaction rewrites live records in ascending rank. Unranked keys
    /// sort last, in key order.
    ranks: HashMap<u64, u64>,
    /// Sequential-read tracker: loads served / segment switches since the
    /// last [`StorageBackend::take_read_stats`], and the segment the last
    /// load read from.
    reads: u64,
    read_switches: u64,
    last_read_seg: Option<u64>,
}

impl SegmentStore {
    /// Open (creating) a log directory, replaying any segments already in
    /// it. The directory is left on disk when the store drops; chain
    /// [`SegmentStore::cleanup_on_drop`] for a temporary store.
    pub fn open(dir: PathBuf, segment_bytes: usize, garbage_frac: f64) -> io::Result<Self> {
        fs::create_dir_all(&dir)?;
        let mut s = SegmentStore {
            dir,
            active: Vec::new(),
            active_id: 0,
            index: HashMap::new(),
            segments: BTreeMap::new(),
            handles: HashMap::new(),
            live_bytes: 0,
            total_bytes: 0,
            segment_bytes: segment_bytes.max(1),
            garbage_frac: garbage_frac.clamp(f64::MIN_POSITIVE, 1.0),
            cleanup_on_drop: false,
            reports: Vec::new(),
            ranks: HashMap::new(),
            reads: 0,
            read_switches: 0,
            last_read_seg: None,
        };
        s.replay()?;
        Ok(s)
    }

    /// A temporary store in a fresh unique subdirectory of the system
    /// temp dir, removed on drop.
    pub fn new_temp(label: &str, segment_bytes: usize, garbage_frac: f64) -> io::Result<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mrts-seglog-{label}-{}-{n}", std::process::id()));
        Ok(SegmentStore::open(dir, segment_bytes, garbage_frac)?.cleanup_on_drop(true))
    }

    pub fn cleanup_on_drop(mut self, yes: bool) -> Self {
        self.cleanup_on_drop = yes;
        self
    }

    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    /// Number of sealed segment files currently on disk.
    pub fn sealed_segments(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| Self::segment_id_of(&e.file_name()).is_some())
                    .count()
            })
            .unwrap_or(0)
    }

    /// Dead payload bytes awaiting compaction.
    pub fn garbage_bytes(&self) -> u64 {
        self.total_bytes - self.live_bytes
    }

    /// The live keys currently in the log (unsorted). Checkpoint recovery
    /// uses this to enumerate the spilled objects a crashed run left
    /// behind.
    pub fn keys(&self) -> Vec<u64> {
        self.index.keys().copied().collect()
    }

    /// Seal the active segment to disk (one write syscall). Called on
    /// clean shutdown; an unsealed active segment is what a crash loses.
    pub fn sync(&mut self) -> io::Result<()> {
        self.roll()
    }

    fn segment_path(&self, seg: u64) -> PathBuf {
        self.dir.join(format!("seg-{seg:08}.log"))
    }

    fn segment_id_of(name: &std::ffi::OsStr) -> Option<u64> {
        let name = name.to_str()?;
        name.strip_prefix("seg-")?
            .strip_suffix(".log")?
            .parse()
            .ok()
    }

    /// Parse one record header at `off`: `(key, payload len)`. `None`
    /// when fewer than [`REC_HDR`] bytes remain (a torn tail).
    fn parse_header(data: &[u8], off: usize) -> Option<(u64, u32)> {
        let key = u64::from_le_bytes(data.get(off..off + 8)?.try_into().ok()?);
        let len = u32::from_le_bytes(data.get(off + 8..off + 12)?.try_into().ok()?);
        Some((key, len))
    }

    /// Replay the on-disk segments in id order: last record per key wins,
    /// tombstones delete, a torn tail ends that segment's replay.
    fn replay(&mut self) -> io::Result<()> {
        let mut ids: Vec<u64> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| Self::segment_id_of(&e.file_name()))
            .collect();
        ids.sort_unstable();
        for seg in &ids {
            let data = fs::read(self.segment_path(*seg))?;
            let mut off = 0;
            while off + REC_HDR <= data.len() {
                let Some((key, len)) = Self::parse_header(&data, off) else {
                    break; // torn header: ignore the tail
                };
                if len == TOMBSTONE {
                    self.retire(key);
                    self.index.remove(&key);
                    off += REC_HDR;
                    continue;
                }
                let len = len as usize;
                if off + REC_HDR + len > data.len() {
                    break; // torn record: ignore the tail
                }
                self.retire(key);
                self.index.insert(
                    key,
                    RecordLoc {
                        seg: *seg,
                        off: off + REC_HDR,
                        len,
                    },
                );
                let m = self.segments.entry(*seg).or_default();
                m.live += len as u64;
                m.total += len as u64;
                self.live_bytes += len as u64;
                self.total_bytes += len as u64;
                off += REC_HDR + len;
            }
        }
        self.active_id = ids.last().map_or(0, |last| last + 1);
        Ok(())
    }

    /// Mark any existing record for `key` dead.
    fn retire(&mut self, key: u64) {
        if let Some(loc) = self.index.get(&key) {
            if let Some(m) = self.segments.get_mut(&loc.seg) {
                m.live -= loc.len as u64;
            }
            self.live_bytes -= loc.len as u64;
        }
    }

    /// Append one live record to the active segment (no compaction
    /// trigger — `store` and `compact` both build on this).
    fn append(&mut self, key: u64, data: &[u8]) -> io::Result<()> {
        if data.len() as u64 >= TOMBSTONE as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "record exceeds segment format limit",
            ));
        }
        self.append_record(key, data);
        if self.active.len() >= self.segment_bytes {
            self.roll()?;
        }
        Ok(())
    }

    /// The in-memory part of [`SegmentStore::append`]: buffer the record
    /// and index it, deferring the roll decision to the caller (batched
    /// stores roll once per batch, not once per record).
    fn append_record(&mut self, key: u64, data: &[u8]) {
        let off = self.active.len() + REC_HDR;
        self.active.extend_from_slice(&key.to_le_bytes());
        self.active
            .extend_from_slice(&(data.len() as u32).to_le_bytes());
        self.active.extend_from_slice(data);
        self.index.insert(
            key,
            RecordLoc {
                seg: self.active_id,
                off,
                len: data.len(),
            },
        );
        let m = self.segments.entry(self.active_id).or_default();
        m.live += data.len() as u64;
        m.total += data.len() as u64;
        self.live_bytes += data.len() as u64;
        self.total_bytes += data.len() as u64;
    }

    /// Seal the active buffer as `seg-<id>.log` with a single write.
    fn roll(&mut self) -> io::Result<()> {
        if self.active.is_empty() {
            return Ok(());
        }
        let mut f = fs::File::create(self.segment_path(self.active_id))?;
        f.write_all(&self.active)?;
        f.flush()?;
        self.active.clear();
        self.active_id += 1;
        Ok(())
    }

    fn read_record(&mut self, loc: RecordLoc) -> io::Result<Vec<u8>> {
        if loc.seg == self.active_id {
            // Bounds-check instead of slicing: a corrupt index entry must
            // surface as an I/O error, not a panic in the spill path.
            return self
                .active
                .get(loc.off..loc.off + loc.len)
                .map(<[u8]>::to_vec)
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        "record location outside the active segment",
                    )
                });
        }
        let path = self.segment_path(loc.seg);
        let f = match self.handles.entry(loc.seg) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => e.insert(fs::File::open(path)?),
        };
        f.seek(SeekFrom::Start(loc.off as u64))?;
        let mut buf = vec![0u8; loc.len];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Rewrite every live record into a fresh log and drop all sealed
    /// segments: reclaims every dead byte, and leaves no stale record for
    /// a later replay to resurrect.
    fn compact(&mut self) -> io::Result<()> {
        let objects_before = self.index.len();
        let live_before = self.live_bytes;
        let reclaimed = self.total_bytes - self.live_bytes;
        let mut keys: Vec<u64> = self.index.keys().copied().collect();
        // Deterministic rewrite order: locality-curve rank first (so curve
        // neighbors land back-to-back in the fresh log), unranked keys
        // last in key order.
        keys.sort_unstable_by_key(|k| (self.ranks.get(k).copied().unwrap_or(u64::MAX), *k));
        let curve_ordered = keys.iter().filter(|k| self.ranks.contains_key(k)).count();
        let mut records = Vec::with_capacity(keys.len());
        for key in keys {
            let loc = self.index[&key];
            records.push((key, self.read_record(loc)?));
        }
        // Drop every sealed file, including tombstone-only segments that
        // never entered the payload accounting.
        if let Ok(rd) = fs::read_dir(&self.dir) {
            for seg in rd
                .filter_map(|e| e.ok())
                .filter_map(|e| Self::segment_id_of(&e.file_name()))
            {
                let _ = fs::remove_file(self.segment_path(seg));
            }
        }
        self.handles.clear();
        self.segments.clear();
        self.index.clear();
        self.active.clear();
        self.active_id += 1;
        self.live_bytes = 0;
        self.total_bytes = 0;
        for (key, data) in &records {
            self.append(*key, data)?;
        }
        debug_assert_eq!(self.index.len(), objects_before);
        debug_assert_eq!(self.live_bytes, live_before);
        self.reports.push(CompactionReport {
            live_objects_before: objects_before,
            live_objects_after: self.index.len(),
            live_bytes_before: live_before,
            live_bytes_after: self.live_bytes,
            reclaimed_bytes: reclaimed,
            curve_ordered,
        });
        Ok(())
    }

    fn maybe_compact(&mut self) -> io::Result<()> {
        let garbage = self.total_bytes - self.live_bytes;
        if garbage > 0 && garbage as f64 > self.garbage_frac * self.total_bytes as f64 {
            self.compact()?;
        }
        Ok(())
    }
}

impl StorageBackend for SegmentStore {
    fn store(&mut self, key: u64, data: &[u8]) -> io::Result<()> {
        self.retire(key);
        self.append(key, data)?;
        self.maybe_compact()
    }

    /// Batched eviction path: every record enters the active segment
    /// back-to-back with one roll decision and one compaction check at the
    /// end — a multi-victim eviction costs at most one write syscall. Each
    /// record keeps its own header, so per-object offsets land in the
    /// index exactly as with individual stores and replay is unchanged.
    fn store_batch(&mut self, items: &[(u64, &[u8])]) -> io::Result<()> {
        for (_, data) in items {
            if data.len() as u64 >= TOMBSTONE as u64 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "record exceeds segment format limit",
                ));
            }
        }
        for (key, data) in items {
            self.retire(*key);
            self.append_record(*key, data);
        }
        if self.active.len() >= self.segment_bytes {
            self.roll()?;
        }
        self.maybe_compact()
    }

    fn load(&mut self, key: u64) -> io::Result<Vec<u8>> {
        let loc = *self
            .index
            .get(&key)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no object {key}")))?;
        // Sequential-read tracking counts only externally demanded loads
        // (compaction goes through `read_record` directly and must not
        // pollute the locality metrics).
        self.reads += 1;
        if self.last_read_seg != Some(loc.seg) {
            if self.last_read_seg.is_some() {
                self.read_switches += 1;
            }
            self.last_read_seg = Some(loc.seg);
        }
        self.read_record(loc)
    }

    fn remove(&mut self, key: u64) -> io::Result<()> {
        if !self.index.contains_key(&key) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "remove: no key"));
        }
        self.retire(key);
        self.index.remove(&key);
        // A tombstone keeps a reopened directory from resurrecting any
        // earlier sealed record of this key.
        self.active.extend_from_slice(&key.to_le_bytes());
        self.active.extend_from_slice(&TOMBSTONE.to_le_bytes());
        if self.active.len() >= self.segment_bytes {
            self.roll()?;
        }
        self.maybe_compact()
    }

    fn bytes_stored(&self) -> u64 {
        self.live_bytes
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn take_compaction_reports(&mut self) -> Vec<CompactionReport> {
        std::mem::take(&mut self.reports)
    }

    fn set_key_ranks(&mut self, ranks: &[(u64, u64)]) {
        self.ranks = ranks.iter().copied().collect();
    }

    fn take_read_stats(&mut self) -> (u64, u64) {
        let out = (self.reads, self.read_switches);
        self.reads = 0;
        self.read_switches = 0;
        out
    }
}

impl Drop for SegmentStore {
    fn drop(&mut self) {
        if self.cleanup_on_drop {
            let _ = fs::remove_dir_all(&self.dir);
        } else {
            // Clean shutdown persists the active segment.
            let _ = self.roll();
        }
    }
}

/// Performance model of the disk, used by the virtual-time mode to charge
/// I/O durations (the data itself round-trips through a [`MemStore`]).
#[derive(Clone, Copy, Debug)]
pub struct DiskModel {
    /// Fixed per-operation cost (seek + syscall).
    pub seek: Duration,
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl DiskModel {
    /// A 2000s-era local disk: ~8 ms seek, ~60 MB/s sustained — in line
    /// with the SciClone/STEMS node-local disks of the paper's evaluation.
    pub fn cluster_disk() -> Self {
        DiskModel {
            seek: Duration::from_millis(8),
            bandwidth: 60e6,
        }
    }

    /// A faster disk for sensitivity studies.
    pub fn fast_ssd() -> Self {
        DiskModel {
            seek: Duration::from_micros(80),
            bandwidth: 500e6,
        }
    }

    /// Time to read or write `bytes`.
    pub fn op_time(&self, bytes: usize) -> Duration {
        self.seek + Duration::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend_contract(store: &mut dyn StorageBackend) {
        assert!(store.is_empty());
        store.store(1, b"hello").unwrap();
        store.store(2, &[7u8; 1000]).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.bytes_stored(), 1005);
        assert_eq!(store.load(1).unwrap(), b"hello");
        assert_eq!(store.load(2).unwrap(), vec![7u8; 1000]);
        // Overwrite.
        store.store(1, b"bye").unwrap();
        assert_eq!(store.load(1).unwrap(), b"bye");
        assert_eq!(store.len(), 2);
        // Remove.
        store.remove(1).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.load(1).is_err());
        assert!(store.remove(1).is_err());
        store.remove(2).unwrap();
        assert!(store.is_empty());
    }

    #[test]
    fn memstore_contract() {
        backend_contract(&mut MemStore::new());
    }

    #[test]
    fn filestore_contract() {
        let mut fs = FileStore::new_temp("contract").unwrap();
        backend_contract(&mut fs);
    }

    #[test]
    fn segmentstore_contract() {
        // Large segments: everything stays in the active buffer.
        let mut s = SegmentStore::new_temp("contract", 1 << 20, 0.95).unwrap();
        backend_contract(&mut s);
        // Tiny segments: every operation rolls a file.
        let mut s = SegmentStore::new_temp("contract-roll", 1, 0.95).unwrap();
        backend_contract(&mut s);
    }

    #[test]
    fn segmentstore_coalesces_writes() {
        let mut s = SegmentStore::new_temp("coalesce", 4096, 0.95).unwrap();
        for key in 0..64u64 {
            s.store(key, &[key as u8; 100]).unwrap();
        }
        // 64 stores of ~112 bytes coalesce into ~2 sealed segments, not 64
        // per-object files.
        let sealed = s.sealed_segments();
        assert!(
            (1..=3).contains(&sealed),
            "expected ~2 sealed segments, got {sealed}"
        );
        assert_eq!(s.len(), 64);
        for key in 0..64u64 {
            assert_eq!(s.load(key).unwrap(), vec![key as u8; 100]);
        }
    }

    #[test]
    fn store_batch_default_matches_individual_stores() {
        let mut s = MemStore::new();
        let items: Vec<(u64, &[u8])> = vec![(1, b"aa"), (2, b"bbbb"), (1, b"cc")];
        s.store_batch(&items).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.load(1).unwrap(), b"cc", "later batch entry wins");
        assert_eq!(s.load(2).unwrap(), b"bbbb");
    }

    #[test]
    fn segmentstore_batch_is_one_coalesced_append() {
        // Segment sized so eight 100-byte records fit exactly one segment:
        // stored individually they'd still coalesce, but the batch must
        // seal at most one file even though it crosses the threshold.
        let mut s = SegmentStore::new_temp("batch", 8 * 112, 0.95).unwrap();
        let payloads: Vec<Vec<u8>> = (0..8u64).map(|k| vec![k as u8; 100]).collect();
        let items: Vec<(u64, &[u8])> = payloads
            .iter()
            .enumerate()
            .map(|(k, p)| (k as u64, p.as_slice()))
            .collect();
        s.store_batch(&items).unwrap();
        assert_eq!(s.sealed_segments(), 1, "one roll per batch");
        assert_eq!(s.len(), 8);
        // Per-object offsets were recorded: every record reads back.
        for (k, p) in &items {
            assert_eq!(&s.load(*k).unwrap(), p);
        }
        // Batches interleave with overwrites and survive replay.
        let update: Vec<(u64, &[u8])> = vec![(3, b"updated"), (9, b"new")];
        s.store_batch(&update).unwrap();
        s.sync().unwrap();
        assert_eq!(s.load(3).unwrap(), b"updated");
        assert_eq!(s.load(9).unwrap(), b"new");
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn segmentstore_compaction_preserves_live_reclaims_garbage() {
        let mut s = SegmentStore::new_temp("compact", 512, 0.5).unwrap();
        // Churn: overwrite the same keys repeatedly so dead records pile
        // up and cross the 50% garbage threshold many times over.
        for round in 0..20u64 {
            for key in 0..8u64 {
                s.store(key, &[(round * 8 + key) as u8; 64]).unwrap();
            }
        }
        let reports = s.take_compaction_reports();
        assert!(!reports.is_empty(), "churn must have triggered compaction");
        for r in &reports {
            assert_eq!(r.live_objects_before, r.live_objects_after);
            assert_eq!(r.live_bytes_before, r.live_bytes_after);
            assert!(r.reclaimed_bytes > 0);
        }
        // Every live object survived with its latest contents.
        assert_eq!(s.len(), 8);
        assert_eq!(s.bytes_stored(), 8 * 64);
        for key in 0..8u64 {
            assert_eq!(s.load(key).unwrap(), vec![(19 * 8 + key) as u8; 64]);
        }
        // Garbage actually came back: the log holds little beyond live.
        assert!(s.garbage_bytes() <= s.bytes_stored());
    }

    #[test]
    fn segmentstore_compacts_in_rank_order() {
        // Segments hold four 64-byte records. Ranks interleave the keys
        // (evens before odds), so a rank-ordered rewrite separates them
        // into different segments even though key order interleaves.
        let mut s = SegmentStore::new_temp("rank", 4 * (64 + REC_HDR), 0.5).unwrap();
        let ranks: Vec<(u64, u64)> = (0..16u64).map(|k| (k, (k % 2) * 100 + k)).collect();
        s.set_key_ranks(&ranks);
        for key in 0..16u64 {
            s.store(key, &[key as u8; 64]).unwrap();
        }
        // One full overwrite round leaves garbage exactly at the 50%
        // threshold; the 17th overwrite crosses it, so the compaction is
        // the final log operation and the whole log is left curve-ordered.
        for key in 0..16u64 {
            s.store(key, &[(16 + key) as u8; 64]).unwrap();
        }
        s.store(0, &[99u8; 64]).unwrap();
        let reports = s.take_compaction_reports();
        assert!(!reports.is_empty(), "churn must have triggered compaction");
        let last = reports.last().unwrap();
        assert_eq!(
            last.curve_ordered, 16,
            "every live record carried a rank at compaction time"
        );
        s.take_read_stats();
        // Reading along the curve is sequential: one switch per segment
        // boundary. Reading in key order bounces between the even and odd
        // halves of the log on almost every load.
        for (key, _) in ranks.iter().copied() {
            let _ = s.load(key);
        }
        let (_, key_order_switches) = s.take_read_stats();
        let mut by_rank = ranks.clone();
        by_rank.sort_unstable_by_key(|&(_, r)| r);
        for (key, _) in by_rank {
            s.load(key).unwrap();
        }
        let (curve_reads, curve_switches) = s.take_read_stats();
        assert_eq!(curve_reads, 16);
        assert!(
            curve_switches < key_order_switches,
            "curve-order scan ({curve_switches} switches) must beat \
             key-order scan ({key_order_switches})"
        );
    }

    #[test]
    fn segmentstore_read_stats_drain_and_reset() {
        let mut s = SegmentStore::new_temp("readstats", 1 << 20, 0.95).unwrap();
        assert_eq!(s.take_read_stats(), (0, 0));
        s.store(1, b"aa").unwrap();
        s.store(2, b"bb").unwrap();
        s.load(1).unwrap();
        s.load(2).unwrap();
        let (reads, switches) = s.take_read_stats();
        assert_eq!(reads, 2);
        assert_eq!(switches, 0, "both records live in the active segment");
        assert_eq!(s.take_read_stats(), (0, 0), "drain resets");
    }

    #[test]
    fn segmentstore_reopen_replays_log() {
        let dir = std::env::temp_dir().join(format!("mrts-seglog-reopen-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut s = SegmentStore::open(dir.clone(), 256, 0.95).unwrap();
            for key in 0..10u64 {
                s.store(key, &[key as u8; 50]).unwrap();
            }
            s.store(3, b"updated").unwrap();
            s.remove(7).unwrap();
            // Drop seals the active segment (clean shutdown).
        }
        let mut s = SegmentStore::open(dir.clone(), 256, 0.95).unwrap();
        assert_eq!(s.len(), 9);
        assert_eq!(s.load(3).unwrap(), b"updated");
        assert!(s.load(7).is_err(), "tombstone must survive reopen");
        for key in (0..10u64).filter(|&k| k != 3 && k != 7) {
            assert_eq!(s.load(key).unwrap(), vec![key as u8; 50]);
        }
        drop(s);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segmentstore_reopen_tolerates_torn_tail() {
        let dir = std::env::temp_dir().join(format!("mrts-seglog-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut s = SegmentStore::open(dir.clone(), 128, 0.95).unwrap();
            for key in 0..6u64 {
                s.store(key, &[key as u8; 40]).unwrap();
            }
        }
        // Simulate a crash mid-append: the highest segment gets a valid
        // header claiming 100 payload bytes but only 5 on disk, plus a
        // few bytes of torn header after that.
        let last = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .max()
            .unwrap();
        let mut f = fs::OpenOptions::new().append(true).open(&last).unwrap();
        f.write_all(&99u64.to_le_bytes()).unwrap();
        f.write_all(&100u32.to_le_bytes()).unwrap();
        f.write_all(&[1, 2, 3, 4, 5]).unwrap();
        drop(f);
        let mut s = SegmentStore::open(dir.clone(), 128, 0.95).unwrap();
        assert_eq!(s.len(), 6, "full records before the tear must survive");
        for key in 0..6u64 {
            assert_eq!(s.load(key).unwrap(), vec![key as u8; 40]);
        }
        assert!(s.load(99).is_err(), "the torn record must not replay");
        drop(s);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segmentstore_cleans_up_directory() {
        let dir;
        {
            let mut s = SegmentStore::new_temp("cleanup", 64, 0.95).unwrap();
            s.store(1, &[0u8; 200]).unwrap();
            dir = s.dir().clone();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "spill dir must be removed on drop");
    }

    #[test]
    fn filestore_cleans_up_directory() {
        let dir;
        {
            let mut fs = FileStore::new_temp("cleanup").unwrap();
            fs.store(1, b"x").unwrap();
            dir = fs.dir().clone();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "spill dir must be removed on drop");
    }

    #[test]
    fn filestore_data_really_hits_disk() {
        let mut fs = FileStore::new_temp("ondisk").unwrap();
        let payload: Vec<u8> = (0..100_000u32).flat_map(|i| i.to_le_bytes()).collect();
        fs.store(42, &payload).unwrap();
        // The file exists with the right size.
        let path = fs.dir().join(format!("obj-{:016x}.bin", 42));
        assert_eq!(
            std::fs::metadata(&path).unwrap().len() as usize,
            payload.len()
        );
        assert_eq!(fs.load(42).unwrap(), payload);
    }

    #[test]
    fn disk_model_charges_seek_plus_transfer() {
        let d = DiskModel {
            seek: Duration::from_millis(10),
            bandwidth: 1e6,
        };
        let t = d.op_time(500_000);
        assert!((t.as_secs_f64() - 0.51).abs() < 1e-9);
        // Zero bytes still pays the seek.
        assert_eq!(d.op_time(0), Duration::from_millis(10));
        assert!(
            DiskModel::fast_ssd().op_time(1 << 20) < DiskModel::cluster_disk().op_time(1 << 20)
        );
    }
}
