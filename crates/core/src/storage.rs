//! The storage layer: persisting serialized mobile objects.
//!
//! The underlying facility is hidden behind [`StorageBackend`]; the paper
//! mentions regular files, block devices and databases — here we provide a
//! real file-backed store ([`FileStore`], used by the threaded runtime) and
//! an in-memory store ([`MemStore`], used by tests and by the
//! discrete-event mode, which charges time through a [`DiskModel`]
//! instead of performing physical I/O).

use std::collections::HashMap;
use std::fs;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::time::Duration;

/// Where serialized mobile objects go when they are unloaded.
pub trait StorageBackend: Send {
    fn store(&mut self, key: u64, data: &[u8]) -> io::Result<()>;
    fn load(&mut self, key: u64) -> io::Result<Vec<u8>>;
    fn remove(&mut self, key: u64) -> io::Result<()>;
    /// Total bytes currently stored (for reporting).
    fn bytes_stored(&self) -> u64;
    /// Number of stored objects.
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// In-memory backend (tests; virtual-time mode).
#[derive(Default)]
pub struct MemStore {
    map: HashMap<u64, Vec<u8>>,
    bytes: u64,
}

impl MemStore {
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl StorageBackend for MemStore {
    fn store(&mut self, key: u64, data: &[u8]) -> io::Result<()> {
        if let Some(old) = self.map.insert(key, data.to_vec()) {
            self.bytes -= old.len() as u64;
        }
        self.bytes += data.len() as u64;
        Ok(())
    }

    fn load(&mut self, key: u64) -> io::Result<Vec<u8>> {
        self.map
            .get(&key)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no object {key}")))
    }

    fn remove(&mut self, key: u64) -> io::Result<()> {
        match self.map.remove(&key) {
            Some(old) => {
                self.bytes -= old.len() as u64;
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "remove: no key")),
        }
    }

    fn bytes_stored(&self) -> u64 {
        self.bytes
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// File-backed backend: one file per object under a spill directory.
/// Writes are buffered and flushed; the directory is created on demand and
/// cleaned up on drop.
pub struct FileStore {
    dir: PathBuf,
    sizes: HashMap<u64, u64>,
    cleanup_on_drop: bool,
}

impl FileStore {
    /// Open (creating) a spill directory.
    pub fn new(dir: PathBuf) -> io::Result<Self> {
        fs::create_dir_all(&dir)?;
        Ok(FileStore {
            dir,
            sizes: HashMap::new(),
            cleanup_on_drop: true,
        })
    }

    /// A store in a fresh unique subdirectory of the system temp dir.
    pub fn new_temp(label: &str) -> io::Result<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mrts-spill-{label}-{}-{n}", std::process::id()));
        FileStore::new(dir)
    }

    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("obj-{key:016x}.bin"))
    }

    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }
}

impl StorageBackend for FileStore {
    fn store(&mut self, key: u64, data: &[u8]) -> io::Result<()> {
        let mut f = io::BufWriter::new(fs::File::create(self.path(key))?);
        f.write_all(data)?;
        f.flush()?;
        self.sizes.insert(key, data.len() as u64);
        Ok(())
    }

    fn load(&mut self, key: u64) -> io::Result<Vec<u8>> {
        let mut f = io::BufReader::new(fs::File::open(self.path(key))?);
        let mut buf = Vec::with_capacity(self.sizes.get(&key).copied().unwrap_or(4096) as usize);
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn remove(&mut self, key: u64) -> io::Result<()> {
        self.sizes.remove(&key);
        fs::remove_file(self.path(key))
    }

    fn bytes_stored(&self) -> u64 {
        self.sizes.values().sum()
    }

    fn len(&self) -> usize {
        self.sizes.len()
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        if self.cleanup_on_drop {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

/// Performance model of the disk, used by the virtual-time mode to charge
/// I/O durations (the data itself round-trips through a [`MemStore`]).
#[derive(Clone, Copy, Debug)]
pub struct DiskModel {
    /// Fixed per-operation cost (seek + syscall).
    pub seek: Duration,
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl DiskModel {
    /// A 2000s-era local disk: ~8 ms seek, ~60 MB/s sustained — in line
    /// with the SciClone/STEMS node-local disks of the paper's evaluation.
    pub fn cluster_disk() -> Self {
        DiskModel {
            seek: Duration::from_millis(8),
            bandwidth: 60e6,
        }
    }

    /// A faster disk for sensitivity studies.
    pub fn fast_ssd() -> Self {
        DiskModel {
            seek: Duration::from_micros(80),
            bandwidth: 500e6,
        }
    }

    /// Time to read or write `bytes`.
    pub fn op_time(&self, bytes: usize) -> Duration {
        self.seek + Duration::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend_contract(store: &mut dyn StorageBackend) {
        assert!(store.is_empty());
        store.store(1, b"hello").unwrap();
        store.store(2, &[7u8; 1000]).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.bytes_stored(), 1005);
        assert_eq!(store.load(1).unwrap(), b"hello");
        assert_eq!(store.load(2).unwrap(), vec![7u8; 1000]);
        // Overwrite.
        store.store(1, b"bye").unwrap();
        assert_eq!(store.load(1).unwrap(), b"bye");
        assert_eq!(store.len(), 2);
        // Remove.
        store.remove(1).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.load(1).is_err());
        assert!(store.remove(1).is_err());
        store.remove(2).unwrap();
        assert!(store.is_empty());
    }

    #[test]
    fn memstore_contract() {
        backend_contract(&mut MemStore::new());
    }

    #[test]
    fn filestore_contract() {
        let mut fs = FileStore::new_temp("contract").unwrap();
        backend_contract(&mut fs);
    }

    #[test]
    fn filestore_cleans_up_directory() {
        let dir;
        {
            let mut fs = FileStore::new_temp("cleanup").unwrap();
            fs.store(1, b"x").unwrap();
            dir = fs.dir().clone();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "spill dir must be removed on drop");
    }

    #[test]
    fn filestore_data_really_hits_disk() {
        let mut fs = FileStore::new_temp("ondisk").unwrap();
        let payload: Vec<u8> = (0..100_000u32).flat_map(|i| i.to_le_bytes()).collect();
        fs.store(42, &payload).unwrap();
        // The file exists with the right size.
        let path = fs.dir().join(format!("obj-{:016x}.bin", 42));
        assert_eq!(
            std::fs::metadata(&path).unwrap().len() as usize,
            payload.len()
        );
        assert_eq!(fs.load(42).unwrap(), payload);
    }

    #[test]
    fn disk_model_charges_seek_plus_transfer() {
        let d = DiskModel {
            seek: Duration::from_millis(10),
            bandwidth: 1e6,
        };
        let t = d.op_time(500_000);
        assert!((t.as_secs_f64() - 0.51).abs() < 1e-9);
        // Zero bytes still pays the seek.
        assert_eq!(d.op_time(0), Duration::from_millis(10));
        assert!(
            DiskModel::fast_ssd().op_time(1 << 20) < DiskModel::cluster_disk().op_time(1 << 20)
        );
    }
}
