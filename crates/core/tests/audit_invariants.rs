//! The audit subsystem, exercised from both directions:
//!
//! * **negative tests** feed hand-built event streams that violate each
//!   paper invariant and assert the checker flags exactly that class;
//! * **race-detector tests** drive the vector-clock engine with and
//!   without happens-before edges;
//! * **end-to-end tests** attach a fail-fast checker to real DES and
//!   threaded runs (in-core, out-of-core, migration, multicast) and
//!   assert the engines' own event streams are violation-free, including
//!   under seeded schedule permutation.
#![cfg(any(feature = "audit", debug_assertions))]

use mrts::audit::{EventLog, FailMode, Invariant, InvariantChecker, RaceDetector, RuntimeEvent};
use mrts::codec::{PayloadReader, PayloadWriter};
use mrts::prelude::*;
use std::any::Any;
use std::sync::Arc;

fn oid(seq: u64) -> ObjectId {
    ObjectId::new(0, seq)
}

fn checker() -> InvariantChecker {
    InvariantChecker::new(FailMode::Collect)
}

fn kinds(c: &InvariantChecker) -> Vec<Invariant> {
    c.violations().iter().map(|v| v.invariant).collect()
}

// ----- negative tests: every invariant must be falsifiable -----------------

#[test]
fn flags_eviction_of_pinned_object() {
    let c = checker();
    c.record(&RuntimeEvent::Create {
        node: 0,
        oid: oid(1),
        footprint: 100,
    });
    c.record(&RuntimeEvent::Pin {
        node: 0,
        oid: oid(1),
    });
    c.record(&RuntimeEvent::Unload {
        node: 0,
        oid: oid(1),
        footprint: 100,
    });
    assert!(
        kinds(&c).contains(&Invariant::PinnedEviction),
        "{:?}",
        c.violations()
    );
}

#[test]
fn flags_delivery_to_spilled_object() {
    let c = checker();
    c.record(&RuntimeEvent::Create {
        node: 0,
        oid: oid(1),
        footprint: 100,
    });
    c.record(&RuntimeEvent::Unload {
        node: 0,
        oid: oid(1),
        footprint: 100,
    });
    c.record(&RuntimeEvent::Post {
        node: 0,
        oid: oid(1),
    });
    c.record(&RuntimeEvent::Deliver {
        node: 0,
        oid: oid(1),
    });
    assert!(
        kinds(&c).contains(&Invariant::NonResidentDelivery),
        "{:?}",
        c.violations()
    );
}

#[test]
fn flags_delivery_on_wrong_node() {
    let c = checker();
    c.record(&RuntimeEvent::Create {
        node: 0,
        oid: oid(1),
        footprint: 100,
    });
    c.record(&RuntimeEvent::Post {
        node: 0,
        oid: oid(1),
    });
    c.record(&RuntimeEvent::Deliver {
        node: 1,
        oid: oid(1),
    });
    assert!(
        kinds(&c).contains(&Invariant::NonResidentDelivery),
        "{:?}",
        c.violations()
    );
}

#[test]
fn flags_queue_dropped_in_migration() {
    let c = checker();
    c.record(&RuntimeEvent::Create {
        node: 0,
        oid: oid(1),
        footprint: 100,
    });
    c.record(&RuntimeEvent::MigrateOut {
        node: 0,
        oid: oid(1),
        to: 1,
        queued: 3,
        footprint: 100,
    });
    c.record(&RuntimeEvent::MigrateIn {
        node: 1,
        oid: oid(1),
        queued: 1,
        footprint: 100,
    });
    assert!(
        kinds(&c).contains(&Invariant::QueueLostInMigration),
        "{:?}",
        c.violations()
    );
}

#[test]
fn flags_install_on_wrong_destination() {
    let c = checker();
    c.record(&RuntimeEvent::Create {
        node: 0,
        oid: oid(1),
        footprint: 100,
    });
    c.record(&RuntimeEvent::MigrateOut {
        node: 0,
        oid: oid(1),
        to: 1,
        queued: 0,
        footprint: 100,
    });
    c.record(&RuntimeEvent::MigrateIn {
        node: 2,
        oid: oid(1),
        queued: 0,
        footprint: 100,
    });
    assert!(
        kinds(&c).contains(&Invariant::EventOrder),
        "{:?}",
        c.violations()
    );
}

#[test]
fn flags_budget_overrun_beyond_permitted_slack() {
    let c = checker();
    // Two 100-byte objects against a 50-byte budget: even the admission
    // slack (largest single object) cannot excuse 200 bytes in core.
    c.record(&RuntimeEvent::Create {
        node: 0,
        oid: oid(1),
        footprint: 100,
    });
    c.record(&RuntimeEvent::Create {
        node: 0,
        oid: oid(2),
        footprint: 100,
    });
    c.record(&RuntimeEvent::Budget {
        node: 0,
        used: 200,
        budget: 50,
        hard_reserve: 0,
        enforced: true,
    });
    assert!(
        kinds(&c).contains(&Invariant::BudgetExceeded),
        "{:?}",
        c.violations()
    );
}

#[test]
fn flags_self_forward() {
    let c = checker();
    c.record(&RuntimeEvent::Create {
        node: 0,
        oid: oid(1),
        footprint: 100,
    });
    c.record(&RuntimeEvent::Forward {
        node: 0,
        oid: oid(1),
        to: 0,
    });
    assert!(
        kinds(&c).contains(&Invariant::ForwardingCycle),
        "{:?}",
        c.violations()
    );
}

#[test]
fn flags_routing_livelock_via_forward_streak() {
    // A ↔ B ping-pong without any delivery or install: after the streak
    // limit the checker calls it a livelock.
    let c = InvariantChecker::with_forward_limit(FailMode::Collect, 4);
    c.record(&RuntimeEvent::Create {
        node: 0,
        oid: oid(1),
        footprint: 100,
    });
    for _ in 0..2 {
        c.record(&RuntimeEvent::Forward {
            node: 2,
            oid: oid(1),
            to: 3,
        });
        c.record(&RuntimeEvent::Forward {
            node: 3,
            oid: oid(1),
            to: 2,
        });
    }
    assert!(
        kinds(&c).contains(&Invariant::ForwardingCycle),
        "{:?}",
        c.violations()
    );
}

#[test]
fn forward_streak_resets_on_delivery() {
    let c = InvariantChecker::with_forward_limit(FailMode::Collect, 4);
    c.record(&RuntimeEvent::Create {
        node: 0,
        oid: oid(1),
        footprint: 100,
    });
    for _ in 0..8 {
        // Each forward is answered by a delivery: never a livelock.
        c.record(&RuntimeEvent::Post {
            node: 0,
            oid: oid(1),
        });
        c.record(&RuntimeEvent::Forward {
            node: 1,
            oid: oid(1),
            to: 0,
        });
        c.record(&RuntimeEvent::Deliver {
            node: 0,
            oid: oid(1),
        });
    }
    c.assert_clean();
}

#[test]
fn flags_multicast_with_nonresident_target() {
    let c = checker();
    c.record(&RuntimeEvent::Create {
        node: 0,
        oid: oid(1),
        footprint: 100,
    });
    c.record(&RuntimeEvent::Create {
        node: 0,
        oid: oid(2),
        footprint: 100,
    });
    c.record(&RuntimeEvent::Unload {
        node: 0,
        oid: oid(2),
        footprint: 100,
    });
    c.record(&RuntimeEvent::McDeliver {
        node: 0,
        targets: vec![oid(1), oid(2)],
    });
    assert!(
        kinds(&c).contains(&Invariant::MulticastNonResident),
        "{:?}",
        c.violations()
    );
}

#[test]
fn flags_termination_with_undelivered_messages() {
    let c = checker();
    c.record(&RuntimeEvent::Create {
        node: 0,
        oid: oid(1),
        footprint: 100,
    });
    c.record(&RuntimeEvent::Post {
        node: 0,
        oid: oid(1),
    });
    c.record(&RuntimeEvent::Terminate { node: 0 });
    assert!(
        kinds(&c).contains(&Invariant::EarlyTermination),
        "{:?}",
        c.violations()
    );
}

#[test]
fn flags_termination_with_migration_in_flight() {
    let c = checker();
    c.record(&RuntimeEvent::Create {
        node: 0,
        oid: oid(1),
        footprint: 100,
    });
    c.record(&RuntimeEvent::MigrateOut {
        node: 0,
        oid: oid(1),
        to: 1,
        queued: 0,
        footprint: 100,
    });
    c.record(&RuntimeEvent::Terminate { node: 0 });
    assert!(
        kinds(&c).contains(&Invariant::EarlyTermination),
        "{:?}",
        c.violations()
    );
}

#[test]
fn flags_shutdown_accounting_imbalance() {
    let c = checker();
    c.record(&RuntimeEvent::Create {
        node: 0,
        oid: oid(1),
        footprint: 100,
    });
    c.record(&RuntimeEvent::Shutdown { node: 0, used: 50 });
    assert!(
        kinds(&c).contains(&Invariant::AccountingImbalance),
        "{:?}",
        c.violations()
    );
}

#[test]
fn flags_resize_from_stale_footprint() {
    let c = checker();
    c.record(&RuntimeEvent::Create {
        node: 0,
        oid: oid(1),
        footprint: 100,
    });
    c.record(&RuntimeEvent::Resize {
        node: 0,
        oid: oid(1),
        old: 90,
        new: 200,
    });
    assert!(
        kinds(&c).contains(&Invariant::AccountingImbalance),
        "{:?}",
        c.violations()
    );
}

#[test]
fn flags_double_load() {
    let c = checker();
    c.record(&RuntimeEvent::Create {
        node: 0,
        oid: oid(1),
        footprint: 100,
    });
    c.record(&RuntimeEvent::Load {
        node: 0,
        oid: oid(1),
        footprint: 100,
    });
    assert!(
        kinds(&c).contains(&Invariant::EventOrder),
        "{:?}",
        c.violations()
    );
}

// ----- race detector ---------------------------------------------------------

#[test]
fn race_detector_flags_unsynchronized_write_write() {
    let d = RaceDetector::new(2);
    // Two threads write the same object with no message between them:
    // neither access happens-before the other.
    d.on_access(0, oid(7), true);
    d.on_access(1, oid(7), true);
    let races = d.races();
    assert_eq!(races.len(), 1, "{races:?}");
    assert_eq!(races[0].oid, oid(7));
}

#[test]
fn race_detector_flags_read_write_race() {
    let d = RaceDetector::new(2);
    d.on_access(0, oid(7), false);
    d.on_access(1, oid(7), true);
    assert_eq!(d.races().len(), 1, "{:?}", d.races());
}

#[test]
fn message_edge_orders_conflicting_accesses() {
    let d = RaceDetector::new(2);
    // Thread 0 writes, then sends a message; thread 1 receives it and
    // writes. The channel edge gives the second write a clean view.
    d.on_access(0, oid(7), true);
    d.on_send(0, 1);
    d.on_recv(1, 0);
    d.on_access(1, oid(7), true);
    d.assert_race_free();
}

#[test]
fn concurrent_reads_are_not_a_race() {
    let d = RaceDetector::new(3);
    d.on_access(0, oid(7), false);
    d.on_access(1, oid(7), false);
    d.on_access(2, oid(7), false);
    d.assert_race_free();
}

#[test]
fn transitive_channel_edges_compose() {
    let d = RaceDetector::new(3);
    d.on_access(0, oid(7), true);
    d.on_send(0, 1);
    d.on_recv(1, 0);
    d.on_send(1, 2);
    d.on_recv(2, 1);
    d.on_access(2, oid(7), true);
    d.assert_race_free();
}

// ----- a tiny application shared by the end-to-end tests ---------------------

const CELL_TAG: TypeTag = TypeTag(1);
const H_BUMP: HandlerId = HandlerId(1);
const H_RING: HandlerId = HandlerId(2);
const H_MOVE: HandlerId = HandlerId(3);
const H_MC: HandlerId = HandlerId(4);

struct Cell {
    value: u64,
    neighbors: Vec<MobilePtr>,
    pad: Vec<u8>,
}

impl Cell {
    fn new(pad: usize) -> Box<Cell> {
        Box::new(Cell {
            value: 0,
            neighbors: Vec::new(),
            pad: vec![0x5A; pad],
        })
    }

    fn decode(buf: &[u8]) -> Result<Box<dyn MobileObject>, ObjectDecodeError> {
        let mut r = PayloadReader::new(buf);
        let value = r.u64().unwrap();
        let neighbors = r.ptrs().unwrap();
        let pad = r.bytes().unwrap().to_vec();
        Ok(Box::new(Cell {
            value,
            neighbors,
            pad,
        }))
    }
}

impl MobileObject for Cell {
    fn type_tag(&self) -> TypeTag {
        CELL_TAG
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        let mut w = PayloadWriter::new();
        w.u64(self.value).ptrs(&self.neighbors).bytes(&self.pad);
        buf.extend_from_slice(&w.finish());
    }

    fn footprint(&self) -> usize {
        8 + 8 * self.neighbors.len() + self.pad.len() + 48
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn cell_mut(obj: &mut dyn MobileObject) -> &mut Cell {
    obj.as_any_mut().downcast_mut::<Cell>().unwrap()
}

fn h_bump(obj: &mut dyn MobileObject, _ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    cell_mut(obj).value += r.u64().unwrap();
}

fn h_ring(obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    let hops = r.u64().unwrap();
    let cell = cell_mut(obj);
    cell.value += 1;
    if hops > 0 {
        let next = cell.neighbors[0];
        let mut w = PayloadWriter::new();
        w.u64(hops - 1);
        ctx.send(next, H_RING, w.finish());
    }
}

fn h_move(_obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    let dest = r.u64().unwrap() as NodeId;
    ctx.migrate(ctx.self_ptr(), dest);
}

fn h_mc(obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let targets = cell_mut(obj).neighbors.clone();
    let mut r = PayloadReader::new(payload);
    let bump = r.u64().unwrap();
    let deliver_to = targets.len() as u32;
    let mut w = PayloadWriter::new();
    w.u64(bump);
    ctx.multicast(targets, deliver_to, H_BUMP, w.finish());
}

fn register_des(rt: &mut DesRuntime) {
    rt.register_type(CELL_TAG, Cell::decode);
    rt.register_handler(H_BUMP, "bump", h_bump);
    rt.register_handler(H_RING, "ring", h_ring);
    rt.register_handler(H_MOVE, "move", h_move);
    rt.register_handler(H_MC, "mc", h_mc);
}

fn register_threaded(rt: &mut ThreadedRuntime) {
    rt.register_type(CELL_TAG, Cell::decode);
    rt.register_handler(H_BUMP, "bump", h_bump);
    rt.register_handler(H_RING, "ring", h_ring);
    rt.register_handler(H_MOVE, "move", h_move);
    rt.register_handler(H_MC, "mc", h_mc);
}

fn u64_payload(v: u64) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(v);
    w.finish()
}

/// Wire `nodes` cells into a ring and kick off `hops` traversals. The
/// ring pointers are baked in at creation (each node's first object has a
/// deterministic id), so the wiring is schedule-independent.
fn des_ring(
    cfg: MrtsConfig,
    hops: u64,
    sink: Arc<dyn mrts::audit::EventSink>,
) -> (DesRuntime, Vec<MobilePtr>) {
    let nodes = cfg.nodes;
    let mut rt = DesRuntime::new(cfg);
    register_des(&mut rt);
    // Attach before the first create so the checker sees every event.
    rt.attach_audit(sink);
    let cells: Vec<MobilePtr> = (0..nodes)
        .map(|n| MobilePtr::new(ObjectId::new(n as NodeId, 0)))
        .collect();
    for (i, &p) in cells.iter().enumerate() {
        let mut c = Cell::new(256);
        c.neighbors.push(cells[(i + 1) % cells.len()]);
        let created = rt.create_object(i as NodeId, c, 128);
        assert_eq!(created.id, p.id);
        rt.post(p, H_RING, u64_payload(hops));
    }
    (rt, cells)
}

// ----- end-to-end: the engines' own event streams are clean ------------------

#[test]
fn des_in_core_run_satisfies_all_invariants() {
    let chk = Arc::new(InvariantChecker::new(FailMode::Panic));
    let (mut rt, _) = des_ring(MrtsConfig::in_core(4), 12, chk.clone());
    rt.run();
    assert!(chk.events_seen() > 0, "instrumentation emitted nothing");
    chk.assert_clean();
}

#[test]
fn des_out_of_core_run_satisfies_all_invariants() {
    // A budget tight enough that the soft threshold spills each idle cell
    // (footprint 320 against a 400-byte budget), forcing reload churn on
    // every ring hop.
    let mut cfg = MrtsConfig::out_of_core(2, 400);
    cfg.soft_threshold_frac = 0.25;
    let chk = Arc::new(InvariantChecker::new(FailMode::Panic));
    let (mut rt, cells) = des_ring(cfg, 10, chk.clone());
    let stats = rt.run();
    assert!(stats.total_of(|n| n.stores) > 0, "budget never pressured");
    chk.assert_clean();
    // The ring really ran: every cell was visited.
    for p in cells {
        rt.with_object(p, |o| {
            assert!(o.as_any().downcast_ref::<Cell>().unwrap().value > 0);
        });
    }
}

#[test]
fn des_migration_run_satisfies_all_invariants() {
    let chk = Arc::new(InvariantChecker::new(FailMode::Panic));
    let mut rt = DesRuntime::new(MrtsConfig::in_core(3));
    register_des(&mut rt);
    rt.attach_audit(chk.clone());
    let p = rt.create_object(0, Cell::new(64), 128);
    rt.post(p, H_MOVE, u64_payload(2));
    // Posted before the migration resolves: must chase the object.
    rt.post(p, H_BUMP, u64_payload(5));
    rt.run();
    rt.with_object(p, |o| {
        assert_eq!(o.as_any().downcast_ref::<Cell>().unwrap().value, 5);
    });
    chk.assert_clean();
}

#[test]
fn des_multicast_run_satisfies_all_invariants() {
    let chk = Arc::new(InvariantChecker::new(FailMode::Panic));
    let mut rt = DesRuntime::new(MrtsConfig::in_core(3));
    register_des(&mut rt);
    rt.attach_audit(chk.clone());
    let a = rt.create_object(1, Cell::new(16), 128);
    let b = rt.create_object(2, Cell::new(16), 128);
    let mut root_cell = Cell::new(16);
    root_cell.neighbors.extend([a, b]);
    let root = rt.create_object(0, root_cell, 128);
    rt.post(root, H_MC, u64_payload(10));
    rt.run();
    for p in [a, b] {
        rt.with_object(p, |o| {
            assert_eq!(o.as_any().downcast_ref::<Cell>().unwrap().value, 10);
        });
    }
    chk.assert_clean();
}

#[test]
fn schedule_permutation_preserves_results_and_invariants() {
    let mut reference: Option<Vec<u64>> = None;
    for seed in [None, Some(1u64), Some(42), Some(0xDEAD_BEEF)] {
        let chk = Arc::new(InvariantChecker::new(FailMode::Panic));
        let mut cfg = MrtsConfig::out_of_core(3, 400);
        cfg.soft_threshold_frac = 0.25;
        let (mut rt, cells) = des_ring(cfg, 9, chk.clone());
        rt.set_schedule_seed(seed);
        rt.run();
        chk.assert_clean();
        let values: Vec<u64> = cells
            .iter()
            .map(|&p| rt.with_object(p, |o| o.as_any().downcast_ref::<Cell>().unwrap().value))
            .collect();
        match &reference {
            None => reference = Some(values),
            Some(want) => assert_eq!(
                want, &values,
                "seed {seed:?} changed the application's results"
            ),
        }
    }
}

#[test]
fn event_log_captures_lifecycle_of_a_run() {
    let log = Arc::new(EventLog::new());
    let (mut rt, _) = des_ring(MrtsConfig::in_core(2), 4, log.clone());
    rt.run();
    let events = log.snapshot();
    let has = |f: &dyn Fn(&RuntimeEvent) -> bool| events.iter().any(f);
    assert!(has(&|e| matches!(e, RuntimeEvent::Create { .. })));
    assert!(has(&|e| matches!(e, RuntimeEvent::Post { .. })));
    assert!(has(&|e| matches!(e, RuntimeEvent::Deliver { .. })));
    assert!(has(&|e| matches!(e, RuntimeEvent::Terminate { .. })));
    assert!(has(&|e| matches!(e, RuntimeEvent::Shutdown { .. })));
}

#[test]
fn threaded_run_is_clean_and_race_free() {
    let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
    let det = Arc::new(RaceDetector::new(3));
    let mut rt = ThreadedRuntime::new(MrtsConfig::in_core(3));
    register_threaded(&mut rt);
    rt.attach_audit(chk.clone());
    rt.attach_race_detector(det.clone());
    let cells: Vec<MobilePtr> = (0..3)
        .map(|n| rt.create_object(n as NodeId, Cell::new(128), 128))
        .collect();
    // Ring wiring must happen through messages in the threaded engine
    // (no with_object_mut before run), so seed neighbors via a handler.
    fn h_wire(obj: &mut dyn MobileObject, _ctx: &mut Ctx, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        let ptrs = r.ptrs().unwrap();
        cell_mut(obj).neighbors = ptrs;
    }
    rt.register_handler(HandlerId(9), "wire", h_wire);
    for (i, &p) in cells.iter().enumerate() {
        let next = cells[(i + 1) % cells.len()];
        let mut w = PayloadWriter::new();
        w.ptrs(&[next]);
        rt.post(p, HandlerId(9), w.finish());
        rt.post(p, H_BUMP, u64_payload(3));
    }
    rt.run();
    assert!(chk.events_seen() > 0, "instrumentation emitted nothing");
    assert!(chk.violations().is_empty(), "{:?}", chk.violations());
    det.assert_race_free();
    for p in cells {
        rt.with_object(p, |o| {
            assert_eq!(o.as_any().downcast_ref::<Cell>().unwrap().value, 3);
        });
    }
}

#[test]
fn threaded_migration_run_is_clean_and_race_free() {
    let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
    let det = Arc::new(RaceDetector::new(2));
    let mut rt = ThreadedRuntime::new(MrtsConfig::in_core(2));
    register_threaded(&mut rt);
    rt.attach_audit(chk.clone());
    rt.attach_race_detector(det.clone());
    let p = rt.create_object(0, Cell::new(64), 128);
    rt.post(p, H_MOVE, u64_payload(1));
    rt.post(p, H_BUMP, u64_payload(7));
    rt.run();
    assert!(chk.violations().is_empty(), "{:?}", chk.violations());
    det.assert_race_free();
    rt.with_object(p, |o| {
        assert_eq!(o.as_any().downcast_ref::<Cell>().unwrap().value, 7);
    });
}
