//! Property tests for the eviction path of the out-of-core layer:
//! [`OocManager::pick_victims`] must free enough memory whenever the
//! candidate set suffices, must respect the queued-message / priority
//! ordering contract, and must honour each swapping scheme's score — for
//! arbitrary candidate sets, including adversarial access metadata.

use mrts::ids::ObjectId;
use mrts::ooc::{EvictCandidate, OocManager};
use mrts::policy::{AccessMeta, PolicyKind};
use proptest::prelude::*;

const CLOCK: u64 = 1_000;

fn cand(
    seq: u64,
    footprint: usize,
    last: u64,
    count: u64,
    prio: u8,
    queued: usize,
) -> EvictCandidate {
    EvictCandidate {
        oid: ObjectId::new(0, seq),
        footprint,
        meta: AccessMeta {
            last_access: last,
            access_count: count.max(1),
            birth: last.saturating_sub(count),
        },
        priority: prio,
        queued_msgs: queued,
        clean: false,
        cluster: None,
        lkey: 0,
    }
}

fn manager(policy: PolicyKind) -> OocManager {
    let mut m = OocManager::new(1 << 20, 2.0, 0.5, policy);
    for _ in 0..CLOCK {
        m.tick();
    }
    m
}

/// A generated candidate set: distinct oids, bounded footprints, metadata
/// anywhere in the clock's past.
fn candidates_strategy() -> impl Strategy<Value = Vec<EvictCandidate>> {
    prop::collection::vec(
        (
            1usize..4096,  // footprint
            0u64..CLOCK,   // last_access
            1u64..200,     // access_count
            0u8..=255u8,   // priority
            0usize..4,     // queued_msgs
            any::<bool>(), // clean (valid on-disk bytes)
        ),
        1..24,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (fp, last, count, prio, queued, clean))| {
                let mut c = cand(i as u64, fp, last, count, prio, queued);
                c.clean = clean;
                c
            })
            .collect()
    })
}

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    (0usize..PolicyKind::ALL.len()).prop_map(|i| PolicyKind::ALL[i])
}

/// Sort key mirrored from the documented contract, used to check the
/// chosen victims are exactly a prefix of the contract's ordering.
fn contract_key(m: &OocManager, c: &EvictCandidate) -> (bool, u8, f64) {
    (
        c.queued_msgs > 0,
        c.priority,
        m.policy().score(&c.meta, CLOCK),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whenever the candidates collectively hold `need` bytes, the chosen
    /// victims free at least `need` — and never overshoot by more than the
    /// final victim (dropping it would leave the request unsatisfied).
    #[test]
    fn frees_enough_when_candidates_suffice(
        mut cands in candidates_strategy(),
        policy in policy_strategy(),
        frac in 1usize..=100,
    ) {
        let m = manager(policy);
        let available: usize = cands.iter().map(|c| c.footprint).sum();
        let need = (available * frac / 100).max(1);
        let by_oid: std::collections::HashMap<_, _> =
            cands.iter().map(|c| (c.oid, c.footprint)).collect();
        let victims = m.pick_victims(&mut cands, need);
        let freed: usize = victims.iter().map(|v| by_oid[v]).sum();
        prop_assert!(freed >= need, "freed {freed} < need {need} of {available}");
        let without_last: usize = victims[..victims.len() - 1]
            .iter()
            .map(|v| by_oid[v])
            .sum();
        prop_assert!(
            without_last < need,
            "over-eviction: {victims:?} frees {freed} but the last victim is unneeded"
        );
    }

    /// The victim list is a prefix of the contract ordering: no candidate
    /// with queued messages (or higher priority within the same class) is
    /// evicted while a strictly-preferable candidate survives.
    #[test]
    fn never_evicts_busy_before_idle(
        mut cands in candidates_strategy(),
        policy in policy_strategy(),
        frac in 1usize..=100,
    ) {
        let m = manager(policy);
        let available: usize = cands.iter().map(|c| c.footprint).sum();
        let need = (available * frac / 100).max(1);
        let snapshot = cands.clone();
        let victims = m.pick_victims(&mut cands, need);
        let chosen: std::collections::HashSet<_> = victims.iter().copied().collect();
        for v in snapshot.iter().filter(|c| chosen.contains(&c.oid)) {
            for s in snapshot.iter().filter(|c| !chosen.contains(&c.oid)) {
                let (vq, vp, vs) = contract_key(&m, v);
                let (sq, sp, ss) = contract_key(&m, s);
                let ord = (vq, vp).cmp(&(sq, sp)).then(vs.total_cmp(&ss));
                prop_assert!(
                    ord != std::cmp::Ordering::Greater,
                    "evicted {:?} (queued={vq} prio={vp} score={vs}) while sparing \
                     {:?} (queued={sq} prio={sp} score={ss}) under {:?}",
                    v.oid, s.oid, policy,
                );
            }
        }
    }

    /// Each of the five swapping schemes evicts its own notion of the
    /// least valuable object first, given otherwise identical candidates.
    #[test]
    fn first_victim_minimizes_policy_score(
        metas in prop::collection::vec((0u64..CLOCK, 1u64..200), 2..16),
        policy in policy_strategy(),
    ) {
        let m = manager(policy);
        let mut cands: Vec<EvictCandidate> = metas
            .iter()
            .enumerate()
            .map(|(i, &(last, count))| cand(i as u64, 64, last, count, 128, 0))
            .collect();
        let snapshot = cands.clone();
        let victims = m.pick_victims(&mut cands, 1);
        prop_assert_eq!(victims.len(), 1);
        let first = snapshot.iter().find(|c| c.oid == victims[0]).unwrap();
        let best = snapshot
            .iter()
            .map(|c| policy.score(&c.meta, CLOCK))
            .fold(f64::INFINITY, f64::min);
        prop_assert_eq!(
            policy.score(&first.meta, CLOCK), best,
            "{:?} evicted a non-minimal-score candidate first", policy
        );
    }
}

/// Directed checks: one per scheme, with metadata chosen so each scheme
/// must pick a *different* victim — proves the five orderings really are
/// five orderings, not aliases.
#[test]
fn five_schemes_order_differently() {
    // (seq, last_access, access_count, birth-implied-age)
    let mk = || {
        vec![
            cand(0, 64, 10, 150, 128, 0), // oldest access, heavily used
            cand(1, 64, 900, 2, 128, 0),  // newest access, barely used
            cand(2, 64, 500, 40, 128, 0), // middling
        ]
    };
    let first = |policy: PolicyKind| {
        let m = manager(policy);
        let mut cands = mk();
        m.pick_victims(&mut cands, 1)[0]
    };
    assert_eq!(first(PolicyKind::Lru), ObjectId::new(0, 0)); // oldest access
    assert_eq!(first(PolicyKind::Mru), ObjectId::new(0, 1)); // newest access
    assert_eq!(first(PolicyKind::Lu), ObjectId::new(0, 1)); // fewest accesses
    assert_eq!(first(PolicyKind::Mu), ObjectId::new(0, 0)); // most accesses

    // LFU: lowest access rate (count / age), with age = now - birth and
    // birth = last - count. Candidate 0: age 1000, rate 0.15; candidate 1:
    // age 102, rate ~0.0196; candidate 2: age 540, rate ~0.074.
    assert_eq!(first(PolicyKind::Lfu), ObjectId::new(0, 1));
}
