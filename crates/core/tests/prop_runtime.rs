//! Property tests for MRTS invariants: arbitrary message/workload shapes
//! must preserve application state across spills, reloads, and migrations
//! — and the out-of-core configuration must never change results.

use mrts::codec::{PayloadReader, PayloadWriter};
use mrts::prelude::*;
use proptest::prelude::*;
use std::any::Any;

const TAG: TypeTag = TypeTag(0xAA);
const H_ADD: HandlerId = HandlerId(1);
const H_FWD: HandlerId = HandlerId(2);

struct Acc {
    sum: u64,
    pad: Vec<u8>,
}

impl Acc {
    fn decode(buf: &[u8]) -> Result<Box<dyn MobileObject>, ObjectDecodeError> {
        let mut r = PayloadReader::new(buf);
        let sum = r.u64().unwrap();
        let pad = r.bytes().unwrap().to_vec();
        Ok(Box::new(Acc { sum, pad }))
    }
}

impl MobileObject for Acc {
    fn type_tag(&self) -> TypeTag {
        TAG
    }
    fn encode(&self, buf: &mut Vec<u8>) {
        let mut w = PayloadWriter::new();
        w.u64(self.sum).bytes(&self.pad);
        buf.extend_from_slice(&w.finish());
    }
    fn footprint(&self) -> usize {
        32 + self.pad.len()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn h_add(obj: &mut dyn MobileObject, _ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    obj.as_any_mut().downcast_mut::<Acc>().unwrap().sum += r.u64().unwrap();
}

/// Forward `v` to the target pointer after adding it locally.
fn h_fwd(obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    let v = r.u64().unwrap();
    let hops = r.u32().unwrap();
    let to = r.ptr().unwrap();
    obj.as_any_mut().downcast_mut::<Acc>().unwrap().sum += v;
    if hops > 0 {
        let mut w = PayloadWriter::new();
        w.u64(v).u32(hops - 1).ptr(ctx.self_ptr());
        ctx.send(to, H_FWD, w.finish());
    }
}

#[derive(Clone, Debug)]
struct Plan {
    nodes: usize,
    objects: usize,
    pad: usize,
    adds: Vec<(usize, u64)>,
    fwds: Vec<(usize, usize, u64, u32)>,
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    (1usize..4, 1usize..10, 0usize..4096).prop_flat_map(|(nodes, objects, pad)| {
        let adds = prop::collection::vec((0..objects, 1u64..100), 0..24);
        let fwds = prop::collection::vec((0..objects, 0..objects, 1u64..50, 0u32..6), 0..8);
        (Just(nodes), Just(objects), Just(pad), adds, fwds).prop_map(
            |(nodes, objects, pad, adds, fwds)| Plan {
                nodes,
                objects,
                pad,
                adds,
                fwds,
            },
        )
    })
}

fn run_plan(plan: &Plan, mem_budget: usize) -> (u64, usize, usize) {
    let cfg = if mem_budget == usize::MAX {
        MrtsConfig::in_core(plan.nodes)
    } else {
        MrtsConfig::out_of_core(plan.nodes, mem_budget)
    };
    let mut rt = DesRuntime::new(cfg);
    rt.register_type(TAG, Acc::decode);
    rt.register_handler(H_ADD, "add", h_add);
    rt.register_handler(H_FWD, "fwd", h_fwd);
    let ptrs: Vec<MobilePtr> = (0..plan.objects)
        .map(|i| {
            rt.create_object(
                (i % plan.nodes) as NodeId,
                Box::new(Acc {
                    sum: 0,
                    pad: vec![0; plan.pad],
                }),
                128,
            )
        })
        .collect();
    for &(o, v) in &plan.adds {
        let mut w = PayloadWriter::new();
        w.u64(v);
        rt.post(ptrs[o], H_ADD, w.finish());
    }
    for &(a, b, v, hops) in &plan.fwds {
        let mut w = PayloadWriter::new();
        w.u64(v).u32(hops).ptr(ptrs[b]);
        rt.post(ptrs[a], H_FWD, w.finish());
    }
    let stats = rt.run();
    let mut total = 0;
    rt.for_each_object(|_, o| total += o.as_any().downcast_ref::<Acc>().unwrap().sum);
    (
        total,
        stats.total_of(|n| n.handlers_run),
        stats.total_of(|n| n.stores),
    )
}

fn expected_sum(plan: &Plan) -> u64 {
    let adds: u64 = plan.adds.iter().map(|&(_, v)| v).sum();
    let fwds: u64 = plan
        .fwds
        .iter()
        .map(|&(_, _, v, hops)| v * (hops as u64 + 1))
        .sum();
    adds + fwds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn message_effects_are_exact(plan in plan_strategy()) {
        let (total, handlers, _) = run_plan(&plan, usize::MAX);
        prop_assert_eq!(total, expected_sum(&plan));
        let expected_handlers = plan.adds.len()
            + plan.fwds.iter().map(|&(_, _, _, h)| h as usize + 1).sum::<usize>();
        prop_assert_eq!(handlers, expected_handlers);
    }

    #[test]
    fn out_of_core_never_changes_results(plan in plan_strategy()) {
        let (in_core, _, _) = run_plan(&plan, usize::MAX);
        // A budget that can hold roughly two objects forces heavy traffic.
        let budget = (2 * (plan.pad + 64)).max(256);
        let (ooc, _, stores) = run_plan(&plan, budget);
        prop_assert_eq!(in_core, ooc, "spilling changed application state");
        // With more than two padded objects something must have spilled.
        if plan.objects > 3 && plan.pad > 512 && !plan.adds.is_empty() {
            prop_assert!(stores > 0, "expected spills with budget {budget}");
        }
    }

    #[test]
    fn application_results_are_deterministic(plan in plan_strategy()) {
        // Handler durations are *measured*, so eviction decisions (and
        // with them store/load counts) may differ run-to-run when timing
        // jitter reorders near-simultaneous events. What must never vary:
        // application state and the number of handler executions.
        let (sum_a, handlers_a, _) = run_plan(&plan, 4096);
        let (sum_b, handlers_b, _) = run_plan(&plan, 4096);
        prop_assert_eq!(sum_a, sum_b);
        prop_assert_eq!(handlers_a, handlers_b);
    }
}
