//! Tests for the lazy distributed directory: hint bookkeeping at the
//! [`mrts::directory::Directory`] level, and the paper's lazy-update
//! scheme end to end — a message forwarded along a k-hop tombstone chain
//! must trigger one location-update service message per hop, after which
//! later sends go direct.

#![cfg(any(feature = "audit", debug_assertions))]

use mrts::audit::{EventLog, RuntimeEvent};
use mrts::codec::{PayloadReader, PayloadWriter};
use mrts::directory::Directory;
use mrts::prelude::*;
use std::any::Any;
use std::sync::Arc;

// ----- Directory unit behavior ------------------------------------------

#[test]
fn update_pointing_at_home_keeps_hints_empty() {
    let mut d = Directory::new();
    let oid = ObjectId::new(3, 9);
    // Recording the default location must not grow the hint map.
    d.update(oid, oid.home());
    assert!(d.is_empty());
    assert_eq!(d.lookup(oid), 3);
    assert_eq!(d.updates_applied, 1);
    // A real hint, then a correction back home, leaves the map empty too.
    d.update(oid, 7);
    assert_eq!(d.lookup(oid), 7);
    d.update(oid, oid.home());
    assert!(d.is_empty());
    assert_eq!(d.lookup(oid), 3);
}

#[test]
fn lookup_after_forget_falls_back_to_home() {
    let mut d = Directory::new();
    let oid = ObjectId::new(2, 41);
    d.update(oid, 6);
    assert_eq!(d.lookup(oid), 6);
    d.forget(oid);
    assert!(d.is_empty());
    assert_eq!(d.lookup(oid), 2);
    // Forgetting an object that was never hinted is a no-op.
    d.forget(ObjectId::new(0, 0));
    assert!(d.is_empty());
}

// ----- End-to-end lazy updates over a tombstone chain -------------------

const CELL_TAG: TypeTag = TypeTag(1);
const H_BUMP: HandlerId = HandlerId(1);
const H_MOVE: HandlerId = HandlerId(2);
const H_PING: HandlerId = HandlerId(3);

struct Cell {
    value: u64,
}

impl Cell {
    fn decode(buf: &[u8]) -> Result<Box<dyn MobileObject>, ObjectDecodeError> {
        let mut r = PayloadReader::new(buf);
        Ok(Box::new(Cell {
            value: r.u64().unwrap(),
        }))
    }
}

impl MobileObject for Cell {
    fn type_tag(&self) -> TypeTag {
        CELL_TAG
    }
    fn encode(&self, buf: &mut Vec<u8>) {
        let mut w = PayloadWriter::new();
        w.u64(self.value);
        buf.extend_from_slice(&w.finish());
    }
    fn footprint(&self) -> usize {
        64
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn h_bump(obj: &mut dyn MobileObject, _ctx: &mut Ctx, _payload: &[u8]) {
    obj.as_any_mut().downcast_mut::<Cell>().unwrap().value += 1;
}

fn h_move(_obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    let dest = r.u64().unwrap() as NodeId;
    ctx.migrate(ctx.self_ptr(), dest);
}

/// Relay: send a bump to the pointer in the payload (so the send
/// originates from this object's node, exercising that node's directory).
fn h_ping(_obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    let target = r.ptr().unwrap();
    ctx.send(target, H_BUMP, Vec::new());
}

fn u64_payload(v: u64) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(v);
    w.finish()
}

/// Forward events for `oid` recorded after `from`, as (node, to) hops.
fn forwards(log: &EventLog, from: usize, oid: ObjectId) -> Vec<(NodeId, NodeId)> {
    log.snapshot()[from..]
        .iter()
        .filter_map(|ev| match *ev {
            RuntimeEvent::Forward { node, oid: o, to } if o == oid => Some((node, to)),
            _ => None,
        })
        .collect()
}

/// Directory updates for `oid` recorded after `from`, as (node, loc).
fn updates(log: &EventLog, from: usize, oid: ObjectId) -> Vec<(NodeId, NodeId)> {
    log.snapshot()[from..]
        .iter()
        .filter_map(|ev| match *ev {
            RuntimeEvent::DirUpdate { node, oid: o, loc } if o == oid => Some((node, loc)),
            _ => None,
        })
        .collect()
}

/// Migrate an object across a 3-hop tombstone chain (0→1→2→3), then send
/// to it from an uninvolved node. The message must be forwarded once per
/// stale hop, and delivery must push one lazy update back to *every* node
/// the message passed through; a second send then goes direct.
#[test]
fn k_hop_chain_generates_one_update_per_hop() {
    let log = Arc::new(EventLog::new());
    let mut rt = DesRuntime::new(MrtsConfig::in_core(5));
    rt.register_type(CELL_TAG, Cell::decode);
    rt.register_handler(H_BUMP, "bump", h_bump);
    rt.register_handler(H_MOVE, "move", h_move);
    rt.register_handler(H_PING, "ping", h_ping);
    rt.attach_audit(log.clone());

    let x = rt.create_object(0, Box::new(Cell { value: 0 }), 128);
    let relay = rt.create_object(4, Box::new(Cell { value: 0 }), 128);

    // Walk x across nodes 0→1→2→3, one settled leg at a time, leaving a
    // Moved tombstone at each departure point.
    for dest in 1..=3u64 {
        rt.post(x, H_MOVE, u64_payload(dest));
        rt.run();
    }

    // Probe from node 4 (no tombstone, no hint): the send chases the
    // chain home→1→2→3.
    let mark = log.len();
    let ping = {
        let mut w = PayloadWriter::new();
        w.ptr(x);
        w.finish()
    };
    rt.post(relay, H_PING, ping.clone());
    rt.run();

    let hops = forwards(&log, mark, x.id);
    assert_eq!(
        hops,
        vec![(4, 0), (0, 1), (1, 2), (2, 3)],
        "expected the probe to traverse the full tombstone chain"
    );
    // Lazy updates: exactly one service message per hop of the route,
    // each teaching that node the object's true location.
    let mut upd = updates(&log, mark, x.id);
    upd.sort_unstable();
    assert_eq!(
        upd,
        vec![(0, 3), (1, 3), (2, 3), (4, 3)],
        "every node on the route must learn the final location"
    );

    // Second probe: node 4 now knows the location, so the send goes
    // direct — a single forward, no chain walk.
    let mark = log.len();
    rt.post(relay, H_PING, ping);
    rt.run();
    let hops = forwards(&log, mark, x.id);
    assert_eq!(hops, vec![(4, 3)], "lazy update should have converged");

    // Both pings landed.
    assert_eq!(
        rt.with_object(x, |o| o.as_any().downcast_ref::<Cell>().unwrap().value),
        2
    );
}

// ----- Property: hint bookkeeping matches a reference model -------------

use proptest::prelude::*;
use std::collections::HashMap;

/// One directory mutation, as seen during concurrent object movement:
/// lazy updates racing with destruction (`Forget`) and failure-driven
/// self-healing (`Invalidate` / `InvalidateNode`).
#[derive(Clone, Debug)]
enum Op {
    Update(usize, NodeId),
    Forget(usize),
    Invalidate(usize),
    InvalidateNode(NodeId),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Weighted by selector range: half the ops are lazy updates, the rest
    // split between destruction and the two self-healing paths.
    (0u8..8, 0usize..8, 0usize..6).prop_map(|(sel, i, n)| match sel {
        0..=3 => Op::Update(i, n as NodeId),
        4 => Op::Forget(i),
        5 | 6 => Op::Invalidate(i),
        _ => Op::InvalidateNode(n as NodeId),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random interleavings of updates, forgets and invalidations over a
    /// small object pool: `lookup` always agrees with a reference model —
    /// in particular it never returns a forgotten or invalidated hint,
    /// falling back to `oid.home()` — and the self-healing counters track
    /// exactly the hints that were actually dropped.
    #[test]
    fn hints_match_reference_model(ops in prop::collection::vec(arb_op(), 0..64)) {
        let oids: Vec<ObjectId> =
            (0..8u64).map(|i| ObjectId::new((i % 3) as NodeId, i)).collect();
        let mut d = Directory::new();
        let mut model: HashMap<ObjectId, NodeId> = HashMap::new();
        let mut invalidated = 0usize;
        let mut updates = 0usize;
        for op in &ops {
            match *op {
                Op::Update(i, n) => {
                    d.update(oids[i], n);
                    updates += 1;
                    if n == oids[i].home() {
                        model.remove(&oids[i]);
                    } else {
                        model.insert(oids[i], n);
                    }
                }
                Op::Forget(i) => {
                    d.forget(oids[i]);
                    model.remove(&oids[i]);
                }
                Op::Invalidate(i) => {
                    let had = model.remove(&oids[i]).is_some();
                    prop_assert_eq!(d.invalidate(oids[i]), had);
                    invalidated += had as usize;
                }
                Op::InvalidateNode(n) => {
                    let before = model.len();
                    model.retain(|_, &mut loc| loc != n);
                    let dropped = before - model.len();
                    prop_assert_eq!(d.invalidate_node(n), dropped);
                    invalidated += dropped;
                }
            }
            for &oid in &oids {
                prop_assert_eq!(
                    d.lookup(oid),
                    model.get(&oid).copied().unwrap_or_else(|| oid.home())
                );
            }
        }
        prop_assert_eq!(d.len(), model.len());
        prop_assert_eq!(d.updates_applied, updates);
        prop_assert_eq!(d.hints_invalidated, invalidated);
    }
}

/// A message posted directly to a migrated object's current owner (the
/// runtime resolves tombstones) generates no forwards and no updates.
#[test]
fn resolved_posts_do_not_touch_the_directory() {
    let log = Arc::new(EventLog::new());
    let mut rt = DesRuntime::new(MrtsConfig::in_core(3));
    rt.register_type(CELL_TAG, Cell::decode);
    rt.register_handler(H_BUMP, "bump", h_bump);
    rt.register_handler(H_MOVE, "move", h_move);
    rt.attach_audit(log.clone());

    let x = rt.create_object(0, Box::new(Cell { value: 0 }), 128);
    rt.post(x, H_MOVE, u64_payload(2));
    rt.run();

    let mark = log.len();
    rt.post(x, H_BUMP, Vec::new());
    rt.run();
    assert!(forwards(&log, mark, x.id).is_empty());
    assert!(updates(&log, mark, x.id).is_empty());
    assert_eq!(
        rt.with_object(x, |o| o.as_any().downcast_ref::<Cell>().unwrap().value),
        1
    );
}
