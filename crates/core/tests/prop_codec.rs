//! Property tests for the wire layer: payload codec round trips and
//! robustness of `Message::decode` against arbitrary (hostile) bytes.

use mrts::codec::{PayloadReader, PayloadWriter};
use mrts::ids::{HandlerId, MobilePtr, NodeId, ObjectId};
use mrts::msg::{Message, MsgDecodeError, MulticastInfo, MAX_ROUTE_LEN};
use proptest::prelude::*;

fn arb_ptr() -> impl Strategy<Value = MobilePtr> {
    (any::<u16>(), 0u64..(1 << 48)).prop_map(|(h, s)| MobilePtr::new(ObjectId::new(h, s)))
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        arb_ptr(),
        any::<u32>(),
        prop::collection::vec(any::<u8>(), 0..256),
        prop::collection::vec(any::<u16>(), 0..8),
        prop::option::of((prop::collection::vec(arb_ptr(), 1..8), any::<bool>())),
    )
        .prop_map(|(to, h, payload, route, mc)| {
            let mut m = Message::new(to, HandlerId(h), payload);
            m.route = route.into_iter().map(|r| r as NodeId).collect();
            m.multicast = mc.map(|(targets, first_only)| {
                let deliver_to = if first_only { 1 } else { targets.len() as u32 };
                MulticastInfo {
                    targets,
                    deliver_to,
                }
            });
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn message_roundtrip(m in arb_message()) {
        let bytes = m.encode();
        // `wire_size` is documented as an upper bound on the encoded
        // length; transfer-time charging and spill budgeting rely on it.
        prop_assert!(bytes.len() <= m.wire_size());
        let back = Message::decode(&bytes).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Arbitrary input must either decode into something or fail
        // cleanly with a typed MsgDecodeError — never panic or
        // over-allocate wildly.
        let _ = Message::decode(&bytes);
    }

    /// A frame announcing a route longer than [`MAX_ROUTE_LEN`] must be
    /// rejected with the typed cap error — before the decoder loops on the
    /// hostile count — not misreported as a short buffer.
    #[test]
    fn oversized_route_count_is_a_typed_error(
        m in arb_message(),
        n in (MAX_ROUTE_LEN as u32 + 1)..=u32::MAX,
    ) {
        let mut w = PayloadWriter::new();
        w.ptr(m.to).u32(m.handler.0).bytes(&m.payload);
        w.u32(n); // hostile route count, no entries follow
        prop_assert_eq!(
            Message::decode(&w.finish()),
            Err(MsgDecodeError::RouteTooLong(n as usize))
        );
    }

    /// Same cap, multicast arm: a hostile target count draws the typed
    /// error even though the buffer ends right after the count field.
    #[test]
    fn oversized_multicast_count_is_a_typed_error(
        m in arb_message(),
        n in (MAX_ROUTE_LEN as u32 + 1)..=u32::MAX,
    ) {
        let mut w = PayloadWriter::new();
        w.ptr(m.to).u32(m.handler.0).bytes(&m.payload);
        w.u32(0); // empty route
        w.u8(1).u32(1).u32(n); // multicast flag, deliver_to, hostile count
        prop_assert_eq!(
            Message::decode(&w.finish()),
            Err(MsgDecodeError::TargetsTooLong(n as usize))
        );
    }

    #[test]
    fn decode_never_panics_on_truncations(m in arb_message(), cut in any::<prop::sample::Index>()) {
        let bytes = m.encode();
        let cut = cut.index(bytes.len() + 1);
        let _ = Message::decode(&bytes[..cut.min(bytes.len())]);
    }

    #[test]
    fn payload_writer_reader_mixed(
        u8s in prop::collection::vec(any::<u8>(), 0..8),
        u32s in prop::collection::vec(any::<u32>(), 0..8),
        f64s in prop::collection::vec(any::<f64>().prop_filter("finite", |f| f.is_finite()), 0..8),
        blob in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut w = PayloadWriter::new();
        for &v in &u8s { w.u8(v); }
        for &v in &u32s { w.u32(v); }
        for &v in &f64s { w.f64(v); }
        w.bytes(&blob);
        let buf = w.finish();
        let mut r = PayloadReader::new(&buf);
        for &v in &u8s { prop_assert_eq!(r.u8().unwrap(), v); }
        for &v in &u32s { prop_assert_eq!(r.u32().unwrap(), v); }
        for &v in &f64s { prop_assert_eq!(r.f64().unwrap(), v); }
        prop_assert_eq!(r.bytes().unwrap(), &blob[..]);
        prop_assert_eq!(r.remaining(), 0);
    }
}
