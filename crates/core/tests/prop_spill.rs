//! Property tests for the spill fast path: random handler / evict / load
//! / migrate schedules must leave application state byte-identical
//! whether evictions go through the legacy always-rewrite path or the
//! fast path (clean-eviction elision + batched stores + pooled buffers),
//! and the per-object version counters backing dirty tracking must never
//! run backwards.

use mrts::audit::{EventLog, FailMode, InvariantChecker, RuntimeEvent};
use mrts::codec::{PayloadReader, PayloadWriter};
use mrts::object::Registry;
use mrts::prelude::*;
use proptest::prelude::*;
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const TAG: TypeTag = TypeTag(0xAB);
const H_ADD: HandlerId = HandlerId(1);
const H_FWD: HandlerId = HandlerId(2);
const H_MIG: HandlerId = HandlerId(3);

struct Acc {
    sum: u64,
    pad: Vec<u8>,
}

impl Acc {
    fn decode(buf: &[u8]) -> Result<Box<dyn MobileObject>, ObjectDecodeError> {
        let mut r = PayloadReader::new(buf);
        let sum = r.u64().unwrap();
        let pad = r.bytes().unwrap().to_vec();
        Ok(Box::new(Acc { sum, pad }))
    }
}

impl MobileObject for Acc {
    fn type_tag(&self) -> TypeTag {
        TAG
    }
    fn encode(&self, buf: &mut Vec<u8>) {
        let mut w = PayloadWriter::new();
        w.u64(self.sum).bytes(&self.pad);
        buf.extend_from_slice(&w.finish());
    }
    fn footprint(&self) -> usize {
        32 + self.pad.len()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn h_add(obj: &mut dyn MobileObject, _ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    obj.as_any_mut().downcast_mut::<Acc>().unwrap().sum += r.u64().unwrap();
}

/// Add `v` locally, then forward to the target for `hops` more rounds.
fn h_fwd(obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    let v = r.u64().unwrap();
    let hops = r.u32().unwrap();
    let to = r.ptr().unwrap();
    obj.as_any_mut().downcast_mut::<Acc>().unwrap().sum += v;
    if hops > 0 {
        let mut w = PayloadWriter::new();
        w.u64(v).u32(hops - 1).ptr(ctx.self_ptr());
        ctx.send(to, H_FWD, w.finish());
    }
}

/// Migrate self to the node in the payload (and count the visit).
fn h_mig(obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    let dest = r.u32().unwrap() as NodeId;
    obj.as_any_mut().downcast_mut::<Acc>().unwrap().sum += 1;
    let me = ctx.self_ptr();
    ctx.migrate(me, dest);
}

#[derive(Clone, Debug)]
struct Plan {
    nodes: usize,
    objects: usize,
    pad: usize,
    adds: Vec<(usize, u64)>,
    fwds: Vec<(usize, usize, u64, u32)>,
    migs: Vec<(usize, usize)>,
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    (2usize..4, 2usize..8, 256usize..4096).prop_flat_map(|(nodes, objects, pad)| {
        let adds = prop::collection::vec((0..objects, 1u64..100), 0..24);
        let fwds = prop::collection::vec((0..objects, 0..objects, 1u64..50, 0u32..6), 0..8);
        let migs = prop::collection::vec((0..objects, 0..nodes), 0..6);
        (Just(nodes), Just(objects), Just(pad), adds, fwds, migs).prop_map(
            |(nodes, objects, pad, adds, fwds, migs)| Plan {
                nodes,
                objects,
                pad,
                adds,
                fwds,
                migs,
            },
        )
    })
}

fn expected_sum(plan: &Plan) -> u64 {
    let adds: u64 = plan.adds.iter().map(|&(_, v)| v).sum();
    let fwds: u64 = plan
        .fwds
        .iter()
        .map(|&(_, _, v, hops)| v * (hops as u64 + 1))
        .sum();
    adds + fwds + plan.migs.len() as u64
}

fn post_plan<F: FnMut(MobilePtr, HandlerId, Vec<u8>)>(plan: &Plan, ptrs: &[MobilePtr], mut f: F) {
    for &(o, v) in &plan.adds {
        let mut w = PayloadWriter::new();
        w.u64(v);
        f(ptrs[o], H_ADD, w.finish());
    }
    for &(a, b, v, hops) in &plan.fwds {
        let mut w = PayloadWriter::new();
        w.u64(v).u32(hops).ptr(ptrs[b]);
        f(ptrs[a], H_FWD, w.finish());
    }
    for &(o, dest) in &plan.migs {
        let mut w = PayloadWriter::new();
        w.u32(dest as u32);
        f(ptrs[o], H_MIG, w.finish());
    }
}

/// Run the plan on the DES engine; return (sum, packed bytes per object).
fn run_des(plan: &Plan, legacy: bool) -> (u64, BTreeMap<ObjectId, Vec<u8>>) {
    // A budget holding roughly two padded objects forces heavy eviction
    // traffic through whichever spill path is configured.
    let budget = (2 * (plan.pad + 64)).max(256);
    let mut cfg = MrtsConfig::out_of_core(plan.nodes, budget);
    if legacy {
        cfg = cfg.with_legacy_spill();
    }
    let mut rt = DesRuntime::new(cfg);
    rt.register_type(TAG, Acc::decode);
    rt.register_handler(H_ADD, "add", h_add);
    rt.register_handler(H_FWD, "fwd", h_fwd);
    rt.register_handler(H_MIG, "mig", h_mig);
    let checker = Arc::new(InvariantChecker::new(FailMode::Collect));
    rt.attach_audit(checker.clone());
    let ptrs: Vec<MobilePtr> = (0..plan.objects)
        .map(|i| {
            rt.create_object(
                (i % plan.nodes) as NodeId,
                Box::new(Acc {
                    sum: 0,
                    pad: vec![0x5A; plan.pad],
                }),
                128,
            )
        })
        .collect();
    post_plan(plan, &ptrs, |p, h, payload| rt.post(p, h, payload));
    let _ = rt.run();
    checker.assert_clean();
    let mut sum = 0;
    let mut bytes = BTreeMap::new();
    rt.for_each_object(|oid, o| {
        sum += o.as_any().downcast_ref::<Acc>().unwrap().sum;
        bytes.insert(oid, Registry::pack(o));
    });
    (sum, bytes)
}

static SPILL_CASE: AtomicU64 = AtomicU64::new(0);

/// Run the plan on the threaded engine with the fast path and an event
/// log; return (sum, elided-unload events).
fn run_threaded(plan: &Plan, tweak: impl Fn(&mut MrtsConfig)) -> (u64, Vec<RuntimeEvent>) {
    let budget = (2 * (plan.pad + 64)).max(256);
    let mut cfg = MrtsConfig::out_of_core(plan.nodes, budget);
    tweak(&mut cfg);
    cfg.spill_dir = Some(std::env::temp_dir().join(format!(
        "mrts-propspill-{}-{}",
        std::process::id(),
        SPILL_CASE.fetch_add(1, Ordering::Relaxed)
    )));
    let spill = cfg.spill_dir.clone().unwrap();
    let mut rt = ThreadedRuntime::new(cfg);
    rt.register_type(TAG, Acc::decode);
    rt.register_handler(H_ADD, "add", h_add);
    rt.register_handler(H_FWD, "fwd", h_fwd);
    rt.register_handler(H_MIG, "mig", h_mig);
    let checker = Arc::new(InvariantChecker::new(FailMode::Collect));
    let log = Arc::new(EventLog::new());
    rt.attach_audit(checker.clone());
    rt.attach_audit(log.clone());
    let ptrs: Vec<MobilePtr> = (0..plan.objects)
        .map(|i| {
            rt.create_object(
                (i % plan.nodes) as NodeId,
                Box::new(Acc {
                    sum: 0,
                    pad: vec![0x5A; plan.pad],
                }),
                128,
            )
        })
        .collect();
    post_plan(plan, &ptrs, |p, h, payload| rt.post(p, h, payload));
    let _ = rt.run();
    checker.assert_clean();
    let mut sum = 0;
    rt.for_each_object(|_, o| sum += o.as_any().downcast_ref::<Acc>().unwrap().sum);
    let _ = std::fs::remove_dir_all(spill);
    let elisions = log
        .snapshot()
        .into_iter()
        .filter(|e| matches!(e, RuntimeEvent::ElidedUnload { .. }))
        .collect();
    (sum, elisions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fast-path runs (elision + batching + pooled buffers) must finish
    /// with every object byte-identical to the legacy path: same sums,
    /// same packed representation, no invariant violations. An elided
    /// eviction whose on-disk bytes were stale would surface here as a
    /// byte difference after the next reload.
    #[test]
    fn fast_path_end_state_matches_legacy_byte_for_byte(plan in plan_strategy()) {
        let (fast_sum, fast_bytes) = run_des(&plan, false);
        let (legacy_sum, legacy_bytes) = run_des(&plan, true);
        prop_assert_eq!(fast_sum, expected_sum(&plan));
        prop_assert_eq!(legacy_sum, expected_sum(&plan));
        prop_assert_eq!(
            fast_bytes.len(), legacy_bytes.len(),
            "object population diverged"
        );
        for (oid, fast) in &fast_bytes {
            let legacy = &legacy_bytes[oid];
            prop_assert_eq!(
                fast, legacy,
                "object {:?} not byte-identical across spill paths", oid
            );
        }
    }
}

proptest! {
    // The threaded engine spins up real threads and spill files per case.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The threaded engine under the fast path: application state exact,
    /// audit clean (the checker cross-validates every elision against its
    /// own version model), and the version stamps on elided evictions
    /// never run backwards for any object.
    #[test]
    fn threaded_fast_path_versions_never_run_backwards(plan in plan_strategy()) {
        let (sum, elisions) = run_threaded(&plan, |_| {});
        prop_assert_eq!(sum, expected_sum(&plan));
        let mut last: BTreeMap<ObjectId, u64> = BTreeMap::new();
        for ev in &elisions {
            if let RuntimeEvent::ElidedUnload { oid, version, stored_version, .. } = ev {
                prop_assert_eq!(
                    version, stored_version,
                    "elision of a dirty object (versions differ)"
                );
                if let Some(prev) = last.insert(*oid, *version) {
                    prop_assert!(
                        *version >= prev,
                        "version ran backwards for {:?}: {} then {}",
                        oid, prev, version
                    );
                }
            }
        }
    }
}

/// Directed thrash scenario: objects larger than the soft budget
/// ping-pong through the spill path; an elided eviction followed by a
/// load must reconstitute the object byte-identically (validated by the
/// invariant checker's version model and the final state check). The
/// elision race is probabilistic in the threaded engine, so the scenario
/// retries a few times — seeing zero elisions across all attempts would
/// mean the fast path stopped firing.
#[test]
fn thrash_elides_and_reconstitutes_exactly() {
    let mut elided_total = 0;
    for attempt in 0..10 {
        // Enough objects that loads queue up behind one I/O thread and
        // several sit in core, loaded but not yet run — the clean window
        // the elision fast path exploits.
        let plan = Plan {
            nodes: 1,
            objects: 8,
            pad: 8 * 1024,
            adds: (0..96).map(|i| (i % 8, 1 + i as u64)).collect(),
            fwds: (0..16).map(|i| (i % 8, (i + 3) % 8, 5, 5)).collect(),
            migs: vec![],
        };
        let (sum, elisions) = run_threaded(&plan, |cfg| {
            cfg.io_threads = 1;
        });
        assert_eq!(
            sum,
            expected_sum(&plan),
            "attempt {attempt} corrupted state"
        );
        elided_total += elisions.len();
        if elided_total > 0 {
            return;
        }
    }
    panic!("no eviction was ever elided across 10 thrash runs");
}
