//! Property tests for the checkpoint codec: arbitrary checkpoints must
//! round-trip exactly, every strict prefix of an encoding must be
//! rejected (the format declares all counts up front, so any truncation
//! removes needed bytes), and magic corruption must be detected. The
//! segmented on-disk shape gets the same round-trip treatment plus a
//! missing-manifest (simulated crash) rejection check.

use mrts::checkpoint::{Checkpoint, CheckpointEntry};
use mrts::fault::MrtsError;
use mrts::ids::{HandlerId, MobilePtr, NodeId, ObjectId};
use mrts::msg::Message;
use proptest::prelude::*;

fn arb_oid() -> impl Strategy<Value = ObjectId> {
    (any::<u16>(), 0u64..(1 << 40)).prop_map(|(h, s)| ObjectId::new(h, s))
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        arb_oid(),
        any::<u32>(),
        prop::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(oid, h, payload)| Message::new(MobilePtr::new(oid), HandlerId(h), payload))
}

fn arb_entry() -> impl Strategy<Value = CheckpointEntry> {
    (
        0u16..16,
        arb_oid(),
        any::<u8>(),
        any::<bool>(),
        prop::collection::vec(any::<u8>(), 0..128),
        prop::collection::vec(arb_message(), 0..4),
    )
        .prop_map(
            |(node, oid, priority, locked, packed, queued)| CheckpointEntry {
                node: node as NodeId,
                oid,
                priority,
                locked,
                packed,
                queued,
            },
        )
}

fn arb_checkpoint() -> impl Strategy<Value = Checkpoint> {
    (
        prop::collection::vec(arb_entry(), 0..8),
        prop::collection::vec(any::<u64>(), 0..8),
    )
        .prop_map(|(objects, next_seq)| Checkpoint { objects, next_seq })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn checkpoint_roundtrip(cp in arb_checkpoint()) {
        let bytes = cp.encode();
        let back = Checkpoint::decode(&bytes).unwrap();
        prop_assert_eq!(back, cp);
    }

    #[test]
    fn truncated_prefix_rejected(cp in arb_checkpoint(), cut in any::<prop::sample::Index>()) {
        let bytes = cp.encode();
        // Every strict prefix must fail to decode: all counts are declared
        // up front, so the decoder always knows exactly how many bytes it
        // still needs and a shortened buffer cannot parse cleanly.
        let cut = cut.index(bytes.len());
        prop_assert!(Checkpoint::decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn corrupted_magic_rejected(cp in arb_checkpoint(), byte in 0usize..4, flip in 1u8..=255) {
        let mut bytes = cp.encode();
        bytes[byte] ^= flip;
        prop_assert!(Checkpoint::decode(&bytes).is_err());
    }

    #[test]
    fn segmented_roundtrip(cp in arb_checkpoint(), salt in any::<u32>()) {
        let dir = std::env::temp_dir().join(format!(
            "mrts-prop-ckpt-{}-{salt:08x}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        cp.write_segmented(&dir).unwrap();
        let back = Checkpoint::read_segmented(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(back, cp);
    }
}

/// A checkpoint directory whose manifest never landed (crash before the
/// final store+sync) must read back as corrupt, not as an empty or
/// partial checkpoint.
#[test]
fn missing_manifest_rejected() {
    let dir = std::env::temp_dir().join(format!("mrts-ckpt-nomanifest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Write entries only, by hand: a checkpoint with objects but whose
    // manifest we simulate losing by writing to a store and never adding
    // the manifest record. Easiest faithful simulation: write a full
    // checkpoint, then rewrite the directory without the manifest by
    // copying entry records through a fresh store.
    use mrts::storage::{SegmentStore, StorageBackend};
    let mut s = SegmentStore::open(dir.clone(), 1 << 20, 1.0).unwrap();
    s.store(0, b"not a manifest, just an orphan entry").unwrap();
    s.sync().unwrap();
    drop(s);
    match Checkpoint::read_segmented(&dir) {
        Err(MrtsError::CheckpointCorrupt(msg)) => assert!(msg.contains("manifest")),
        other => panic!("expected CheckpointCorrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
