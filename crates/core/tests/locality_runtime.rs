//! Engine-level tests for the locality layer: the learned curve must be a
//! pure function of the application's send pattern (identical digests from
//! the DES and threaded engines for the same workload), and the cluster
//! prefetch path must actually fire on an out-of-core run in both engines.

use mrts::codec::{PayloadReader, PayloadWriter};
use mrts::ids::ObjectId;
use mrts::prelude::*;
use std::any::Any;

const PATCH_TAG: TypeTag = TypeTag(21);
const H_FLOOD: HandlerId = HandlerId(21);
const H_CHAIN: HandlerId = HandlerId(22);

/// A mesh-patch stand-in: knows its grid neighbors, carries padding so
/// out-of-core configurations genuinely spill.
struct Patch {
    value: u64,
    neighbors: Vec<MobilePtr>,
    pad: Vec<u8>,
}

impl Patch {
    fn decode(buf: &[u8]) -> Result<Box<dyn MobileObject>, ObjectDecodeError> {
        let mut r = PayloadReader::new(buf);
        let value = r.u64().expect("value");
        let neighbors = r.ptrs().expect("neighbors");
        let pad = r.bytes().expect("pad").to_vec();
        Ok(Box::new(Patch {
            value,
            neighbors,
            pad,
        }))
    }
}

impl MobileObject for Patch {
    fn type_tag(&self) -> TypeTag {
        PATCH_TAG
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        let mut w = PayloadWriter::new();
        w.u64(self.value).ptrs(&self.neighbors).bytes(&self.pad);
        buf.extend_from_slice(&w.finish());
    }

    fn footprint(&self) -> usize {
        8 + 8 * self.neighbors.len() + self.pad.len() + 48
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Flood: bump self; while hops remain, re-send to every grid neighbor.
/// The send pattern — hence the adjacency both engines learn — is a pure
/// function of the grid, independent of scheduling.
fn h_flood(obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    let hops = r.u64().expect("hops");
    let p = obj
        .as_any_mut()
        .downcast_mut::<Patch>()
        .expect("Patch object");
    p.value += 1;
    if hops > 0 {
        let mut w = PayloadWriter::new();
        w.u64(hops - 1);
        let msg = w.finish();
        for &n in &p.neighbors {
            ctx.send(n, H_FLOOD, msg.clone());
        }
    }
}

fn flood_payload(hops: u64) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(hops);
    w.finish()
}

/// Baton traversal: bump self, then pass the baton to the next pointer in
/// the ring for `remaining` more hops. Exactly one object is ever active,
/// so on an out-of-core run every load of the baton's target completes
/// into an otherwise idle node — a demand miss, the cluster-prefetch
/// trigger.
fn h_chain(obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    let remaining = r.u64().expect("remaining");
    let idx = r.u64().expect("idx") as usize;
    let ring = r.ptrs().expect("ring");
    let p = obj
        .as_any_mut()
        .downcast_mut::<Patch>()
        .expect("Patch object");
    p.value += 1;
    if remaining > 0 {
        let next = (idx + 1) % ring.len();
        let mut w = PayloadWriter::new();
        w.u64(remaining - 1).u64(next as u64).ptrs(&ring);
        ctx.send(ring[next], H_CHAIN, w.finish());
    }
}

fn chain_payload(remaining: u64, idx: usize, ring: &[MobilePtr]) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(remaining).u64(idx as u64).ptrs(ring);
    w.finish()
}

/// Pointers for a `side × side` grid round-robined over `nodes` — the same
/// placement rule both engines' `create_object` produces.
fn grid_ptrs(side: usize, nodes: usize) -> Vec<MobilePtr> {
    let mut counters = vec![0u64; nodes];
    (0..side * side)
        .map(|i| {
            let node = (i % nodes) as NodeId;
            let seq = counters[i % nodes];
            counters[i % nodes] += 1;
            MobilePtr::new(ObjectId::new(node, seq))
        })
        .collect()
}

fn grid_neighbors(i: usize, side: usize, ptrs: &[MobilePtr]) -> Vec<MobilePtr> {
    let (x, y) = (i % side, i / side);
    let mut out = Vec::new();
    if x > 0 {
        out.push(ptrs[i - 1]);
    }
    if x + 1 < side {
        out.push(ptrs[i + 1]);
    }
    if y > 0 {
        out.push(ptrs[i - side]);
    }
    if y + 1 < side {
        out.push(ptrs[i + side]);
    }
    out
}

fn patch(i: usize, side: usize, ptrs: &[MobilePtr], pad: usize) -> Box<Patch> {
    Box::new(Patch {
        value: 0,
        neighbors: grid_neighbors(i, side, ptrs),
        pad: vec![0xA5; pad],
    })
}

fn run_des(side: usize, cfg: MrtsConfig, hops: u64, pad: usize) -> RunStats {
    let nodes = cfg.nodes;
    let mut rt = DesRuntime::new(cfg);
    rt.register_type(PATCH_TAG, Patch::decode);
    rt.register_handler(H_FLOOD, "flood", h_flood);
    let ptrs = grid_ptrs(side, nodes);
    for i in 0..side * side {
        let created = rt.create_object((i % nodes) as NodeId, patch(i, side, &ptrs, pad), 128);
        assert_eq!(created, ptrs[i]);
    }
    for &p in &ptrs {
        rt.post(p, H_FLOOD, flood_payload(hops));
    }
    rt.run()
}

fn run_threaded(side: usize, cfg: MrtsConfig, hops: u64, pad: usize) -> RunStats {
    let nodes = cfg.nodes;
    let mut rt = ThreadedRuntime::new(cfg);
    rt.register_type(PATCH_TAG, Patch::decode);
    rt.register_handler(H_FLOOD, "flood", h_flood);
    let ptrs = grid_ptrs(side, nodes);
    for i in 0..side * side {
        let created = rt.create_object((i % nodes) as NodeId, patch(i, side, &ptrs, pad), 128);
        assert_eq!(created, ptrs[i]);
    }
    for &p in &ptrs {
        rt.post(p, H_FLOOD, flood_payload(hops));
    }
    rt.run()
}

/// The curve digest is a pure function of the send pattern: both engines,
/// with their completely different schedulers, must learn the same
/// adjacency and derive bit-identical orderings — per node.
#[test]
fn locality_digest_agrees_across_engines() {
    for nodes in [1usize, 2] {
        let d = run_des(6, MrtsConfig::in_core(nodes), 1, 0);
        let t = run_threaded(6, MrtsConfig::in_core(nodes), 1, 0);
        for node in 0..nodes {
            let dd = d.nodes[node].locality_digest;
            let td = t.nodes[node].locality_digest;
            assert_ne!(dd, 0, "DES node {node} learned no adjacency");
            assert_eq!(dd, td, "engines disagree on the node-{node} curve");
        }
    }
}

/// Same workload, same engine, repeated: the digest must be stable (the
/// ordering cannot depend on HashMap iteration or thread timing).
#[test]
fn locality_digest_is_deterministic_across_runs() {
    let a = run_threaded(6, MrtsConfig::in_core(2), 2, 0);
    let b = run_threaded(6, MrtsConfig::in_core(2), 2, 0);
    for node in 0..2 {
        assert_eq!(a.nodes[node].locality_digest, b.nodes[node].locality_digest);
    }
}

/// Run a baton traversal (`laps` full laps of the ring) on the DES engine.
fn run_des_chain(side: usize, cfg: MrtsConfig, laps: u64, pad: usize) -> RunStats {
    let nodes = cfg.nodes;
    let mut rt = DesRuntime::new(cfg);
    rt.register_type(PATCH_TAG, Patch::decode);
    rt.register_handler(H_CHAIN, "chain", h_chain);
    let ptrs = grid_ptrs(side, nodes);
    for i in 0..side * side {
        let created = rt.create_object((i % nodes) as NodeId, patch(i, side, &ptrs, pad), 128);
        assert_eq!(created, ptrs[i]);
    }
    rt.post(
        ptrs[0],
        H_CHAIN,
        chain_payload(laps * ptrs.len() as u64, 0, &ptrs),
    );
    rt.run()
}

/// The same traversal on the threaded engine with real spill files.
fn run_threaded_chain(side: usize, cfg: MrtsConfig, laps: u64, pad: usize) -> RunStats {
    let nodes = cfg.nodes;
    let mut rt = ThreadedRuntime::new(cfg);
    rt.register_type(PATCH_TAG, Patch::decode);
    rt.register_handler(H_CHAIN, "chain", h_chain);
    let ptrs = grid_ptrs(side, nodes);
    for i in 0..side * side {
        let created = rt.create_object((i % nodes) as NodeId, patch(i, side, &ptrs, pad), 128);
        assert_eq!(created, ptrs[i]);
    }
    rt.post(
        ptrs[0],
        H_CHAIN,
        chain_payload(laps * ptrs.len() as u64, 0, &ptrs),
    );
    rt.run()
}

/// An out-of-core DES run traversing a spilling grid must drive the whole
/// locality path: clusters form, demand misses occur (one object active at
/// a time), and cluster prefetches issue behind them.
#[test]
fn des_ooc_run_issues_cluster_prefetches() {
    let stats = run_des_chain(6, MrtsConfig::out_of_core(1, 24 * 1024), 3, 2048);
    assert!(
        stats.total_of(|n| n.loads) > 0,
        "budget did not force any loads — test is vacuous"
    );
    assert!(
        stats.total_of(|n| n.cluster_prefetches) > 0,
        "no cluster prefetches on a spilling traversal workload"
    );
    assert!(stats.bytes_demanded() > 0);
}

/// The same, on the threaded engine with real spill files.
#[test]
fn threaded_ooc_run_issues_cluster_prefetches() {
    let dir = std::env::temp_dir().join(format!("mrts-locality-test-{}", std::process::id()));
    let mut cfg = MrtsConfig::out_of_core(1, 24 * 1024);
    cfg.spill_dir = Some(dir.clone());
    let stats = run_threaded_chain(6, cfg, 3, 2048);
    let _ = std::fs::remove_dir_all(dir);
    assert!(
        stats.total_of(|n| n.loads) > 0,
        "budget did not force any loads — test is vacuous"
    );
    assert!(
        stats.total_of(|n| n.cluster_prefetches) > 0,
        "no cluster prefetches on a spilling traversal workload"
    );
    assert!(
        stats.total_of(|n| n.segment_reads) > 0,
        "segment read stats never rode back on IoDone"
    );
}

/// `with_no_locality()` is a true escape hatch: no clusters, no digests,
/// no cluster prefetches — in both engines.
#[test]
fn no_locality_escape_hatch_disables_the_layer() {
    let d = run_des(
        6,
        MrtsConfig::out_of_core(1, 24 * 1024).with_no_locality(),
        4,
        2048,
    );
    assert_eq!(d.total_of(|n| n.cluster_prefetches), 0);
    assert_eq!(d.nodes[0].locality_digest, 0);

    let dir = std::env::temp_dir().join(format!("mrts-nolocality-test-{}", std::process::id()));
    let mut cfg = MrtsConfig::out_of_core(1, 24 * 1024).with_no_locality();
    cfg.spill_dir = Some(dir.clone());
    let t = run_threaded(6, cfg, 4, 2048);
    let _ = std::fs::remove_dir_all(dir);
    assert_eq!(t.total_of(|n| n.cluster_prefetches), 0);
    assert_eq!(t.nodes[0].locality_digest, 0);
}
