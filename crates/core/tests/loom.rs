//! Loom model-checking of the reliable-delivery and termination layer.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; run with
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p mrts --test loom
//! ```
//!
//! Each test wraps the *production* protocol state machines
//! ([`mrts::relnet`]) in loom-controlled primitives and explores every
//! interleaving within the preemption bound (default 2, override with
//! `LOOM_MAX_PREEMPTIONS`; `-1` for a full unbounded DFS). The
//! scenarios pin the two regressions called out in DESIGN.md §12:
//!
//! 1. a retransmit give-up must adjust the Safra counter *before* the
//!    ring can observe quiescence, and
//! 2. a duplicate storm must preserve exactly-once, per-edge-FIFO
//!    release no matter how arrivals interleave.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Condvar, Mutex as LoomMutex};
use loom::thread;
use mrts::relnet::{ReliableReceiver, ReliableSender, Safra, TimerAction};
use mrts::sync::{Arc, Mutex};

const TAG: u32 = 1; // AM_MSG
const NODE_A: u16 = 0;
const NODE_B: u16 = 1;
const RETRY_LIMIT: u32 = 3;

/// A loom-controlled FIFO wire: push frames under the mutex, pop blocks
/// on the condvar until one arrives.
struct Wire {
    q: LoomMutex<Vec<Vec<u8>>>,
    cv: Condvar,
}

impl Wire {
    fn new() -> Wire {
        Wire {
            q: LoomMutex::new(Vec::new()),
            cv: Condvar::new(),
        }
    }

    fn push(&self, frame: Vec<u8>) {
        self.q.lock().expect("wire mutex").push(frame);
        self.cv.notify_all();
    }

    fn pop(&self) -> Vec<u8> {
        let mut g = self.q.lock().expect("wire mutex");
        loop {
            if !g.is_empty() {
                return g.remove(0);
            }
            g = self.cv.wait(g).expect("wire mutex");
        }
    }
}

fn split_frame(frame: &[u8]) -> (u64, Vec<u8>) {
    let seq = u64::from_le_bytes(
        frame[..8]
            .try_into()
            .expect("frame has an 8-byte seq prefix"),
    );
    (seq, frame[8..].to_vec())
}

/// The full reliable-edge protocol under an adversarial fabric: the
/// first transmission of seq 0 is dropped (forcing a retransmission),
/// seq 1 is duplicated. Every interleaving must deliver exactly
/// `[10, 11]` in order, drain the unacked buffer, and leave the global
/// Safra sum at zero.
#[test]
fn reliable_edge_ack_retransmit_dedup() {
    let executions = loom::model::Builder::new().check(|| {
        let wire = Arc::new(Wire::new()); // A → B data frames
        let acks = Arc::new(Wire::new()); // B → A ack frames (8-byte seq)

        let sender = {
            let wire = Arc::clone(&wire);
            let acks = Arc::clone(&acks);
            thread::spawn(move || {
                let mut tx = ReliableSender::new();
                let mut safra = Safra::new();

                // Message 0: the fabric eats the first transmission.
                safra.on_send();
                let (s0, _f0_lost) = tx.next_frame(NODE_B, TAG, &[10]);
                // Message 1: transmitted, then duplicated by the fabric.
                safra.on_send();
                let (_s1, f1) = tx.next_frame(NODE_B, TAG, &[11]);
                wire.push(f1.clone());
                wire.push(f1);
                // The retransmission timer for message 0 fires.
                match tx.on_timer(NODE_B, s0, RETRY_LIMIT) {
                    TimerAction::Retransmit { frame, attempt, .. } => {
                        assert_eq!(attempt, 1);
                        wire.push(frame);
                    }
                    other => panic!("expected a retransmission, got {other:?}"),
                }

                // Three physical arrivals → three acks (one a duplicate).
                let mut fresh = 0;
                for _ in 0..3 {
                    let (seq, _) = split_frame(&acks.pop());
                    if tx.on_ack(NODE_B, seq) {
                        fresh += 1;
                    }
                }
                assert_eq!(fresh, 2, "two logical messages, two fresh acks");
                assert_eq!(tx.outstanding(), 0, "unacked buffer must drain");
                safra.counter
            })
        };

        let receiver = {
            let wire = Arc::clone(&wire);
            let acks = Arc::clone(&acks);
            thread::spawn(move || {
                let mut rx = ReliableReceiver::new();
                let mut safra = Safra::new();
                let mut released = Vec::new();
                let mut dups = 0;
                for _ in 0..3 {
                    let (seq, payload) = split_frame(&wire.pop());
                    // Ack every physical arrival, duplicates included:
                    // the sender's copy may be a retransmission whose
                    // original ack was lost.
                    acks.push(seq.to_le_bytes().to_vec());
                    if rx.accept(NODE_A, seq, TAG, payload) {
                        while let Some((tag, p)) = rx.next_release(NODE_A) {
                            assert_eq!(tag, TAG);
                            safra.on_deliver();
                            released.push(p[0]);
                        }
                    } else {
                        dups += 1;
                    }
                }
                assert_eq!(
                    released,
                    vec![10, 11],
                    "release must be exactly-once and FIFO"
                );
                assert_eq!(dups, 1, "exactly one duplicate suppressed");
                assert_eq!(rx.held_frames(), 0, "no frame stuck above the watermark");
                safra.counter
            })
        };

        let sent = sender.join().expect("sender thread");
        let delivered = receiver.join().expect("receiver thread");
        assert_eq!(sent + delivered, 0, "global Safra sum must return to zero");
    });
    assert!(executions > 1, "model explored only one interleaving");
}

/// Pinned regression 1: a retransmit give-up must adjust the Safra
/// counter (and blacken the node) *before* the ring can observe
/// quiescence. Node 1 has one in-flight message that will never be
/// acked; a fabric thread gives it up concurrently with node 0 driving
/// probe rounds. In no interleaving may a probe come back clean while
/// the cancelled send still counts.
#[test]
fn give_up_adjusts_safra_before_quiescence() {
    let executions = loom::model::Builder::new().check(|| {
        let safra1 = Arc::new(Mutex::new(Safra::new()));
        safra1.lock().on_send(); // node 1's doomed in-flight message
        let gave_up = Arc::new((LoomMutex::new(false), Condvar::new()));

        let canceller = {
            let safra1 = Arc::clone(&safra1);
            let gave_up = Arc::clone(&gave_up);
            thread::spawn(move || {
                // Retry budget exhausted: the engine's GiveUp arm runs
                // escalate() → Safra::on_cancel(). Counter adjustment
                // first, activity signal second — never the reverse.
                safra1.lock().on_cancel();
                let (flag, cv) = &*gave_up;
                *flag.lock().expect("give-up flag") = true;
                cv.notify_all();
            })
        };

        // Node 0 drives probe rounds on a two-node ring.
        let mut safra0 = Safra::new();
        let mut clean = false;
        for _round in 0..4 {
            safra0.start_probe();
            // Token hop to node 1. Arrival and forwarding are separate
            // critical sections, exactly as in the engine (on_fabric
            // stores the token, try_pass_token forwards it later), so
            // the give-up can land between them.
            safra1.lock().on_token(false, 0);
            let (black, q) = safra1.lock().forward_token();
            // Token returns to node 0.
            safra0.on_token(black, q);
            safra0.has_token = false;
            if safra0.probe_clean() {
                // THE property: quiescence observed ⇒ the cancel has
                // already restored node 1's counter.
                assert_eq!(
                    safra1.lock().counter,
                    0,
                    "probe declared clean while the given-up send still counted"
                );
                clean = true;
                break;
            }
            // Dirty probe: block until the runtime reports activity
            // (the give-up), then re-probe — the engine equivalent of
            // node 0 restarting the ring after local activity.
            let (flag, cv) = &*gave_up;
            let mut g = flag.lock().expect("give-up flag");
            while !*g {
                g = cv.wait(g).expect("give-up flag");
            }
        }
        canceller.join().expect("canceller thread");
        assert!(clean, "ring never observed quiescence within 4 rounds");
        assert_eq!(
            safra0.counter + safra1.lock().counter,
            0,
            "cancel must restore the global sum"
        );
    });
    assert!(executions > 1, "model explored only one interleaving");
}

/// Pinned regression 2: a duplicate storm — two fabric threads each
/// delivering a complete, differently-ordered copy of the same three
/// frames — must release each message exactly once, in per-edge FIFO
/// order, and ack every physical arrival.
#[test]
fn duplicate_storm_exactly_once_fifo() {
    // Frames are built once outside the model (pure data, no schedule
    // points) and cloned into each execution.
    let mut tx = ReliableSender::new();
    let frames: Vec<(u64, Vec<u8>)> = (0u8..3)
        .map(|i| tx.next_frame(NODE_B, TAG, &[20 + i]))
        .collect();

    let executions = loom::model::Builder::new().check(move || {
        let rx = Arc::new(Mutex::new(ReliableReceiver::new()));
        let released = Arc::new(Mutex::new(Vec::new()));
        let acked = Arc::new(AtomicUsize::new(0));

        let storm = |order: [usize; 3]| {
            let frames = frames.clone();
            let rx = Arc::clone(&rx);
            let released = Arc::clone(&released);
            let acked = Arc::clone(&acked);
            thread::spawn(move || {
                for i in order {
                    let (seq, frame) = &frames[i];
                    // Arrival processing is one critical section, as on
                    // a worker thread: ack, dedup, release in order.
                    let mut g = rx.lock();
                    acked.fetch_add(1, Ordering::SeqCst);
                    if g.accept(NODE_A, *seq, TAG, frame[8..].to_vec()) {
                        while let Some((_, p)) = g.next_release(NODE_A) {
                            released.lock().push(p[0]);
                        }
                    }
                }
            })
        };

        let t1 = storm([0, 1, 2]);
        let t2 = storm([2, 0, 1]);
        t1.join().expect("storm thread 1");
        t2.join().expect("storm thread 2");

        assert_eq!(
            *released.lock(),
            vec![20, 21, 22],
            "each message exactly once, in per-edge FIFO order"
        );
        assert_eq!(acked.load(Ordering::SeqCst), 6, "every arrival acked");
        assert_eq!(rx.lock().held_frames(), 0);
    });
    assert!(executions > 1, "model explored only one interleaving");
}

/// The `mrts::sync` wrapper itself under loom: the threaded engine's
/// buffer-pool pattern (get-or-allocate / put-back through a shared
/// `Mutex<Vec<_>>`) must neither lose nor duplicate a buffer.
#[test]
fn sync_mutex_buffer_pool_round_trip() {
    let executions = loom::model::Builder::new().check(|| {
        let pool = Arc::new(Mutex::new(vec![vec![0u8; 4]]));
        let workers: Vec<_> = (0u8..2)
            .map(|id| {
                let pool = Arc::clone(&pool);
                thread::spawn(move || {
                    let mut buf = pool.lock().pop().unwrap_or_else(|| vec![0u8; 4]);
                    buf[0] = id + 1;
                    pool.lock().push(buf);
                })
            })
            .collect();
        for w in workers {
            w.join().expect("pool worker");
        }
        let pool = pool.lock();
        assert!(
            pool.len() == 1 || pool.len() == 2,
            "pool holds the recycled buffer(s), never loses one"
        );
        for b in pool.iter() {
            assert!(
                b[0] == 1 || b[0] == 2,
                "buffer round-tripped through a worker"
            );
        }
    });
    assert!(executions > 1, "model explored only one interleaving");
}
