//! Checkpoint/restore integration: state survives a full
//! serialize → rebuild cycle, including pinning, priorities, pending work,
//! and restores onto differently-shaped clusters.

use mrts::checkpoint::Checkpoint;
use mrts::codec::{PayloadReader, PayloadWriter};
use mrts::prelude::*;
use std::any::Any;

const TAG: TypeTag = TypeTag(0x33);
const H_ADD: HandlerId = HandlerId(1);

struct Acc {
    sum: u64,
    pad: Vec<u8>,
}

impl Acc {
    fn decode(buf: &[u8]) -> Result<Box<dyn MobileObject>, ObjectDecodeError> {
        let mut r = PayloadReader::new(buf);
        let sum = r.u64().unwrap();
        let pad = r.bytes().unwrap().to_vec();
        Ok(Box::new(Acc { sum, pad }))
    }
}

impl MobileObject for Acc {
    fn type_tag(&self) -> TypeTag {
        TAG
    }
    fn encode(&self, buf: &mut Vec<u8>) {
        let mut w = PayloadWriter::new();
        w.u64(self.sum).bytes(&self.pad);
        buf.extend_from_slice(&w.finish());
    }
    fn footprint(&self) -> usize {
        32 + self.pad.len()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn h_add(obj: &mut dyn MobileObject, _ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    obj.as_any_mut().downcast_mut::<Acc>().unwrap().sum += r.u64().unwrap();
}

fn register(rt: &mut DesRuntime) {
    rt.register_type(TAG, Acc::decode);
    rt.register_handler(H_ADD, "add", h_add);
}

fn add(v: u64) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(v);
    w.finish()
}

#[test]
fn phase_boundary_checkpoint_roundtrip() {
    // Phase 1 on the original runtime.
    let mut rt = DesRuntime::new(MrtsConfig::out_of_core(2, 8 << 10));
    register(&mut rt);
    let ptrs: Vec<MobilePtr> = (0..6)
        .map(|i| {
            rt.create_object(
                (i % 2) as NodeId,
                Box::new(Acc {
                    sum: 0,
                    pad: vec![0; 2048],
                }),
                128,
            )
        })
        .collect();
    for (i, &p) in ptrs.iter().enumerate() {
        rt.post(p, H_ADD, add(i as u64 + 1));
    }
    rt.run();

    // Checkpoint at quiescence; serialize to bytes and back.
    let cp = rt.checkpoint();
    let cp = Checkpoint::decode(&cp.encode()).unwrap();
    assert_eq!(cp.objects.len(), 6);

    // Restore into a fresh runtime (same shape) and run phase 2.
    let mut rt2 = DesRuntime::new(MrtsConfig::out_of_core(2, 8 << 10));
    register(&mut rt2);
    let mut rt2 = cp.restore_into(rt2);
    for &p in &ptrs {
        rt2.post(p, H_ADD, add(10));
    }
    rt2.run();
    for (i, &p) in ptrs.iter().enumerate() {
        rt2.with_object(p, |o| {
            assert_eq!(
                o.as_any().downcast_ref::<Acc>().unwrap().sum,
                i as u64 + 1 + 10
            );
        });
    }
}

#[test]
fn restore_onto_fewer_nodes() {
    let mut rt = DesRuntime::new(MrtsConfig::in_core(4));
    register(&mut rt);
    let ptrs: Vec<MobilePtr> = (0..8)
        .map(|i| {
            rt.create_object(
                (i % 4) as NodeId,
                Box::new(Acc {
                    sum: i as u64,
                    pad: vec![0; 128],
                }),
                128,
            )
        })
        .collect();
    rt.run();
    let cp = rt.checkpoint();

    // Restore the 4-node state onto 1 node (the paper's use case: resume
    // on fewer nodes and let the out-of-core layer handle the footprint).
    let mut rt1 = DesRuntime::new(MrtsConfig::out_of_core(1, 16 << 10));
    register(&mut rt1);
    let mut rt1 = cp.restore_into(rt1);
    assert_eq!(rt1.num_objects(), 8);
    for &p in &ptrs {
        rt1.post(p, H_ADD, add(100));
    }
    rt1.run();
    let mut total = 0;
    rt1.for_each_object(|_, o| total += o.as_any().downcast_ref::<Acc>().unwrap().sum);
    assert_eq!(total, (0..8).sum::<u64>() + 800);
}

#[test]
fn new_objects_after_restore_do_not_collide() {
    let mut rt = DesRuntime::new(MrtsConfig::in_core(1));
    register(&mut rt);
    let p0 = rt.create_object(
        0,
        Box::new(Acc {
            sum: 0,
            pad: vec![],
        }),
        128,
    );
    rt.run();
    let cp = rt.checkpoint();

    let mut rt2 = DesRuntime::new(MrtsConfig::in_core(1));
    register(&mut rt2);
    let mut rt2 = cp.restore_into(rt2);
    // A new object created after restore must get a fresh id.
    let p1 = rt2.create_object(
        0,
        Box::new(Acc {
            sum: 7,
            pad: vec![],
        }),
        128,
    );
    assert_ne!(p0.id, p1.id);
    rt2.post(p1, H_ADD, add(1));
    rt2.run();
    rt2.with_object(p1, |o| {
        assert_eq!(o.as_any().downcast_ref::<Acc>().unwrap().sum, 8);
    });
    assert_eq!(rt2.num_objects(), 2);
}

#[test]
fn locked_and_priority_flags_survive() {
    let mut rt = DesRuntime::new(MrtsConfig::in_core(1));
    register(&mut rt);
    let p = rt.create_object(
        0,
        Box::new(Acc {
            sum: 1,
            pad: vec![],
        }),
        250,
    );
    rt.lock_object(p);
    rt.run();
    let cp = rt.checkpoint();
    let e = &cp.objects[0];
    assert!(e.locked);
    assert_eq!(e.priority, 250);
    // And they decode identically.
    let back = Checkpoint::decode(&cp.encode()).unwrap();
    assert!(back.objects[0].locked);
    assert_eq!(back.objects[0].priority, 250);
}
