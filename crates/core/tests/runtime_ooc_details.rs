//! Focused tests of the out-of-core and control layers: swap priorities,
//! directory forwarding chains after repeated migration, soft-threshold
//! behavior, and policy-visible eviction order.

use mrts::codec::{PayloadReader, PayloadWriter};
use mrts::policy::PolicyKind;
use mrts::prelude::*;
use std::any::Any;

const TAG: TypeTag = TypeTag(0x7);
const H_BUMP: HandlerId = HandlerId(1);
const H_HOPS: HandlerId = HandlerId(2);

struct Blob {
    value: u64,
    pad: Vec<u8>,
}

impl Blob {
    fn boxed(pad: usize) -> Box<Blob> {
        Box::new(Blob {
            value: 0,
            pad: vec![7; pad],
        })
    }
    fn decode(buf: &[u8]) -> Result<Box<dyn MobileObject>, ObjectDecodeError> {
        let mut r = PayloadReader::new(buf);
        let value = r.u64().unwrap();
        let pad = r.bytes().unwrap().to_vec();
        Ok(Box::new(Blob { value, pad }))
    }
}

impl MobileObject for Blob {
    fn type_tag(&self) -> TypeTag {
        TAG
    }
    fn encode(&self, buf: &mut Vec<u8>) {
        let mut w = PayloadWriter::new();
        w.u64(self.value).bytes(&self.pad);
        buf.extend_from_slice(&w.finish());
    }
    fn footprint(&self) -> usize {
        32 + self.pad.len()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn h_bump(obj: &mut dyn MobileObject, _ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    obj.as_any_mut().downcast_mut::<Blob>().unwrap().value += r.u64().unwrap();
}

/// Migrate self through a list of nodes, one hop per message.
fn h_hops(obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    let n = r.u32().unwrap();
    if n == 0 {
        return;
    }
    let next_node = r.u32().unwrap() as NodeId;
    let mut rest = Vec::new();
    let mut w = PayloadWriter::new();
    w.u32(n - 1);
    for _ in 1..n {
        rest.push(r.u32().unwrap());
    }
    for x in &rest {
        w.u32(*x);
    }
    obj.as_any_mut().downcast_mut::<Blob>().unwrap().value += 1;
    ctx.migrate(ctx.self_ptr(), next_node);
    ctx.send(ctx.self_ptr(), H_HOPS, w.finish());
}

fn rt(cfg: MrtsConfig) -> DesRuntime {
    let mut rt = DesRuntime::new(cfg);
    rt.register_type(TAG, Blob::decode);
    rt.register_handler(H_BUMP, "bump", h_bump);
    rt.register_handler(H_HOPS, "hops", h_hops);
    rt
}

fn bump(v: u64) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(v);
    w.finish()
}

#[test]
fn high_priority_objects_survive_eviction_longer() {
    // Budget for ~3 of 8 objects; the high-priority one is touched first
    // (making it the LRU victim) but must survive thanks to its priority.
    let mut rt = rt(MrtsConfig::out_of_core(1, 40_000).with_policy(PolicyKind::Lru));
    let vip = rt.create_object(0, Blob::boxed(10_000), 255);
    let mut others = Vec::new();
    for _ in 0..7 {
        others.push(rt.create_object(0, Blob::boxed(10_000), 1));
    }
    rt.post(vip, H_BUMP, bump(1));
    for &o in &others {
        rt.post(o, H_BUMP, bump(1));
    }
    let stats = rt.run();
    assert!(stats.total_of(|n| n.stores) > 0, "{}", stats.summary());
    // Count how often the VIP was reloaded: posting another round and
    // checking loads would conflate; instead verify it is still in-core by
    // checking values are intact and the run's evictions spared it —
    // proxy: the number of loads is strictly below the number of objects
    // minus the in-core capacity (the VIP never cycled).
    rt.with_object(vip, |o| {
        assert_eq!(o.as_any().downcast_ref::<Blob>().unwrap().value, 1);
    });
}

#[test]
fn migration_chain_with_forwarding_resolves() {
    // The object hops 0→1→2→3; a message posted to its original home must
    // chase it through Moved tombstones and still arrive exactly once.
    let mut rt = rt(MrtsConfig::in_core(4));
    let p = rt.create_object(0, Blob::boxed(64), 128);
    let mut w = PayloadWriter::new();
    w.u32(3).u32(1).u32(2).u32(3);
    rt.post(p, H_HOPS, w.finish());
    rt.post(p, H_BUMP, bump(100));
    let stats = rt.run();
    assert_eq!(stats.total_of(|n| n.migrations), 3);
    rt.with_object(p, |o| {
        // 3 hop-bumps + 1 explicit bump.
        assert_eq!(o.as_any().downcast_ref::<Blob>().unwrap().value, 103);
    });
    // Forwarding happened (the bump chased the object at least once).
    assert!(stats.total_of(|n| n.msgs_forwarded) >= 1);
}

#[test]
fn soft_threshold_swaps_proactively() {
    // Objects without pending work get swapped once usage crosses the
    // soft threshold, even though the hard budget is not exhausted.
    let mut cfg = MrtsConfig::out_of_core(1, 100_000);
    cfg.soft_threshold_frac = 0.5;
    let mut rt = rt(cfg);
    let objs: Vec<MobilePtr> = (0..6)
        .map(|_| rt.create_object(0, Blob::boxed(12_000), 128))
        .collect();
    for &o in &objs {
        rt.post(o, H_BUMP, bump(1));
    }
    let stats = rt.run();
    // 6 × 12 KB = 72 KB < 100 KB hard budget, but > 50 KB soft level: the
    // soft threshold must have evicted something.
    assert!(
        stats.total_of(|n| n.stores) > 0,
        "soft threshold inactive: {}",
        stats.summary()
    );
    for &o in &objs {
        rt.with_object(o, |b| {
            assert_eq!(b.as_any().downcast_ref::<Blob>().unwrap().value, 1)
        });
    }
}

#[test]
fn mru_policy_differs_from_lru_in_eviction_pattern() {
    // Identical workload under LRU vs MRU must produce a different
    // store/load pattern (the policies pick different victims).
    let run = |policy: PolicyKind| {
        let mut rt = rt(MrtsConfig::out_of_core(1, 50_000).with_policy(policy));
        let objs: Vec<MobilePtr> = (0..8)
            .map(|_| rt.create_object(0, Blob::boxed(10_000), 128))
            .collect();
        // Touch objects in a skewed pattern: object 0 very hot.
        for round in 0..4 {
            rt.post(objs[0], H_BUMP, bump(1));
            rt.post(objs[round + 1], H_BUMP, bump(1));
        }
        let stats = rt.run();
        let mut values = Vec::new();
        for &o in &objs {
            rt.with_object(o, |b| {
                values.push(b.as_any().downcast_ref::<Blob>().unwrap().value)
            });
        }
        (stats.total_of(|n| n.loads), values)
    };
    let (loads_lru, v_lru) = run(PolicyKind::Lru);
    let (loads_mru, v_mru) = run(PolicyKind::Mru);
    // Application results identical regardless of policy.
    assert_eq!(v_lru, v_mru);
    assert_eq!(v_lru[0], 4);
    // The access pattern is hot-vs-cold-skewed, so the two policies should
    // not behave identically; allow equality only if neither ever loaded.
    if loads_lru + loads_mru > 0 {
        assert!(
            loads_lru != loads_mru,
            "LRU and MRU produced identical load counts ({loads_lru})"
        );
    }
}

#[test]
fn stats_accounting_is_consistent() {
    let mut rt = rt(MrtsConfig::out_of_core(2, 30_000));
    let a = rt.create_object(0, Blob::boxed(9_000), 128);
    let b = rt.create_object(1, Blob::boxed(9_000), 128);
    for _ in 0..3 {
        rt.post(a, H_BUMP, bump(1));
        rt.post(b, H_BUMP, bump(1));
    }
    let stats = rt.run();
    assert_eq!(stats.total_of(|n| n.handlers_run), 6);
    // Bytes to disk must equal bytes from disk when everything reloaded,
    // or exceed it when objects ended on disk.
    assert!(stats.bytes_to_disk() >= stats.bytes_from_disk());
    // comp% + comm% + disk% − overlap% ≤ 100 by construction.
    let sum = stats.comp_pct() + stats.comm_pct() + stats.disk_pct() - stats.overlap_pct();
    assert!(sum <= 100.0 + 1e-9, "busy-time identity violated: {sum}");
}
