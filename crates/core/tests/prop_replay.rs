//! Property tests for the record/replay decision-log codec: round
//! trips, byte-cap truncation, cut-anywhere truncation tolerance, and
//! robustness of the strict decoder against arbitrary (hostile) bytes.

use mrts::replay::{Decision, DecisionLog, IoKind, DEFAULT_LOG_BYTE_CAP};
use proptest::prelude::*;

fn arb_decision() -> impl Strategy<Value = Decision> {
    (
        0u8..7,
        any::<u8>(),
        any::<u16>(),
        any::<u32>(),
        any::<u64>(),
    )
        .prop_map(|(variant, kind, node, tag, word)| match variant {
            0 => Decision::FabricRecv { src: node, tag },
            1 => Decision::FabricEmpty,
            2 => Decision::IoDone {
                kind: IoKind::from_u8(kind % 7).expect("all seven kinds are encodable"),
                oid: word,
            },
            3 => Decision::IoEmpty,
            4 => Decision::FlushDeferred {
                dest: node,
                seq: word,
            },
            5 => Decision::TimerExpire {
                dest: node,
                seq: word,
            },
            _ => Decision::PumpEnd,
        })
}

fn arb_log() -> impl Strategy<Value = DecisionLog> {
    prop::collection::vec(prop::collection::vec(arb_decision(), 0..64), 0..5)
        .prop_map(|nodes| DecisionLog { nodes })
}

fn is_prefix_of(shorter: &DecisionLog, longer: &DecisionLog) -> bool {
    shorter.nodes.len() <= longer.nodes.len()
        && shorter
            .nodes
            .iter()
            .zip(&longer.nodes)
            .all(|(s, l)| s.len() <= l.len() && s[..] == l[..s.len()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn decision_log_roundtrips(log in arb_log()) {
        let (bytes, truncated) = log.encode(DEFAULT_LOG_BYTE_CAP);
        prop_assert!(!truncated, "default cap must fit a small log");
        let back = DecisionLog::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back, log);
    }

    /// A byte cap never produces an undecodable log: whole tail
    /// decisions are dropped, so what remains is a valid per-node
    /// prefix of the original.
    #[test]
    fn byte_cap_yields_a_decodable_prefix(log in arb_log(), cap in 16usize..256) {
        let (bytes, truncated) = log.encode(cap);
        let back = DecisionLog::decode(&bytes).expect("capped encoding decodes");
        prop_assert!(is_prefix_of(&back, &log));
        if !truncated {
            prop_assert_eq!(back, log);
        }
    }

    /// Cutting a valid encoding at any byte never panics, and the lossy
    /// decoder salvages only true prefixes of the recorded decisions —
    /// a replay from a torn log can be short, never wrong.
    #[test]
    fn truncated_log_salvages_a_prefix(log in arb_log(), cut_frac in 0.0f64..1.0) {
        let (bytes, _) = log.encode(DEFAULT_LOG_BYTE_CAP);
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        let (salvaged, err) = DecisionLog::decode_lossy(&bytes[..cut]);
        prop_assert!(is_prefix_of(&salvaged, &log));
        if cut == bytes.len() {
            prop_assert!(err.is_none());
            prop_assert_eq!(salvaged, log);
        }
    }

    /// The strict decoder is total over arbitrary bytes: a typed error
    /// or a valid log, never a panic.
    #[test]
    fn hostile_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = DecisionLog::decode(&bytes);
        let _ = DecisionLog::decode_lossy(&bytes);
    }
}
