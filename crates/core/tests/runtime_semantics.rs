//! End-to-end semantics tests for both MRTS engines (virtual-time DES and
//! threaded), using a small message-driven application: `Cell` objects
//! that count, forward around rings, and carry payload.

use mrts::codec::{PayloadReader, PayloadWriter};
use mrts::prelude::*;
use std::any::Any;

// ----- a tiny application: Cell objects ------------------------------------

const CELL_TAG: TypeTag = TypeTag(1);
const H_BUMP: HandlerId = HandlerId(1);
const H_RING: HandlerId = HandlerId(2);
const H_SPAWN: HandlerId = HandlerId(3);
const H_PAR: HandlerId = HandlerId(4);

struct Cell {
    value: u64,
    neighbors: Vec<MobilePtr>,
    pad: Vec<u8>,
}

impl Cell {
    fn new(pad: usize) -> Box<Cell> {
        Box::new(Cell {
            value: 0,
            neighbors: Vec::new(),
            pad: vec![0x5A; pad],
        })
    }

    fn decode(buf: &[u8]) -> Result<Box<dyn MobileObject>, ObjectDecodeError> {
        let mut r = PayloadReader::new(buf);
        let value = r.u64().unwrap();
        let neighbors = r.ptrs().unwrap();
        let pad = r.bytes().unwrap().to_vec();
        Ok(Box::new(Cell {
            value,
            neighbors,
            pad,
        }))
    }
}

impl MobileObject for Cell {
    fn type_tag(&self) -> TypeTag {
        CELL_TAG
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        let mut w = PayloadWriter::new();
        w.u64(self.value).ptrs(&self.neighbors).bytes(&self.pad);
        buf.extend_from_slice(&w.finish());
    }

    fn footprint(&self) -> usize {
        8 + 8 * self.neighbors.len() + self.pad.len() + 48
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn cell_mut(obj: &mut dyn MobileObject) -> &mut Cell {
    obj.as_any_mut().downcast_mut::<Cell>().unwrap()
}

/// Bump: add the u64 argument to the cell's value.
fn h_bump(obj: &mut dyn MobileObject, _ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    cell_mut(obj).value += r.u64().unwrap();
}

/// Ring: bump self, then forward to neighbors[0] with a decremented hop
/// count.
fn h_ring(obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    let hops = r.u64().unwrap();
    let cell = cell_mut(obj);
    cell.value += 1;
    if hops > 0 {
        let next = cell.neighbors[0];
        let mut w = PayloadWriter::new();
        w.u64(hops - 1);
        ctx.send(next, H_RING, w.finish());
    }
}

/// Spawn: create `n` child cells, bump each once, record their pointers.
fn h_spawn(obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    let n = r.u64().unwrap();
    let pad = r.u64().unwrap() as usize;
    for _ in 0..n {
        let child = ctx.create(Cell::new(pad));
        let mut w = PayloadWriter::new();
        w.u64(1);
        ctx.send(child, H_BUMP, w.finish());
        cell_mut(obj).neighbors.push(child);
    }
}

/// Parallel: run `n` child tasks that each do a bit of arithmetic; count
/// task batch completions in value.
fn h_par(obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    let n = r.u64().unwrap() as usize;
    let tasks: Vec<mrts::compute::Task> = (0..n)
        .map(|i| {
            let t: mrts::compute::Task = Box::new(move || {
                // Enough real work per task (~20 µs) that the modeled
                // makespan is dominated by task durations, not by the
                // per-task dispatch overhead.
                let mut acc = i as u64;
                for k in 0..50_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                std::hint::black_box(acc);
            });
            t
        })
        .collect();
    ctx.run_tasks(tasks);
    cell_mut(obj).value += n as u64;
}

fn register_des(rt: &mut DesRuntime) {
    rt.register_type(CELL_TAG, Cell::decode);
    rt.register_handler(H_BUMP, "bump", h_bump);
    rt.register_handler(H_RING, "ring", h_ring);
    rt.register_handler(H_SPAWN, "spawn", h_spawn);
    rt.register_handler(H_PAR, "par", h_par);
}

fn register_threaded(rt: &mut ThreadedRuntime) {
    rt.register_type(CELL_TAG, Cell::decode);
    rt.register_handler(H_BUMP, "bump", h_bump);
    rt.register_handler(H_RING, "ring", h_ring);
    rt.register_handler(H_SPAWN, "spawn", h_spawn);
    rt.register_handler(H_PAR, "par", h_par);
}

fn bump_payload(v: u64) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(v);
    w.finish()
}

// ----- DES engine ------------------------------------------------------------

#[test]
fn des_single_message() {
    let mut rt = DesRuntime::new(MrtsConfig::in_core(1));
    register_des(&mut rt);
    let p = rt.create_object(0, Cell::new(0), 128);
    rt.post(p, H_BUMP, bump_payload(7));
    let stats = rt.run();
    assert_eq!(stats.total_of(|n| n.handlers_run), 1);
    rt.with_object(p, |o| {
        assert_eq!(o.as_any().downcast_ref::<Cell>().unwrap().value, 7);
    });
}

#[test]
fn des_ring_across_nodes() {
    let mut rt = DesRuntime::new(MrtsConfig::in_core(4));
    register_des(&mut rt);
    // One cell per node, in a ring.
    let cells: Vec<MobilePtr> = (0..4)
        .map(|n| rt.create_object(n, Cell::new(0), 128))
        .collect();
    for i in 0..4 {
        let next = cells[(i + 1) % 4];
        // Wire neighbors directly through the bootstrap: send a spawn-less
        // setup via closure is not possible, so use with_object-style
        // initialization: create with neighbor built in via a bump trick.
        // Simpler: post a ring message after manually wiring neighbors.
        let _ = next;
    }
    // Wire neighbors by rebuilding the cells with neighbors.
    let mut rt = DesRuntime::new(MrtsConfig::in_core(4));
    register_des(&mut rt);
    let ids: Vec<MobilePtr> = (0..4)
        .map(|n| {
            let mut c = Cell::new(0);
            // Neighbor pointers are predictable: object seq 0 on node (n+1)%4.
            c.neighbors
                .push(MobilePtr::new(ObjectId::new(((n + 1) % 4) as NodeId, 0)));
            rt.create_object(n as NodeId, c, 128)
        })
        .collect();
    // 12 hops: each cell is visited 3 or 4 times.
    rt.post(ids[0], H_RING, bump_payload(11));
    let stats = rt.run();
    assert_eq!(stats.total_of(|n| n.handlers_run), 12);
    let mut values = Vec::new();
    for &p in &ids {
        rt.with_object(p, |o| {
            values.push(o.as_any().downcast_ref::<Cell>().unwrap().value)
        });
    }
    assert_eq!(values.iter().sum::<u64>(), 12);
    // Communication must have been charged (remote hops).
    assert!(stats.comm_pct() > 0.0);
    assert!(stats.total > std::time::Duration::ZERO);
}

#[test]
fn des_spawn_creates_children() {
    let mut rt = DesRuntime::new(MrtsConfig::in_core(1));
    register_des(&mut rt);
    let p = rt.create_object(0, Cell::new(0), 128);
    let mut w = PayloadWriter::new();
    w.u64(10).u64(100);
    rt.post(p, H_SPAWN, w.finish());
    rt.run();
    assert_eq!(rt.num_objects(), 11);
    let mut total = 0u64;
    rt.for_each_object(|_, o| total += o.as_any().downcast_ref::<Cell>().unwrap().value);
    assert_eq!(total, 10); // each child bumped once
}

#[test]
fn des_out_of_core_spills_and_reloads() {
    // 20 cells of ~10KB each with a 64KB budget: most must spill.
    let mut cfg = MrtsConfig::out_of_core(1, 64 * 1024);
    cfg.soft_threshold_frac = 0.25;
    let mut rt = DesRuntime::new(cfg);
    register_des(&mut rt);
    let cells: Vec<MobilePtr> = (0..20)
        .map(|_| rt.create_object(0, Cell::new(10 * 1024), 128))
        .collect();
    // Several rounds of bumps touching every cell.
    for round in 0..3 {
        for &c in &cells {
            rt.post(c, H_BUMP, bump_payload(round + 1));
        }
    }
    let stats = rt.run();
    assert!(
        stats.total_of(|n| n.stores) > 0,
        "objects must spill: {}",
        stats.summary()
    );
    assert!(stats.total_of(|n| n.loads) > 0, "objects must reload");
    assert!(stats.disk_pct() > 0.0);
    // Peak memory stays in the vicinity of the budget (hard threshold can
    // overshoot by one object).
    assert!(
        stats.peak_mem() < 96 * 1024,
        "peak {} exceeded budget with slack",
        stats.peak_mem()
    );
    // Values survived the round trips.
    for &c in &cells {
        rt.with_object(c, |o| {
            assert_eq!(o.as_any().downcast_ref::<Cell>().unwrap().value, 6);
        });
    }
}

#[test]
fn des_locked_object_never_spills() {
    let mut rt = DesRuntime::new(MrtsConfig::out_of_core(1, 32 * 1024));
    register_des(&mut rt);
    let pinned = rt.create_object(0, Cell::new(8 * 1024), 255);
    rt.lock_object(pinned);
    let others: Vec<MobilePtr> = (0..10)
        .map(|_| rt.create_object(0, Cell::new(8 * 1024), 1))
        .collect();
    for &c in &others {
        rt.post(c, H_BUMP, bump_payload(1));
    }
    rt.post(pinned, H_BUMP, bump_payload(1));
    let stats = rt.run();
    assert!(stats.total_of(|n| n.stores) > 0);
    // The pinned object must never have been loaded (it never left).
    rt.with_object(pinned, |o| {
        assert_eq!(o.as_any().downcast_ref::<Cell>().unwrap().value, 1);
    });
}

#[test]
fn des_is_deterministic() {
    let run = || {
        let mut rt = DesRuntime::new(MrtsConfig::out_of_core(2, 64 * 1024));
        register_des(&mut rt);
        let cells: Vec<MobilePtr> = (0..12)
            .map(|i| rt.create_object((i % 2) as NodeId, Cell::new(8 * 1024), 128))
            .collect();
        for (i, &c) in cells.iter().enumerate() {
            rt.post(c, H_BUMP, bump_payload(i as u64));
        }
        let stats = rt.run();
        // Handler durations are *measured*, so virtual totals jitter at the
        // microsecond scale run-to-run; the event structure (counts) is
        // what must be deterministic.
        (
            stats.total_of(|n| n.stores),
            stats.total_of(|n| n.loads),
            stats.total_of(|n| n.handlers_run),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn des_parallel_tasks_speed_up_with_cores() {
    let time_with_cores = |cores: usize| {
        let mut rt = DesRuntime::new(MrtsConfig::in_core(1).with_cores(cores));
        register_des(&mut rt);
        let p = rt.create_object(0, Cell::new(0), 128);
        let mut w = PayloadWriter::new();
        w.u64(64);
        rt.post(p, H_PAR, w.finish());
        let stats = rt.run();
        rt.with_object(p, |o| {
            assert_eq!(o.as_any().downcast_ref::<Cell>().unwrap().value, 64)
        });
        stats.total
    };
    let t1 = time_with_cores(1);
    let t4 = time_with_cores(4);
    let speedup = t1.as_secs_f64() / t4.as_secs_f64();
    assert!(
        speedup > 2.0,
        "expected near-4x virtual speedup, got {speedup:.2} (t1={t1:?}, t4={t4:?})"
    );
}

#[test]
fn des_migration_moves_object_and_messages_follow() {
    let mut rt = DesRuntime::new(MrtsConfig::in_core(3));
    register_des(&mut rt);
    let p = rt.create_object(0, Cell::new(64), 128);
    // A handler that migrates self: use spawn handler trick — instead,
    // bootstrap a migration via a custom handler.
    fn h_move(_obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        let dest = r.u64().unwrap() as NodeId;
        ctx.migrate(ctx.self_ptr(), dest);
    }
    rt.register_handler(HandlerId(99), "move", h_move);
    let mut w = PayloadWriter::new();
    w.u64(2);
    rt.post(p, HandlerId(99), w.finish());
    // And a bump posted from node 0's bootstrap; it must reach the object
    // wherever it ends up.
    rt.post(p, H_BUMP, bump_payload(5));
    let stats = rt.run();
    assert_eq!(stats.total_of(|n| n.migrations), 1);
    rt.with_object(p, |o| {
        assert_eq!(o.as_any().downcast_ref::<Cell>().unwrap().value, 5);
    });
}

#[test]
fn des_multicast_collects_and_delivers() {
    let mut rt = DesRuntime::new(MrtsConfig::in_core(3));
    register_des(&mut rt);
    // Three cells on three nodes; a coordinator cell multicasts to all,
    // delivering to the first only.
    let a = rt.create_object(0, Cell::new(16), 128);
    let b = rt.create_object(1, Cell::new(16), 128);
    let c = rt.create_object(2, Cell::new(16), 128);
    fn h_mc(_obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        let targets = r.ptrs().unwrap();
        ctx.multicast(targets, 1, H_BUMP, {
            let mut w = PayloadWriter::new();
            w.u64(10);
            w.finish()
        });
    }
    rt.register_handler(HandlerId(98), "mc", h_mc);
    let mut w = PayloadWriter::new();
    w.ptrs(&[a, b, c]);
    rt.post(a, HandlerId(98), w.finish());
    rt.run();
    // Only `a` (the first target) received the bump...
    rt.with_object(a, |o| {
        assert_eq!(o.as_any().downcast_ref::<Cell>().unwrap().value, 10)
    });
    rt.with_object(b, |o| {
        assert_eq!(o.as_any().downcast_ref::<Cell>().unwrap().value, 0)
    });
    // ...and all three now live on node 0 (collected by migration).
    assert_eq!(rt.num_objects(), 3);
}

// ----- threaded engine ---------------------------------------------------------

#[test]
fn threaded_single_node_semantics() {
    let mut rt = ThreadedRuntime::new(MrtsConfig::in_core(1));
    register_threaded(&mut rt);
    let p = rt.create_object(0, Cell::new(0), 128);
    rt.post(p, H_BUMP, bump_payload(3));
    rt.post(p, H_BUMP, bump_payload(4));
    let stats = rt.run();
    assert_eq!(stats.total_of(|n| n.handlers_run), 2);
    rt.with_object(p, |o| {
        assert_eq!(o.as_any().downcast_ref::<Cell>().unwrap().value, 7);
    });
}

#[test]
fn threaded_ring_terminates_across_nodes() {
    let mut rt = ThreadedRuntime::new(MrtsConfig::in_core(3));
    register_threaded(&mut rt);
    let ids: Vec<MobilePtr> = (0..3)
        .map(|n| {
            let mut c = Cell::new(0);
            c.neighbors
                .push(MobilePtr::new(ObjectId::new(((n + 1) % 3) as NodeId, 0)));
            rt.create_object(n as NodeId, c, 128)
        })
        .collect();
    rt.post(ids[0], H_RING, bump_payload(29));
    let stats = rt.run();
    assert_eq!(stats.total_of(|n| n.handlers_run), 30);
    let mut total = 0u64;
    rt.for_each_object(|_, o| total += o.as_any().downcast_ref::<Cell>().unwrap().value);
    assert_eq!(total, 30);
}

#[test]
fn threaded_out_of_core_with_real_files() {
    let spill = std::env::temp_dir().join(format!("mrts-test-spill-{}", std::process::id()));
    let mut cfg = MrtsConfig::out_of_core(1, 64 * 1024);
    cfg.spill_dir = Some(spill.clone());
    let mut rt = ThreadedRuntime::new(cfg);
    register_threaded(&mut rt);
    // A ring of fat cells: the token revisits evicted cells, forcing real
    // file reloads (pre-queued messages alone would drain before any
    // eviction, since objects with queued work are never evicted).
    let cells: Vec<MobilePtr> = (0..16)
        .map(|i| {
            let mut c = Cell::new(12 * 1024);
            c.neighbors
                .push(MobilePtr::new(ObjectId::new(0, ((i + 1) % 16) as u64)));
            rt.create_object(0, c, 128)
        })
        .collect();
    // 48 visits: each of the 16 cells exactly 3 times.
    rt.post(cells[0], H_RING, bump_payload(47));
    let stats = rt.run();
    assert!(stats.total_of(|n| n.stores) > 0, "{}", stats.summary());
    assert!(stats.total_of(|n| n.loads) > 0, "{}", stats.summary());
    for &c in &cells {
        rt.with_object(c, |o| {
            assert_eq!(o.as_any().downcast_ref::<Cell>().unwrap().value, 3);
        });
    }
    let _ = std::fs::remove_dir_all(spill);
}

#[test]
fn threaded_spawn_and_work_stealing_pool() {
    let mut rt = ThreadedRuntime::new(MrtsConfig::in_core(2).with_cores(2));
    register_threaded(&mut rt);
    let p = rt.create_object(0, Cell::new(0), 128);
    let mut w = PayloadWriter::new();
    w.u64(5).u64(16);
    rt.post(p, H_SPAWN, w.finish());
    let mut w2 = PayloadWriter::new();
    w2.u64(32);
    rt.post(p, H_PAR, w2.finish());
    rt.run();
    assert_eq!(rt.num_objects(), 6);
    rt.with_object(p, |o| {
        assert_eq!(o.as_any().downcast_ref::<Cell>().unwrap().value, 32);
    });
}

#[test]
fn threaded_migration_and_directory_forwarding() {
    let mut rt = ThreadedRuntime::new(MrtsConfig::in_core(3));
    register_threaded(&mut rt);
    fn h_move(_obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        let dest = r.u64().unwrap() as NodeId;
        ctx.migrate(ctx.self_ptr(), dest);
    }
    rt.register_handler(HandlerId(99), "move", h_move);
    let p = rt.create_object(0, Cell::new(64), 128);
    let mut w = PayloadWriter::new();
    w.u64(1);
    rt.post(p, HandlerId(99), w.finish());
    rt.post(p, H_BUMP, bump_payload(9));
    let stats = rt.run();
    assert_eq!(stats.total_of(|n| n.migrations), 1);
    rt.with_object(p, |o| {
        assert_eq!(o.as_any().downcast_ref::<Cell>().unwrap().value, 9);
    });
}
