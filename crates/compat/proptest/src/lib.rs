//! Std-only shim for the `proptest` API surface this workspace uses:
//! the `proptest!`/`prop_assert*`/`prop_assume!` macros, `Strategy` with
//! `prop_map`/`prop_flat_map`/`prop_filter`, `any::<T>()`, `Just`, range
//! strategies, `prop::collection::vec`, `prop::option::of`,
//! `prop::sample::Index`, and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberate for a hermetic build:
//! no shrinking (a failing case reports its generated inputs verbatim),
//! no persistence (`.proptest-regressions` files are ignored), and the
//! generator is a splitmix64 stream seeded deterministically from the
//! test name, so every run explores the same cases.

pub mod test_runner {
    /// Error produced by a single test case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case was rejected (filter miss or `prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Shim equivalent of `proptest::test_runner::Config`
    /// (re-exported from the prelude as `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic splitmix64 stream; seeded from the test name so each
    /// test explores a distinct but reproducible sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % bound
        }
    }

    /// Drives `cfg.cases` passing cases of `case`, skipping rejected ones.
    /// Panics (failing the `#[test]`) on the first `Fail`.
    pub fn run<F>(cfg: Config, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::from_name(name);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let reject_cap = cfg.cases.saturating_mul(64).max(4096);
        while passed < cfg.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    if rejected > reject_cap {
                        panic!(
                            "proptest '{name}': too many rejected cases \
                             ({rejected} rejects, last: {why})"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed after {passed} passing cases\n{msg}");
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::{TestCaseError, TestRng};
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// A generator of values. Unlike real proptest there is no value tree /
    /// shrinking: `generate` produces the final value directly.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError>;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                f,
            }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> Result<T, TestCaseError> {
            Ok(self.0.clone())
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Result<O, TestCaseError> {
            Ok((self.f)(self.inner.generate(rng)?))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Result<S2::Value, TestCaseError> {
            (self.f)(self.inner.generate(rng)?).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Result<S::Value, TestCaseError> {
            // Bounded local retry before giving the runner a rejection.
            for _ in 0..256 {
                let v = self.inner.generate(rng)?;
                if (self.f)(&v) {
                    return Ok(v);
                }
            }
            Err(TestCaseError::reject(self.whence.clone()))
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    Ok((self.start as i128 + rng.below(span) as i128) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    Ok((start as i128 + rng.below(span) as i128) as $t)
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> Result<f64, TestCaseError> {
            assert!(self.start < self.end, "empty range strategy");
            Ok(self.start + rng.unit_f64() * (self.end - self.start))
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> Result<f32, TestCaseError> {
            assert!(self.start < self.end, "empty range strategy");
            Ok(self.start + rng.unit_f64() as f32 * (self.end - self.start))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
                    Ok(($(self.$idx.generate(rng)?,)+))
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// Strategy for `any::<T>()`.
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Result<T, TestCaseError> {
            Ok(T::arbitrary(rng))
        }
    }
}

pub mod arbitrary {
    use crate::strategy::AnyStrategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    pub trait Arbitrary: Sized + Debug {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Mix of well-scaled values and raw bit patterns (the latter
            // cover inf/NaN/subnormals for filters like `is_finite`).
            match rng.next_u64() % 4 {
                0 => f64::from_bits(rng.next_u64()),
                1 => (rng.unit_f64() - 0.5) * 1e6,
                2 => (rng.unit_f64() - 0.5) * 2.0,
                _ => (rng.next_u64() as i64) as f64,
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::arbitrary(rng) as f32
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::{TestCaseError, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
            let span = (self.size.end - self.size.start) as u128;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::{TestCaseError, TestRng};

    pub struct OptionStrategy<S>(S);

    /// `prop::option::of(strategy)`: `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
            if rng.next_u64() % 4 == 0 {
                Ok(None)
            } else {
                Ok(Some(self.0.generate(rng)?))
            }
        }
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.0 % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Mirror of real proptest's `prop` re-export module.
pub mod prop {
    pub use crate::{collection, option, sample};
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left != *right, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($cfg, stringify!($name), |__rng| {
                let __vals = ( $( $crate::strategy::Strategy::generate(&{ $strat }, __rng)?, )+ );
                let __inputs = format!("{:#?}", __vals);
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        let ( $($arg,)+ ) = __vals;
                        $body
                        ::std::result::Result::Ok(())
                    },
                ));
                match __outcome {
                    Ok(Ok(())) => ::std::result::Result::Ok(()),
                    Ok(Err($crate::test_runner::TestCaseError::Fail(msg))) => {
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                            format!("{msg}\ninputs: {__inputs}"),
                        ))
                    }
                    Ok(Err(reject)) => ::std::result::Result::Err(reject),
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic>".to_string());
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                            format!("panicked: {msg}\ninputs: {__inputs}"),
                        ))
                    }
                }
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Wrapped(u64);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 1usize..9, b in -4i32..4, f in 0.25..0.75f64) {
            prop_assert!((1..9).contains(&a));
            prop_assert!((-4..4).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(any::<u8>(), 1..20),
            o in prop::option::of(Just(7u32)),
            w in (0u64..100).prop_map(Wrapped),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(o.is_none() || o == Some(7));
            prop_assert!(w.0 < 100);
            prop_assert!(idx.index(v.len()) < v.len());
        }

        #[test]
        fn flat_map_respects_dependency(
            (len, v) in (1usize..8).prop_flat_map(|len| {
                (Just(len), prop::collection::vec(0u32..10, len..len + 1))
            })
        ) {
            prop_assert_eq!(v.len(), len);
        }

        #[test]
        fn filter_and_assume(x in (0u64..100).prop_filter("even", |x| x % 2 == 0)) {
            prop_assume!(x != 2);
            prop_assert_eq!(x % 2, 0, "filter let an odd value through: {x}");
            prop_assert_ne!(x, 2);
        }
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failing_case_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "impossible bound");
            }
        }
        inner();
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = (0u64..1000, 0u64..1000);
        let mut r1 = crate::test_runner::TestRng::from_name("det");
        let mut r2 = crate::test_runner::TestRng::from_name("det");
        for _ in 0..16 {
            assert_eq!(s.generate(&mut r1).unwrap(), s.generate(&mut r2).unwrap());
        }
    }
}
