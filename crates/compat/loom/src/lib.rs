//! Hermetic shim for the `loom` API surface used by this workspace.
//!
//! Like the real `loom`, this crate model-checks concurrent code: the
//! closure passed to [`model`] is executed repeatedly, once per distinct
//! thread interleaving, until the bounded schedule space is exhausted or
//! an execution fails (assertion panic or deadlock). The mechanism is a
//! *controlled cooperative scheduler*: every synchronization operation
//! (mutex acquire/release, condvar wait/notify, atomic access, spawn,
//! join, yield) is a **schedule point** where exactly one runnable thread
//! is chosen to proceed; all other threads are parked. Each execution
//! records its decision trace; depth-first search over the last
//! not-fully-explored decision enumerates the space.
//!
//! Two bounds keep exploration finite and fast, in the CHESS style:
//!
//! * a **preemption bound** (default 2, `LOOM_MAX_PREEMPTIONS`):
//!   involuntary context switches per execution are limited; voluntary
//!   switches (blocking, yielding, exiting) are always explored. Most
//!   concurrency bugs manifest within 2 preemptions.
//! * an **iteration cap** (default 500 000, `LOOM_MAX_ITERATIONS`):
//!   a backstop against state-space blowup; hitting it is an error, not
//!   a silent truncation.
//!
//! Semantics are sequentially consistent (the scheduler serializes all
//! operations), which is sound for the lock/counter protocols checked
//! here; the real loom additionally models C11 weak orderings. Checked
//! closures must be deterministic apart from scheduling — replay
//! divergence is detected and reported rather than silently explored.
//!
//! Outside [`model`], every primitive falls back to plain `std`
//! behavior, so code compiled with `--cfg loom` still runs normally
//! when touched outside a model run.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::Ordering as StdOrdering;
use std::sync::{Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};

// ---------------------------------------------------------------------
// Exploration state
// ---------------------------------------------------------------------

/// One scheduling decision: how many threads were runnable, which was
/// picked. `chosen + 1 < options` means unexplored siblings remain.
#[derive(Clone, Copy, Debug)]
struct Choice {
    options: u32,
    chosen: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Want {
    Lock(usize),
    Cond { cv: usize, lock: usize },
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CState {
    Ready,
    Wants(Want),
    Finished,
}

struct St {
    cells: Vec<CState>,
    active: usize,
    lock_holder: Vec<Option<usize>>,
    next_res: usize,
    prefix: Vec<Choice>,
    trace: Vec<Choice>,
    preemptions: usize,
    bound: Option<usize>,
    done: bool,
    aborted: bool,
    fail: Option<String>,
}

struct Shared {
    mu: StdMutex<St>,
    cv: StdCondvar,
}

struct LoomAbort;

impl Shared {
    fn new(prefix: Vec<Choice>, bound: Option<usize>) -> Shared {
        Shared {
            mu: StdMutex::new(St {
                cells: Vec::new(),
                active: 0,
                lock_holder: Vec::new(),
                next_res: 0,
                prefix,
                trace: Vec::new(),
                preemptions: 0,
                bound,
                done: false,
                aborted: false,
                fail: None,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, St> {
        self.mu.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn runnable(st: &St, t: usize) -> bool {
        match st.cells[t] {
            CState::Ready => true,
            CState::Finished => false,
            CState::Wants(Want::Lock(r)) => st.lock_holder[r].is_none(),
            CState::Wants(Want::Cond { .. }) => false,
            CState::Wants(Want::Join(c)) => st.cells[c] == CState::Finished,
        }
    }

    /// Pick the next active thread at a schedule point reached by `me`.
    /// Must be called with the state lock held.
    fn reschedule(&self, st: &mut St, me: usize) {
        if st.aborted {
            return;
        }
        let me_runnable = Self::runnable(st, me);
        let mut options: Vec<usize> = Vec::new();
        if me_runnable {
            options.push(me);
        }
        for t in 0..st.cells.len() {
            if t != me && Self::runnable(st, t) {
                options.push(t);
            }
        }
        if options.is_empty() {
            if st.cells.iter().all(|c| *c == CState::Finished) {
                st.done = true;
            } else {
                let blocked: Vec<(usize, CState)> = st
                    .cells
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| **c != CState::Finished)
                    .map(|(i, c)| (i, *c))
                    .collect();
                st.fail = Some(format!("deadlock: all live threads blocked: {blocked:?}"));
                self.abort(st);
            }
            self.cv.notify_all();
            return;
        }
        // Preemption bounding: once the budget is spent, a runnable
        // active thread always continues (a single forced option).
        let budget_spent = st.bound.is_some_and(|b| st.preemptions >= b);
        let effective: Vec<usize> = if me_runnable && budget_spent {
            vec![me]
        } else {
            options
        };
        let step = st.trace.len();
        let chosen_ix = if step < st.prefix.len() {
            let c = st.prefix[step];
            if c.chosen as usize >= effective.len() {
                st.fail = Some(format!(
                    "non-deterministic model: replay step {step} chose {} of {} options",
                    c.chosen,
                    effective.len()
                ));
                self.abort(st);
                return;
            }
            c.chosen as usize
        } else {
            0
        };
        st.trace.push(Choice {
            options: effective.len() as u32,
            chosen: chosen_ix as u32,
        });
        if st.trace.len() > 100_000 {
            st.fail = Some("schedule too long (> 100000 points): model not bounded".into());
            self.abort(st);
            return;
        }
        let next = effective[chosen_ix];
        if me_runnable && next != me {
            st.preemptions += 1;
        }
        st.active = next;
        self.cv.notify_all();
    }

    fn abort(&self, st: &mut St) {
        st.aborted = true;
        self.cv.notify_all();
    }

    /// Park until this thread is active again (or the run is aborted,
    /// in which case unwind out of user code).
    fn wait_active(&self, mut st: std::sync::MutexGuard<'_, St>, me: usize) {
        while !st.aborted && st.active != me {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        let aborted = st.aborted;
        drop(st);
        if aborted {
            std::panic::panic_any(LoomAbort);
        }
    }

    /// A plain schedule point for thread `me`.
    fn point(&self, me: usize) {
        let mut st = self.lock();
        if st.aborted {
            drop(st);
            std::panic::panic_any(LoomAbort);
        }
        self.reschedule(&mut st, me);
        self.wait_active(st, me);
    }
}

// Per-OS-thread handle into the active model run.
thread_local! {
    static CTX: RefCell<Option<(StdArc<Shared>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> Option<(StdArc<Shared>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Marks the controlled thread finished on exit (normal or panicking)
/// and hands the schedule on.
struct ExitGuard {
    sh: StdArc<Shared>,
    me: usize,
}

impl Drop for ExitGuard {
    fn drop(&mut self) {
        let mut st = self.sh.lock();
        if std::thread::panicking() && st.fail.is_none() && !st.aborted {
            st.fail = Some(format!(
                "thread {} panicked (see stderr for the panic message)",
                self.me
            ));
            self.sh.abort(&mut st);
        }
        st.cells[self.me] = CState::Finished;
        if st.aborted {
            if st.cells.iter().all(|c| *c == CState::Finished) {
                st.done = true;
            }
            self.sh.cv.notify_all();
            return;
        }
        self.sh.reschedule(&mut st, self.me);
    }
}

fn spawn_controlled<T: Send + 'static>(
    sh: StdArc<Shared>,
    me: usize,
    f: impl FnOnce() -> T + Send + 'static,
) -> std::thread::JoinHandle<Option<T>> {
    std::thread::Builder::new()
        .name(format!("loom-{me}"))
        .spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((sh.clone(), me)));
            let _guard = ExitGuard { sh: sh.clone(), me };
            // Park until first scheduled.
            let st = sh.lock();
            sh.wait_active(st, me);
            let out = f();
            Some(out)
        })
        .expect("spawn controlled thread")
}

/// After a completed execution, compute the replay prefix for the next
/// one: deepest decision with an unexplored sibling, advanced by one.
fn next_prefix(trace: &[Choice]) -> Option<Vec<Choice>> {
    for i in (0..trace.len()).rev() {
        if trace[i].chosen + 1 < trace[i].options {
            let mut p = trace[..=i].to_vec();
            p[i].chosen += 1;
            return Some(p);
        }
    }
    None
}

// Model runs are serialized process-wide: the scheduler state is global
// per run and tests may execute on multiple harness threads.
static MODEL_GATE: StdMutex<()> = StdMutex::new(());

pub mod model {
    use super::*;

    /// Configurable model runner, mirroring `loom::model::Builder`.
    pub struct Builder {
        /// Max involuntary context switches per execution; `None` is a
        /// full (unbounded) DFS.
        pub preemption_bound: Option<usize>,
        /// Hard cap on explored executions.
        pub max_iterations: usize,
        /// Print a one-line summary after exploration.
        pub log: bool,
    }

    impl Default for Builder {
        fn default() -> Self {
            let bound = std::env::var("LOOM_MAX_PREEMPTIONS")
                .ok()
                .and_then(|v| v.parse::<i64>().ok())
                .map_or(Some(2), |n| if n < 0 { None } else { Some(n as usize) });
            let max_iterations = std::env::var("LOOM_MAX_ITERATIONS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(500_000);
            let log = std::env::var("LOOM_LOG").is_ok();
            Builder {
                preemption_bound: bound,
                max_iterations,
                log,
            }
        }
    }

    impl Builder {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Builder {
            Builder::default()
        }

        /// Explore `f` exhaustively within bounds. Panics if any
        /// execution fails (assertion, deadlock, nondeterminism) or if
        /// the iteration cap is hit; returns the number of distinct
        /// executions otherwise.
        pub fn check<F>(&self, f: F) -> usize
        where
            F: Fn() + Send + Sync + 'static,
        {
            let _gate = MODEL_GATE.lock().unwrap_or_else(PoisonError::into_inner);
            let f = StdArc::new(f);
            let mut prefix: Vec<Choice> = Vec::new();
            let mut iters = 0usize;
            loop {
                iters += 1;
                let sh = StdArc::new(Shared::new(prefix.clone(), self.preemption_bound));
                {
                    let mut st = sh.lock();
                    st.cells.push(CState::Ready);
                    st.active = 0;
                }
                let froot = f.clone();
                let root = spawn_controlled(sh.clone(), 0, move || froot());
                {
                    let mut st = sh.lock();
                    while !st.done {
                        st = sh.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                    }
                }
                let _ = root.join();
                let st = sh.lock();
                if let Some(msg) = &st.fail {
                    let trace: Vec<u32> = st.trace.iter().map(|c| c.chosen).collect();
                    panic!(
                        "loom: model failed on execution {iters}: {msg}\n\
                         failing schedule (choice per decision point): {trace:?}"
                    );
                }
                let trace = st.trace.clone();
                drop(st);
                match next_prefix(&trace) {
                    Some(p) => prefix = p,
                    None => {
                        if self.log {
                            eprintln!(
                                "loom: explored {iters} executions exhaustively \
                                 (preemption bound {:?})",
                                self.preemption_bound
                            );
                        }
                        return iters;
                    }
                }
                assert!(
                    iters < self.max_iterations,
                    "loom: exceeded {} executions without exhausting the \
                     schedule space; tighten the scenario or raise \
                     LOOM_MAX_ITERATIONS",
                    self.max_iterations
                );
            }
        }
    }
}

/// Explore `f` under the default bounds. See [`model::Builder`].
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model::Builder::default().check(f);
}

// ---------------------------------------------------------------------
// loom::thread
// ---------------------------------------------------------------------

pub mod thread {
    use super::*;

    pub struct JoinHandle<T> {
        os: std::thread::JoinHandle<Option<T>>,
        /// Controlled-thread index, `None` when spawned outside a model.
        idx: Option<usize>,
    }

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            if let (Some(child), Some((sh, me))) = (self.idx, ctx()) {
                let mut st = sh.lock();
                if st.aborted {
                    drop(st);
                    std::panic::panic_any(LoomAbort);
                }
                st.cells[me] = CState::Wants(Want::Join(child));
                sh.reschedule(&mut st, me);
                sh.wait_active(st, me);
                let mut st = sh.lock();
                st.cells[me] = CState::Ready;
                drop(st);
            }
            match self.os.join() {
                Ok(Some(v)) => Ok(v),
                // The child unwound with `LoomAbort` after the run was
                // already torn down; surface it as a generic panic.
                Ok(None) => Err(Box::new("loom execution aborted")),
                Err(e) => Err(e),
            }
        }
    }

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match ctx() {
            Some((sh, me)) => {
                let child;
                {
                    let mut st = sh.lock();
                    if st.aborted {
                        drop(st);
                        std::panic::panic_any(LoomAbort);
                    }
                    child = st.cells.len();
                    assert!(child < 16, "loom: more than 16 controlled threads");
                    st.cells.push(CState::Ready);
                }
                let os = spawn_controlled(sh.clone(), child, f);
                // Spawning is a schedule point: the child is now a
                // candidate.
                sh.point(me);
                JoinHandle {
                    os,
                    idx: Some(child),
                }
            }
            None => JoinHandle {
                os: std::thread::spawn(move || Some(f())),
                idx: None,
            },
        }
    }

    pub fn yield_now() {
        if let Some((sh, me)) = ctx() {
            sh.point(me);
        } else {
            std::thread::yield_now();
        }
    }
}

// ---------------------------------------------------------------------
// loom::sync
// ---------------------------------------------------------------------

pub mod sync {
    use super::*;
    pub use std::sync::Arc;

    fn alloc_res(sh: &Shared) -> usize {
        let mut st = sh.lock();
        let id = st.next_res;
        st.next_res += 1;
        st.lock_holder.push(None);
        id
    }

    /// A model-checked mutex. The payload lives in a `std` mutex (never
    /// contended inside a model run — the scheduler serializes access);
    /// blocking and ordering are decided at the control layer.
    pub struct Mutex<T> {
        inner: StdMutex<T>,
        /// Lazily bound control id for the current model run:
        /// `usize::MAX` = unassigned. Assignment order is deterministic
        /// under replay, so ids are stable across executions.
        res: std::sync::atomic::AtomicUsize,
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mutex").finish_non_exhaustive()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Mutex<T> {
            Mutex::new(T::default())
        }
    }

    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        std: Option<std::sync::MutexGuard<'a, T>>,
        res: Option<usize>,
    }

    impl<T> Mutex<T> {
        pub fn new(v: T) -> Mutex<T> {
            Mutex {
                inner: StdMutex::new(v),
                res: std::sync::atomic::AtomicUsize::new(usize::MAX),
            }
        }

        fn res_id(&self, sh: &Shared) -> usize {
            let cur = self.res.load(StdOrdering::Relaxed);
            if cur != usize::MAX {
                return cur;
            }
            let id = alloc_res(sh);
            self.res.store(id, StdOrdering::Relaxed);
            id
        }

        pub fn lock(&self) -> Result<MutexGuard<'_, T>, PoisonError<MutexGuard<'_, T>>> {
            match ctx() {
                Some((sh, me)) => {
                    let res = self.res_id(&sh);
                    let mut st = sh.lock();
                    if st.aborted {
                        drop(st);
                        std::panic::panic_any(LoomAbort);
                    }
                    st.cells[me] = CState::Wants(Want::Lock(res));
                    sh.reschedule(&mut st, me);
                    sh.wait_active(st, me);
                    let mut st = sh.lock();
                    debug_assert!(st.lock_holder[res].is_none());
                    st.lock_holder[res] = Some(me);
                    st.cells[me] = CState::Ready;
                    drop(st);
                    let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard {
                        lock: self,
                        std: Some(g),
                        res: Some(res),
                    })
                }
                None => {
                    let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard {
                        lock: self,
                        std: Some(g),
                        res: None,
                    })
                }
            }
        }

        pub fn into_inner(self) -> Result<T, PoisonError<T>> {
            Ok(self
                .inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner))
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.std.as_ref().expect("guard accessed after wait")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.std.as_mut().expect("guard accessed after wait")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Drop the std-level guard before handing the control-level
            // lock to a successor.
            self.std = None;
            if let (Some(res), Some((sh, me))) = (self.res, ctx()) {
                let mut st = sh.lock();
                if st.aborted {
                    return;
                }
                st.lock_holder[res] = None;
                if std::thread::panicking() {
                    // Unwinding through a critical section: stop the run
                    // now rather than parking a dying thread.
                    if st.fail.is_none() {
                        st.fail = Some(format!(
                            "thread {me} panicked while holding a lock \
                             (see stderr for the panic message)"
                        ));
                    }
                    sh.abort(&mut st);
                    return;
                }
                sh.reschedule(&mut st, me);
                sh.wait_active(st, me);
            }
        }
    }

    /// A model-checked condition variable. `notify_one` deterministically
    /// wakes the lowest-index waiter (the real loom explores the choice;
    /// this shim trades that for a smaller schedule space).
    pub struct Condvar {
        inner: StdCondvar,
        res: std::sync::atomic::AtomicUsize,
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Condvar {
        pub fn new() -> Condvar {
            Condvar {
                inner: StdCondvar::new(),
                res: std::sync::atomic::AtomicUsize::new(usize::MAX),
            }
        }

        fn res_id(&self, sh: &Shared) -> usize {
            let cur = self.res.load(StdOrdering::Relaxed);
            if cur != usize::MAX {
                return cur;
            }
            let id = alloc_res(sh);
            self.res.store(id, StdOrdering::Relaxed);
            id
        }

        pub fn wait<'a, T>(
            &self,
            mut guard: MutexGuard<'a, T>,
        ) -> Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>> {
            match ctx() {
                Some((sh, me)) => {
                    let cv = self.res_id(&sh);
                    let lock_res = guard.res.expect("loom condvar with uncontrolled mutex");
                    let mutex = guard.lock;
                    // Atomically (at the control layer) release the
                    // mutex and start waiting.
                    guard.std = None;
                    guard.res = None; // guard drop becomes a no-op
                    let mut st = sh.lock();
                    if st.aborted {
                        drop(st);
                        std::panic::panic_any(LoomAbort);
                    }
                    st.lock_holder[lock_res] = None;
                    st.cells[me] = CState::Wants(Want::Cond { cv, lock: lock_res });
                    sh.reschedule(&mut st, me);
                    sh.wait_active(st, me);
                    // Woken: we hold the control-level lock claim.
                    let mut st = sh.lock();
                    debug_assert!(st.lock_holder[lock_res].is_none());
                    st.lock_holder[lock_res] = Some(me);
                    st.cells[me] = CState::Ready;
                    drop(st);
                    drop(guard);
                    let g = mutex.inner.lock().unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard {
                        lock: mutex,
                        std: Some(g),
                        res: Some(lock_res),
                    })
                }
                None => {
                    let mutex = guard.lock;
                    let std_guard = guard.std.take().expect("guard accessed after wait");
                    guard.res = None;
                    drop(guard);
                    let g = self
                        .inner
                        .wait(std_guard)
                        .unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard {
                        lock: mutex,
                        std: Some(g),
                        res: None,
                    })
                }
            }
        }

        pub fn notify_one(&self) {
            if let Some((sh, me)) = ctx() {
                let cv = self.res_id(&sh);
                let mut st = sh.lock();
                if st.aborted {
                    drop(st);
                    std::panic::panic_any(LoomAbort);
                }
                let waiter = (0..st.cells.len()).find(
                    |&t| matches!(st.cells[t], CState::Wants(Want::Cond { cv: c, .. }) if c == cv),
                );
                if let Some(t) = waiter {
                    if let CState::Wants(Want::Cond { lock, .. }) = st.cells[t] {
                        st.cells[t] = CState::Wants(Want::Lock(lock));
                    }
                }
                sh.reschedule(&mut st, me);
                sh.wait_active(st, me);
            } else {
                self.inner.notify_one();
            }
        }

        pub fn notify_all(&self) {
            if let Some((sh, me)) = ctx() {
                let cv = self.res_id(&sh);
                let mut st = sh.lock();
                if st.aborted {
                    drop(st);
                    std::panic::panic_any(LoomAbort);
                }
                for t in 0..st.cells.len() {
                    if let CState::Wants(Want::Cond { cv: c, lock }) = st.cells[t] {
                        if c == cv {
                            st.cells[t] = CState::Wants(Want::Lock(lock));
                        }
                    }
                }
                sh.reschedule(&mut st, me);
                sh.wait_active(st, me);
            } else {
                self.inner.notify_all();
            }
        }
    }

    pub mod atomic {
        use super::*;
        pub use std::sync::atomic::Ordering;

        macro_rules! atomic_shim {
            ($name:ident, $std:ty, $prim:ty) => {
                /// Model-checked atomic: every access is a schedule
                /// point; the serialized scheduler makes all orderings
                /// sequentially consistent.
                #[derive(Debug, Default)]
                pub struct $name {
                    v: $std,
                }

                impl $name {
                    pub fn new(v: $prim) -> Self {
                        Self { v: <$std>::new(v) }
                    }

                    fn pt(&self) {
                        if let Some((sh, me)) = ctx() {
                            sh.point(me);
                        }
                    }

                    pub fn load(&self, _o: Ordering) -> $prim {
                        self.pt();
                        self.v.load(Ordering::SeqCst)
                    }

                    pub fn store(&self, x: $prim, _o: Ordering) {
                        self.pt();
                        self.v.store(x, Ordering::SeqCst)
                    }

                    pub fn swap(&self, x: $prim, _o: Ordering) -> $prim {
                        self.pt();
                        self.v.swap(x, Ordering::SeqCst)
                    }

                    pub fn fetch_add(&self, x: $prim, _o: Ordering) -> $prim {
                        self.pt();
                        self.v.fetch_add(x, Ordering::SeqCst)
                    }

                    pub fn fetch_sub(&self, x: $prim, _o: Ordering) -> $prim {
                        self.pt();
                        self.v.fetch_sub(x, Ordering::SeqCst)
                    }

                    pub fn compare_exchange(
                        &self,
                        cur: $prim,
                        new: $prim,
                        _s: Ordering,
                        _f: Ordering,
                    ) -> Result<$prim, $prim> {
                        self.pt();
                        self.v
                            .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                    }
                }
            };
        }

        atomic_shim!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        atomic_shim!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        atomic_shim!(AtomicI64, std::sync::atomic::AtomicI64, i64);
        atomic_shim!(AtomicU32, std::sync::atomic::AtomicU32, u32);

        /// `AtomicBool` (separate: no fetch_add).
        #[derive(Debug, Default)]
        pub struct AtomicBool {
            v: std::sync::atomic::AtomicBool,
        }

        impl AtomicBool {
            pub fn new(v: bool) -> Self {
                Self {
                    v: std::sync::atomic::AtomicBool::new(v),
                }
            }

            fn pt(&self) {
                if let Some((sh, me)) = ctx() {
                    sh.point(me);
                }
            }

            pub fn load(&self, _o: Ordering) -> bool {
                self.pt();
                self.v.load(Ordering::SeqCst)
            }

            pub fn store(&self, x: bool, _o: Ordering) {
                self.pt();
                self.v.store(x, Ordering::SeqCst)
            }

            pub fn swap(&self, x: bool, _o: Ordering) -> bool {
                self.pt();
                self.v.swap(x, Ordering::SeqCst)
            }
        }
    }

    /// Queue-free mpsc stand-in used by some loom consumers; provided
    /// for API parity where tests want a checked channel.
    pub struct MpscQueue<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Default for MpscQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> MpscQueue<T> {
        pub fn new() -> Self {
            MpscQueue {
                q: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, v: T) {
            self.q.lock().expect("queue lock").push_back(v);
        }

        pub fn pop(&self) -> Option<T> {
            self.q.lock().expect("queue lock").pop_front()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn finds_lost_update_on_unsynchronized_counter() {
        // Two threads doing load-then-store: the model must find the
        // interleaving where one update is lost. If the checker were
        // vacuous (single schedule), the assertion would always hold
        // and model() would return normally.
        let r = catch_unwind(AssertUnwindSafe(|| {
            super::model(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let a = {
                    let n = n.clone();
                    super::thread::spawn(move || {
                        let v = n.load(Ordering::SeqCst);
                        n.store(v + 1, Ordering::SeqCst);
                    })
                };
                let v = n.load(Ordering::SeqCst);
                n.store(v + 1, Ordering::SeqCst);
                a.join().expect("join");
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            });
        }));
        assert!(r.is_err(), "model failed to find the lost update");
    }

    #[test]
    fn mutex_protected_counter_is_exhaustively_clean() {
        let execs = super::model::Builder::new().check(|| {
            let n = Arc::new(Mutex::new(0u32));
            let a = {
                let n = n.clone();
                super::thread::spawn(move || {
                    *n.lock().expect("lock") += 1;
                })
            };
            *n.lock().expect("lock") += 1;
            a.join().expect("join");
            assert_eq!(*n.lock().expect("lock"), 2);
        });
        assert!(execs >= 2, "only {execs} interleavings explored");
    }

    #[test]
    fn detects_ab_ba_deadlock() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            super::model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let t = {
                    let a = a.clone();
                    let b = b.clone();
                    super::thread::spawn(move || {
                        let _ga = a.lock().expect("lock a");
                        let _gb = b.lock().expect("lock b");
                    })
                };
                let _gb = b.lock().expect("lock b");
                let _ga = a.lock().expect("lock a");
                drop(_ga);
                drop(_gb);
                let _ = t.join();
            });
        }));
        let msg = format!("{:?}", r.err().map(|e| e.downcast::<String>().ok()));
        assert!(msg.contains("deadlock"), "no deadlock reported: {msg}");
    }

    #[test]
    fn condvar_handoff_completes() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let t = {
                let pair = pair.clone();
                super::thread::spawn(move || {
                    let (m, cv) = &*pair;
                    let mut ready = m.lock().expect("lock");
                    *ready = true;
                    drop(ready);
                    cv.notify_one();
                })
            };
            let (m, cv) = &*pair;
            let mut ready = m.lock().expect("lock");
            while !*ready {
                ready = cv.wait(ready).expect("wait");
            }
            drop(ready);
            t.join().expect("join");
        });
    }

    #[test]
    fn primitives_work_outside_model() {
        let m = Mutex::new(5);
        *m.lock().expect("lock") += 1;
        assert_eq!(*m.lock().expect("lock"), 6);
        let n = AtomicUsize::new(1);
        assert_eq!(n.fetch_add(2, Ordering::SeqCst), 1);
        let h = super::thread::spawn(|| 7);
        assert_eq!(h.join().expect("join"), 7);
    }
}
