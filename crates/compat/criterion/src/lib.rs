//! Std-only shim for the `criterion` API surface this workspace uses.
//!
//! Runs each benchmark a small, bounded number of iterations (scaled down
//! from the configured sample size) and prints mean wall-clock time per
//! iteration. No statistics, outlier analysis, or HTML reports — just
//! enough to keep `cargo bench` runnable and the timings meaningful in a
//! hermetic environment.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up iteration, then timed ones.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total = start.elapsed();
    }
}

pub struct Criterion {
    sample_size: usize,
    #[allow(dead_code)]
    measurement_time: Duration,
    #[allow(dead_code)]
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(1),
        }
    }
}

fn run_one(name: &str, iters: u64, b: &mut dyn FnMut(&mut Bencher)) {
    let mut bench = Bencher {
        iters,
        total: Duration::ZERO,
    };
    b(&mut bench);
    let per_iter = bench.total / bench.iters.max(1) as u32;
    println!("bench {name:<48} {per_iter:>12.2?}/iter ({iters} iters)");
}

impl Criterion {
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Iterations per benchmark: a small fraction of the configured sample
    /// size so shim benches stay fast while remaining comparable run-to-run.
    fn iters(&self) -> u64 {
        (self.sample_size as u64 / 3).max(2)
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.iters(), &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let iters = match self.sample_size {
            Some(n) => (n as u64 / 3).max(2),
            None => self.parent.iters(),
        };
        run_one(&format!("{}/{}", self.name, name), iters, &mut f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(6);
        let mut count = 0u64;
        c.bench_function("shim_smoke", |b| b.iter(|| count += 1));
        // 1 warm-up + iters timed runs.
        assert!(count >= 3);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(9);
        let mut hits = 0u64;
        g.bench_function("one", |b| b.iter(|| hits += 1));
        g.finish();
        assert!(hits >= 4);
    }
}
