//! Std-only shim for the `rand` 0.8 API surface this workspace uses:
//! `rngs::StdRng` + `SeedableRng::seed_from_u64`, the `Rng` extension
//! trait (`gen_range` over half-open ranges, `gen_bool`, `gen`), and
//! `distributions::{Distribution, Uniform}`.
//!
//! The generator is splitmix64 — statistically fine for test-input
//! generation and workload synthesis, which is all this workspace does
//! with it. It is NOT a reproduction of the real StdRng stream (ChaCha),
//! so seeded sequences differ from upstream `rand`; everything in this
//! repo treats seeds as opaque, so only in-repo reproducibility matters.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// splitmix64 generator (see module docs for the upstream-stream caveat).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    /// Alias so `SmallRng` call sites would also resolve.
    pub type SmallRng = StdRng;
}

/// A type usable as the argument of `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range range");
        self.start + unit_f64(rng) as f32 * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty gen_range range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A type producible by `Rng::gen`.
pub trait Standard: Sized {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        unit_f64(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    use super::{RngCore, SampleRange};

    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy> Uniform<T> {
        pub fn new(low: T, high: T) -> Self {
            Uniform { low, high }
        }
    }

    impl<T> Distribution<T> for Uniform<T>
    where
        T: Copy,
        std::ops::Range<T>: SampleRange<T>,
    {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (self.low..self.high).sample_one(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{distributions::Distribution, Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(0.5..7.5);
            assert!((0.5..7.5).contains(&f));
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let j = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.55)).count();
        assert!(
            (900..1300).contains(&hits),
            "p=0.55 hit rate wildly off: {hits}"
        );
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = super::distributions::Uniform::new(0.0f64, 1.0);
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            assert!((0.0..1.0).contains(&v));
        }
    }
}
