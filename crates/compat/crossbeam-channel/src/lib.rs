//! Std-backed shim for the `crossbeam-channel` API surface this workspace
//! uses: an unbounded MPMC channel with cloneable `Sender` *and*
//! `Receiver`, blocking `recv`, non-blocking `try_recv`, and
//! `recv_timeout`. Disconnection semantics match crossbeam: `recv` fails
//! once all senders are gone and the queue is drained; `send` fails once
//! all receivers are gone.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Like crossbeam, Debug does not require `T: Debug`.
impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    cond: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

pub struct Sender<T>(Arc<Inner<T>>);

pub struct Receiver<T>(Arc<Inner<T>>);

pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        cond: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender(inner.clone()), Receiver(inner))
}

impl<T> Sender<T> {
    pub fn send(&self, t: T) -> Result<(), SendError<T>> {
        if self.0.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(t));
        }
        self.0
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(t);
        self.0.cond.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.senders.fetch_add(1, Ordering::AcqRel);
        Sender(self.0.clone())
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake all blocked receivers so they observe the
            // disconnect.
            self.0.cond.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        match q.pop_front() {
            Some(t) => Ok(t),
            None if self.0.senders.load(Ordering::Acquire) == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(t) = q.pop_front() {
                return Ok(t);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = self.0.cond.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(t) = q.pop_front() {
                return Ok(t);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .0
                .cond
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
    }

    pub fn len(&self) -> usize {
        self.0.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver(self.0.clone())
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.0.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn roundtrip_and_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_receivers_gone() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn cloned_receivers_share_queue() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        let h = thread::spawn(move || rx2.recv().unwrap() + rx2.recv().unwrap());
        tx.send(20).unwrap();
        tx.send(22).unwrap();
        assert_eq!(h.join().unwrap(), 42);
        drop(rx);
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
