//! Std-backed shim for the `parking_lot` API surface used by this
//! workspace: panic-free (poison-ignoring) `Mutex`/`MutexGuard`, `RwLock`,
//! and a `Condvar` working on our guard type.
//!
//! Semantics match `parking_lot` where this workspace relies on them:
//! `lock()` returns the guard directly (a poisoned std mutex is recovered,
//! matching parking_lot's poison-free behavior), and `Condvar::wait_until`
//! takes an `Instant` deadline.

use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(t) => t,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

/// Result of a timed wait: whether the deadline passed.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, c) = &*p2;
            let mut g = m.lock();
            while !*g {
                c.wait(&mut g);
            }
        });
        {
            let (m, c) = &*pair;
            *m.lock() = true;
            c.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let res = c.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
