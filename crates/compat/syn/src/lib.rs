//! Hermetic shim for the `syn` API surface used by this workspace.
//!
//! The real `syn` crate parses Rust source into a full AST. The
//! `mrts-analyzer` static checks only need the *item-level* structure —
//! constants, enum variants, struct fields, function bodies as token
//! streams, `impl`/`mod` nesting, and attributes — so this shim implements
//! exactly that: a lossless-enough lexer (comments stripped, line numbers
//! kept) and a lenient item parser. Expression-level syntax inside function
//! bodies is deliberately left as a flat token slice; the analyzer's
//! checkers are token-pattern scans, which keeps them robust against
//! syntax the parser does not model.
//!
//! Swap the workspace path entry back to the registry `syn` to use the
//! real crate; the analyzer would then need the usual `visit` plumbing.

use std::fmt;

/// Lexical token category.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation, possibly multi-character (`::`, `=>`, `+=`, ...).
    Punct,
    /// Number, string, char, or byte literal (text includes quotes).
    Lit,
    /// Lifetime such as `'a` (text includes the leading quote).
    Lifetime,
}

/// One lexical token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    pub text: String,
    pub kind: TokKind,
    pub line: u32,
}

impl Token {
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }
}

/// Parse or lex failure: unbalanced brackets, unterminated literals.
#[derive(Debug)]
pub struct Error {
    pub line: u32,
    pub msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for Error {}

/// A parsed source file: the flat token stream plus item structure.
pub struct File {
    pub items: Vec<Item>,
}

/// An item. Unmodelled forms (traits, uses, type aliases, macros) come
/// back as [`Item::Other`] so walkers can stay exhaustive.
pub enum Item {
    Const(ItemConst),
    Enum(ItemEnum),
    Struct(ItemStruct),
    Fn(ItemFn),
    Impl(ItemImpl),
    Mod(ItemMod),
    Other,
}

pub struct ItemConst {
    pub attrs: Vec<String>,
    pub ident: String,
    pub ty: String,
    pub value: String,
    pub line: u32,
}

pub struct ItemEnum {
    pub attrs: Vec<String>,
    pub ident: String,
    pub variants: Vec<Variant>,
    pub line: u32,
}

pub struct Variant {
    pub ident: String,
    pub line: u32,
}

pub struct ItemStruct {
    pub attrs: Vec<String>,
    pub ident: String,
    pub fields: Vec<Field>,
    pub line: u32,
}

pub struct Field {
    pub ident: String,
    pub ty: String,
    pub line: u32,
}

pub struct ItemFn {
    pub attrs: Vec<String>,
    pub ident: String,
    /// Body tokens, exclusive of the outer braces.
    pub body: Vec<Token>,
    pub line: u32,
}

pub struct ItemImpl {
    pub attrs: Vec<String>,
    /// First identifier of the implemented-on type (`Foo` for
    /// `impl<T> Trait for Foo<T>`).
    pub self_ty: String,
    pub items: Vec<Item>,
    pub line: u32,
}

pub struct ItemMod {
    pub attrs: Vec<String>,
    pub ident: String,
    /// `None` for out-of-line `mod foo;` declarations.
    pub content: Option<Vec<Item>>,
    pub line: u32,
}

/// Parse a whole source file.
pub fn parse_file(src: &str) -> Result<File, Error> {
    let tokens = lex(src)?;
    let mut p = Parser { t: &tokens, i: 0 };
    let items = p.items(None)?;
    Ok(File { items })
}

/// Lex a source file: comments stripped, everything else tokenized with
/// line numbers. Exposed for checkers that scan raw streams.
pub fn lex(src: &str) -> Result<Vec<Token>, Error> {
    let c: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let n = c.len();
    macro_rules! push {
        ($kind:expr, $text:expr, $line:expr) => {
            out.push(Token {
                text: $text,
                kind: $kind,
                line: $line,
            })
        };
    }
    while i < n {
        let ch = c[i];
        if ch == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if ch.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if ch == '/' && i + 1 < n && c[i + 1] == '/' {
            while i < n && c[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if ch == '/' && i + 1 < n && c[i + 1] == '*' {
            let start = line;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if c[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if c[i] == '/' && i + 1 < n && c[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if c[i] == '*' && i + 1 < n && c[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            if depth > 0 {
                return Err(Error {
                    line: start,
                    msg: "unterminated block comment".into(),
                });
            }
            continue;
        }
        // Raw / byte string prefixes: r"..", r#".."#, b"..", br#"..."#, b'x'.
        if (ch == 'r' || ch == 'b') && i + 1 < n {
            let (pfx_len, is_raw) = if ch == 'b' && i + 1 < n && c[i + 1] == 'r' {
                (2, true)
            } else if ch == 'r' {
                (1, true)
            } else {
                (1, false)
            };
            let after = i + pfx_len;
            if is_raw && after < n && (c[after] == '"' || c[after] == '#') {
                let start_line = line;
                let mut j = after;
                let mut hashes = 0;
                while j < n && c[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && c[j] == '"' {
                    j += 1;
                    'raw: while j < n {
                        if c[j] == '\n' {
                            line += 1;
                        }
                        if c[j] == '"' {
                            let mut k = 0;
                            while k < hashes && j + 1 + k < n && c[j + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    push!(TokKind::Lit, c[i..j].iter().collect(), start_line);
                    i = j;
                    continue;
                }
            } else if ch == 'b' && after < n && (c[after] == '"' || c[after] == '\'') {
                // Fall through to quote handling below with the prefix
                // folded into the literal.
                let quote = c[after];
                let start_line = line;
                let mut j = after + 1;
                while j < n {
                    if c[j] == '\\' {
                        j += 2;
                        continue;
                    }
                    if c[j] == '\n' {
                        line += 1;
                    }
                    if c[j] == quote {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
                push!(TokKind::Lit, c[i..j].iter().collect(), start_line);
                i = j;
                continue;
            }
        }
        // Identifiers and keywords.
        if ch == '_' || ch.is_alphabetic() {
            let start = i;
            while i < n && (c[i] == '_' || c[i].is_alphanumeric()) {
                i += 1;
            }
            push!(TokKind::Ident, c[start..i].iter().collect(), line);
            continue;
        }
        // Numbers (suffixes and hex digits ride along; `1.5` handled,
        // `1..2` left to the range operator).
        if ch.is_ascii_digit() {
            let start = i;
            while i < n && (c[i] == '_' || c[i].is_alphanumeric()) {
                i += 1;
            }
            if i + 1 < n && c[i] == '.' && c[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && (c[i] == '_' || c[i].is_alphanumeric()) {
                    i += 1;
                }
            }
            push!(TokKind::Lit, c[start..i].iter().collect(), line);
            continue;
        }
        // Strings.
        if ch == '"' {
            let start_line = line;
            let start = i;
            i += 1;
            while i < n {
                if c[i] == '\\' {
                    i += 2;
                    continue;
                }
                if c[i] == '\n' {
                    line += 1;
                }
                if c[i] == '"' {
                    i += 1;
                    break;
                }
                i += 1;
            }
            push!(TokKind::Lit, c[start..i].iter().collect(), start_line);
            continue;
        }
        // Char literal vs lifetime.
        if ch == '\'' {
            // Escaped char, or exactly one char followed by a closing
            // quote, is a char literal; otherwise a lifetime.
            if i + 1 < n && c[i + 1] == '\\' {
                let start = i;
                i += 2; // consume '\ and the escape head
                while i < n && c[i] != '\'' {
                    i += 1;
                }
                i += 1;
                push!(TokKind::Lit, c[start..i.min(n)].iter().collect(), line);
                continue;
            }
            if i + 2 < n && c[i + 2] == '\'' && c[i + 1] != '\'' {
                push!(TokKind::Lit, c[i..i + 3].iter().collect(), line);
                i += 3;
                continue;
            }
            let start = i;
            i += 1;
            while i < n && (c[i] == '_' || c[i].is_alphanumeric()) {
                i += 1;
            }
            push!(TokKind::Lifetime, c[start..i].iter().collect(), line);
            continue;
        }
        // Multi-character punctuation, longest first.
        const PUNCTS: &[&str] = &[
            "..=", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
            "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
        ];
        let mut matched = false;
        for p in PUNCTS {
            let pl = p.chars().count();
            if i + pl <= n && c[i..i + pl].iter().collect::<String>() == **p {
                push!(TokKind::Punct, (*p).to_string(), line);
                i += pl;
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        push!(TokKind::Punct, ch.to_string(), line);
        i += 1;
    }
    Ok(out)
}

struct Parser<'a> {
    t: &'a [Token],
    i: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.t.get(self.i)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.t.get(self.i);
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn line(&self) -> u32 {
        self.t.get(self.i).map_or(0, |t| t.line)
    }

    fn at(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is(s))
    }

    /// Consume a balanced bracket group whose opener is the current token;
    /// returns the token range *inside* the brackets.
    fn group(&mut self) -> Result<(usize, usize), Error> {
        let open = self.t[self.i].text.clone();
        let close = match open.as_str() {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => {
                return Err(Error {
                    line: self.line(),
                    msg: format!("expected bracket, found `{open}`"),
                })
            }
        };
        let start_line = self.line();
        self.i += 1;
        let body_start = self.i;
        let mut depth = 1usize;
        while let Some(t) = self.t.get(self.i) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth == 0 {
                            // Closers must pair up for the file to have
                            // lexed from valid Rust; mismatches only
                            // arise on non-Rust input.
                            if t.text != close {
                                return Err(Error {
                                    line: t.line,
                                    msg: format!("mismatched `{open}` closed by `{}`", t.text),
                                });
                            }
                            let body_end = self.i;
                            self.i += 1;
                            return Ok((body_start, body_end));
                        }
                    }
                    _ => {}
                }
            }
            self.i += 1;
        }
        Err(Error {
            line: start_line,
            msg: format!("unclosed `{open}`"),
        })
    }

    /// Skip forward to the `;` terminating the current item (balanced
    /// through any bracket groups), consuming it.
    fn skip_to_semi(&mut self) -> Result<(), Error> {
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                ";" => {
                    self.i += 1;
                    return Ok(());
                }
                "(" | "[" | "{" => {
                    self.group()?;
                }
                _ => {
                    self.i += 1;
                }
            }
        }
        Ok(())
    }

    /// Collect `#[...]` / `#![...]` attributes as compact strings
    /// (tokens joined without spaces: `cfg(test)`, `allow(dead_code)`).
    fn attrs(&mut self) -> Result<Vec<String>, Error> {
        let mut out = Vec::new();
        while self.at("#") {
            self.i += 1;
            if self.at("!") {
                self.i += 1;
            }
            if !self.at("[") {
                break;
            }
            let (s, e) = self.group()?;
            out.push(
                self.t[s..e]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect::<String>(),
            );
        }
        Ok(out)
    }

    /// Parse items until EOF (`until == None`) or a closing brace already
    /// consumed by the caller's `group()` (in which case the caller hands
    /// us a sub-parser).
    fn items(&mut self, until: Option<usize>) -> Result<Vec<Item>, Error> {
        let end = until.unwrap_or(self.t.len());
        let mut out = Vec::new();
        while self.i < end {
            let attrs = self.attrs()?;
            if self.i >= end {
                break;
            }
            // Visibility and qualifier soup.
            while self.at("pub")
                || self.at("unsafe")
                || self.at("async")
                || self.at("default")
                || self.at("extern")
            {
                let was_extern = self.at("extern");
                self.i += 1;
                if self.at("(") {
                    self.group()?; // pub(crate), pub(super), ...
                }
                if was_extern && self.peek().is_some_and(|t| t.kind == TokKind::Lit) {
                    self.i += 1; // extern "C"
                }
            }
            if self.i >= end {
                break;
            }
            let kw = self.t[self.i].text.clone();
            let line = self.t[self.i].line;
            match kw.as_str() {
                "const" | "static" => {
                    self.i += 1;
                    if self.at("mut") {
                        self.i += 1;
                    }
                    let ident = self.bump().map_or(String::new(), |t| t.text.clone());
                    // `const fn` — the ident slot held `fn`.
                    if ident == "fn" {
                        out.push(self.item_fn(attrs, line)?);
                        continue;
                    }
                    let mut ty = String::new();
                    let mut value = String::new();
                    let mut in_value = false;
                    let mut seen_colon = false;
                    while self.i < end {
                        let t = &self.t[self.i];
                        match t.text.as_str() {
                            ";" => {
                                self.i += 1;
                                break;
                            }
                            "=" if !in_value => {
                                in_value = true;
                                self.i += 1;
                            }
                            ":" if !seen_colon && !in_value => {
                                seen_colon = true;
                                self.i += 1;
                            }
                            "(" | "[" | "{" => {
                                let (s, e) = self.group()?;
                                let inner: String =
                                    self.t[s..e].iter().map(|x| x.text.as_str()).collect();
                                let grouped = format!(
                                    "{}{}{}",
                                    self.t[s - 1].text,
                                    inner,
                                    self.t.get(e).map_or("", |x| x.text.as_str())
                                );
                                if in_value {
                                    value.push_str(&grouped);
                                } else if seen_colon {
                                    ty.push_str(&grouped);
                                }
                            }
                            _ => {
                                if in_value {
                                    value.push_str(&t.text);
                                } else if seen_colon {
                                    ty.push_str(&t.text);
                                }
                                self.i += 1;
                            }
                        }
                    }
                    out.push(Item::Const(ItemConst {
                        attrs,
                        ident,
                        ty,
                        value,
                        line,
                    }));
                }
                "enum" => {
                    self.i += 1;
                    let ident = self.bump().map_or(String::new(), |t| t.text.clone());
                    while self.i < end && !self.at("{") {
                        self.i += 1; // generics, where clause
                    }
                    let (s, e) = self.group()?;
                    let mut vp = Parser {
                        t: &self.t[..e],
                        i: s,
                    };
                    let mut variants = Vec::new();
                    while vp.i < e {
                        vp.attrs()?;
                        if vp.i >= e {
                            break;
                        }
                        let vt = &vp.t[vp.i];
                        if vt.kind == TokKind::Ident {
                            variants.push(Variant {
                                ident: vt.text.clone(),
                                line: vt.line,
                            });
                            vp.i += 1;
                        }
                        // Skip payload / discriminant to the next comma.
                        while vp.i < e {
                            match vp.t[vp.i].text.as_str() {
                                "," => {
                                    vp.i += 1;
                                    break;
                                }
                                "(" | "[" | "{" => {
                                    vp.group()?;
                                }
                                _ => vp.i += 1,
                            }
                        }
                    }
                    out.push(Item::Enum(ItemEnum {
                        attrs,
                        ident,
                        variants,
                        line,
                    }));
                }
                "struct" | "union" => {
                    self.i += 1;
                    let ident = self.bump().map_or(String::new(), |t| t.text.clone());
                    let mut fields = Vec::new();
                    // Scan to `{` (named fields), `(` (tuple), or `;` (unit).
                    loop {
                        if self.i >= end || self.at(";") {
                            if self.at(";") {
                                self.i += 1;
                            }
                            break;
                        }
                        if self.at("(") {
                            self.group()?;
                            self.skip_to_semi()?;
                            break;
                        }
                        if self.at("{") {
                            let (s, e) = self.group()?;
                            let mut fp = Parser {
                                t: &self.t[..e],
                                i: s,
                            };
                            while fp.i < e {
                                fp.attrs()?;
                                while fp.at("pub") {
                                    fp.i += 1;
                                    if fp.at("(") {
                                        fp.group()?;
                                    }
                                }
                                if fp.i >= e {
                                    break;
                                }
                                let name_tok = fp.t[fp.i].clone();
                                fp.i += 1;
                                if !fp.at(":") {
                                    continue;
                                }
                                fp.i += 1;
                                let mut ty = String::new();
                                let mut angle = 0i32;
                                while fp.i < e {
                                    let tt = &fp.t[fp.i];
                                    match tt.text.as_str() {
                                        "," if angle == 0 => {
                                            fp.i += 1;
                                            break;
                                        }
                                        "<" => angle += 1,
                                        ">" => angle -= 1,
                                        ">>" => angle -= 2,
                                        "(" | "[" | "{" => {
                                            let (gs, ge) = fp.group()?;
                                            ty.push_str(&fp.t[gs - 1].text.clone());
                                            for x in &fp.t[gs..ge] {
                                                ty.push_str(&x.text);
                                            }
                                            if let Some(x) = fp.t.get(ge) {
                                                ty.push_str(&x.text);
                                            }
                                            continue;
                                        }
                                        _ => {}
                                    }
                                    ty.push_str(&tt.text);
                                    fp.i += 1;
                                }
                                fields.push(Field {
                                    ident: name_tok.text,
                                    ty,
                                    line: name_tok.line,
                                });
                            }
                            break;
                        }
                        self.i += 1;
                    }
                    out.push(Item::Struct(ItemStruct {
                        attrs,
                        ident,
                        fields,
                        line,
                    }));
                }
                "fn" => {
                    out.push(self.item_fn(attrs, line)?);
                }
                "impl" => {
                    self.i += 1;
                    // Everything up to the body brace: generics, trait,
                    // `for`, self type, where clause.
                    let head_start = self.i;
                    while self.i < end && !self.at("{") {
                        if self.at("(") || self.at("[") {
                            self.group()?;
                        } else {
                            self.i += 1;
                        }
                    }
                    let head = &self.t[head_start..self.i];
                    let self_ty = impl_self_ty(head);
                    let (s, e) = self.group()?;
                    let mut ip = Parser {
                        t: &self.t[..e],
                        i: s,
                    };
                    let items = ip.items(Some(e))?;
                    out.push(Item::Impl(ItemImpl {
                        attrs,
                        self_ty,
                        items,
                        line,
                    }));
                }
                "mod" => {
                    self.i += 1;
                    let ident = self.bump().map_or(String::new(), |t| t.text.clone());
                    if self.at(";") {
                        self.i += 1;
                        out.push(Item::Mod(ItemMod {
                            attrs,
                            ident,
                            content: None,
                            line,
                        }));
                    } else {
                        let (s, e) = self.group()?;
                        let mut mp = Parser {
                            t: &self.t[..e],
                            i: s,
                        };
                        let content = mp.items(Some(e))?;
                        out.push(Item::Mod(ItemMod {
                            attrs,
                            ident,
                            content: Some(content),
                            line,
                        }));
                    }
                }
                "trait" => {
                    self.i += 1;
                    while self.i < end && !self.at("{") {
                        self.i += 1;
                    }
                    if self.at("{") {
                        self.group()?;
                    }
                    out.push(Item::Other);
                }
                "use" | "type" => {
                    self.skip_to_semi()?;
                    out.push(Item::Other);
                }
                "macro_rules" => {
                    self.i += 1; // macro_rules
                    if self.at("!") {
                        self.i += 1;
                    }
                    self.i += 1; // name
                    if self.at("{") || self.at("(") || self.at("[") {
                        self.group()?;
                    }
                    out.push(Item::Other);
                }
                _ => {
                    // Item-level macro invocation `name! { ... }` or stray
                    // token; skip conservatively.
                    self.i += 1;
                    if self.at("!") {
                        self.i += 1;
                        if self.at("(") || self.at("[") {
                            self.group()?;
                            if self.at(";") {
                                self.i += 1;
                            }
                        } else if self.at("{") {
                            self.group()?;
                        }
                        out.push(Item::Other);
                    }
                }
            }
        }
        Ok(out)
    }

    fn item_fn(&mut self, attrs: Vec<String>, line: u32) -> Result<Item, Error> {
        // Current token is `fn`.
        self.i += 1;
        let ident = self.bump().map_or(String::new(), |t| t.text.clone());
        // Signature: scan to the body `{` (or `;` for trait decls),
        // balancing parens so closure types in arguments don't confuse us.
        loop {
            if self.i >= self.t.len() {
                return Ok(Item::Fn(ItemFn {
                    attrs,
                    ident,
                    body: Vec::new(),
                    line,
                }));
            }
            if self.at(";") {
                self.i += 1;
                return Ok(Item::Fn(ItemFn {
                    attrs,
                    ident,
                    body: Vec::new(),
                    line,
                }));
            }
            if self.at("{") {
                break;
            }
            if self.at("(") || self.at("[") {
                self.group()?;
            } else {
                self.i += 1;
            }
        }
        let (s, e) = self.group()?;
        Ok(Item::Fn(ItemFn {
            attrs,
            ident,
            body: self.t[s..e].to_vec(),
            line,
        }))
    }
}

/// Pick the self-type identifier out of an impl header token slice.
fn impl_self_ty(head: &[Token]) -> String {
    // Strip a leading generic parameter list.
    let mut i = 0;
    if head.first().is_some_and(|t| t.is("<")) {
        let mut depth = 0i32;
        while i < head.len() {
            match head[i].text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            i += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    // `impl Trait for Type` → after `for`; otherwise the first ident.
    let rest = &head[i..];
    let after_for = rest
        .iter()
        .position(|t| t.is("for"))
        .map(|p| &rest[p + 1..]);
    let region = after_for.unwrap_or(rest);
    for t in region {
        if t.kind == TokKind::Ident && t.text != "where" && t.text != "mut" && t.text != "dyn" {
            return t.text.clone();
        }
    }
    String::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
//! Doc comment with 'quotes' and "strings".
pub const AM_MSG: u32 = 1;
pub const AM_ACK: u32 = 9;

#[derive(Clone)]
pub enum EvKind {
    Msg(Message),
    Loaded(ObjectId),
    Install { oid: ObjectId, bytes: Vec<u8> },
}

pub struct NodeStats {
    pub loads: u64,
    pub stores: u64,
    pub comp: Duration,
}

impl Worker<'_> {
    fn dispatch(&mut self, tag: u32) {
        match tag {
            AM_MSG => self.on_msg(),
            AM_ACK => {}
            other => panic!("unknown AM tag {other}"),
        }
        let g = self.store.lock().unwrap();
        g.send(1).expect("channel closed");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x = vec![1, 2].pop().unwrap();
        assert_eq!(x, 2);
    }
}
"#;

    fn idents_of(items: &[Item]) -> Vec<&str> {
        items
            .iter()
            .filter_map(|i| match i {
                Item::Const(c) => Some(c.ident.as_str()),
                Item::Enum(e) => Some(e.ident.as_str()),
                Item::Struct(s) => Some(s.ident.as_str()),
                Item::Fn(f) => Some(f.ident.as_str()),
                Item::Impl(i) => Some(i.self_ty.as_str()),
                Item::Mod(m) => Some(m.ident.as_str()),
                Item::Other => None,
            })
            .collect()
    }

    #[test]
    fn parses_item_structure() {
        let f = parse_file(SRC).unwrap();
        assert_eq!(
            idents_of(&f.items),
            ["AM_MSG", "AM_ACK", "EvKind", "NodeStats", "Worker", "tests"]
        );
    }

    #[test]
    fn extracts_const_values_and_enum_variants() {
        let f = parse_file(SRC).unwrap();
        let consts: Vec<(&str, &str)> = f
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Const(c) => Some((c.ident.as_str(), c.value.as_str())),
                _ => None,
            })
            .collect();
        assert_eq!(consts, [("AM_MSG", "1"), ("AM_ACK", "9")]);
        let Some(Item::Enum(e)) = f.items.iter().find(|i| matches!(i, Item::Enum(_))) else {
            panic!("no enum");
        };
        let names: Vec<&str> = e.variants.iter().map(|v| v.ident.as_str()).collect();
        assert_eq!(names, ["Msg", "Loaded", "Install"]);
    }

    #[test]
    fn extracts_struct_fields_with_types() {
        let f = parse_file(SRC).unwrap();
        let Some(Item::Struct(s)) = f.items.iter().find(|i| matches!(i, Item::Struct(_))) else {
            panic!("no struct");
        };
        let fields: Vec<(&str, &str)> = s
            .fields
            .iter()
            .map(|fl| (fl.ident.as_str(), fl.ty.as_str()))
            .collect();
        assert_eq!(
            fields,
            [("loads", "u64"), ("stores", "u64"), ("comp", "Duration")]
        );
    }

    #[test]
    fn fn_bodies_are_token_streams_with_lines() {
        let f = parse_file(SRC).unwrap();
        let Some(Item::Impl(im)) = f.items.iter().find(|i| matches!(i, Item::Impl(_))) else {
            panic!("no impl");
        };
        let Some(Item::Fn(fun)) = im.items.iter().find(|i| matches!(i, Item::Fn(_))) else {
            panic!("no fn");
        };
        assert_eq!(fun.ident, "dispatch");
        assert!(fun.body.iter().any(|t| t.is("unwrap")));
        assert!(fun.body.iter().any(|t| t.is("AM_MSG")));
        // Line numbers survive comment stripping.
        let unwrap_tok = fun.body.iter().find(|t| t.is("unwrap")).unwrap();
        assert!(unwrap_tok.line > 20, "line {}", unwrap_tok.line);
    }

    #[test]
    fn cfg_test_mod_attrs_survive() {
        let f = parse_file(SRC).unwrap();
        let Some(Item::Mod(m)) = f.items.iter().find(|i| matches!(i, Item::Mod(_))) else {
            panic!("no mod");
        };
        assert_eq!(m.attrs, ["cfg(test)"]);
        let inner = m.content.as_ref().unwrap();
        let Some(Item::Fn(t)) = inner.iter().find(|i| matches!(i, Item::Fn(_))) else {
            panic!("no test fn");
        };
        assert_eq!(t.attrs, ["test"]);
    }

    #[test]
    fn lexes_tricky_literals() {
        let toks =
            lex(r##"let s = r#"raw "str""#; let c = 'x'; let lt: &'static str = b"by";"##).unwrap();
        let lits: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, [r##"r#"raw "str""#"##, "'x'", r#"b"by""#]);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'static"));
    }
}
