//! Std-backed shim for the `crossbeam-deque` API surface this workspace
//! uses: `Injector`, `Worker` (LIFO), `Stealer`, and the `Steal` result
//! enum (including its `FromIterator` impl used to fold stealer sweeps).
//!
//! Backed by mutex-protected deques rather than lock-free buffers; the
//! work-stealing pool in this workspace models execution cost analytically,
//! so shim overhead does not affect results.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    Empty,
    Success(T),
    Retry,
}

impl<T> Steal<T> {
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// If this is a success, returns it; otherwise consults `f`. A `Retry`
    /// on either side is preserved unless `f` succeeds.
    pub fn or_else<F: FnOnce() -> Steal<T>>(self, f: F) -> Steal<T> {
        match self {
            Steal::Success(t) => Steal::Success(t),
            Steal::Empty => f(),
            Steal::Retry => match f() {
                Steal::Empty => Steal::Retry,
                other => other,
            },
        }
    }
}

/// Folds a sweep over several sources: first `Success` wins; any `Retry`
/// seen (without a success) yields `Retry`; otherwise `Empty`.
impl<T> FromIterator<Steal<T>> for Steal<T> {
    fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
        let mut retry = false;
        for s in iter {
            match s {
                Steal::Success(t) => return Steal::Success(t),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if retry {
            Steal::Retry
        } else {
            Steal::Empty
        }
    }
}

fn locked<T>(m: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Global FIFO injector queue.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, t: T) {
        locked(&self.queue).push_back(t);
    }

    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Moves a batch from the injector into `dest`, returning one task.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = locked(&self.queue);
        if q.is_empty() {
            return Steal::Empty;
        }
        let take = (q.len() / 2).clamp(1, 32);
        let first = q.pop_front().expect("non-empty");
        let mut dq = locked(&dest.local);
        for _ in 1..take {
            if let Some(t) = q.pop_front() {
                dq.push_back(t);
            }
        }
        Steal::Success(first)
    }

    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }

    pub fn len(&self) -> usize {
        locked(&self.queue).len()
    }
}

/// Per-thread deque. The owner pops from the back (LIFO); stealers take
/// from the front.
pub struct Worker<T> {
    local: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    pub fn new_lifo() -> Self {
        Worker {
            local: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    pub fn new_fifo() -> Self {
        // The shim's owner side is always LIFO; this workspace only uses
        // `new_lifo`, so `new_fifo` is provided for API parity only.
        Self::new_lifo()
    }

    pub fn push(&self, t: T) {
        locked(&self.local).push_back(t);
    }

    pub fn pop(&self) -> Option<T> {
        locked(&self.local).pop_back()
    }

    pub fn is_empty(&self) -> bool {
        locked(&self.local).is_empty()
    }

    pub fn len(&self) -> usize {
        locked(&self.local).len()
    }

    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            local: Arc::clone(&self.local),
        }
    }
}

pub struct Stealer<T> {
    local: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            local: Arc::clone(&self.local),
        }
    }
}

impl<T> Stealer<T> {
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.local).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    pub fn is_empty(&self) -> bool {
        locked(&self.local).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_lifo_owner_fifo_stealer() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_batch_pop_moves_work() {
        let inj = Injector::new();
        for i in 0..8 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        // Half the queue (4 of 8) moved: one returned, three landed locally.
        assert_eq!(w.len(), 3);
        assert_eq!(inj.len(), 4);
    }

    #[test]
    fn steal_from_iterator_folds() {
        let all_empty: Steal<u32> = [Steal::Empty, Steal::Empty].into_iter().collect();
        assert!(all_empty.is_empty());
        let with_retry: Steal<u32> = [Steal::Empty, Steal::Retry].into_iter().collect();
        assert!(with_retry.is_retry());
        let with_success: Steal<u32> = [Steal::Retry, Steal::Success(7), Steal::Empty]
            .into_iter()
            .collect();
        assert_eq!(with_success.success(), Some(7));
    }
}
