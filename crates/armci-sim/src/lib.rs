//! In-process simulated cluster fabric with ARMCI-style one-sided
//! communication.
//!
//! The original MRTS runs on clusters and uses ARMCI (Aggregate Remote
//! Memory Copy Interface) for low-level one-sided inter-node communication:
//! data transfer operations, atomic operations, memory management, and
//! locks. This crate reproduces that API surface for a *simulated* cluster:
//! the "nodes" are threads of one process, connected by a [`Fabric`]
//! providing
//!
//! * **active messages** ([`Endpoint::am_send`]) — one-sided sends of
//!   `(handler, payload)` pairs that need no posted receive,
//! * **one-sided memory** — [`Endpoint::put`], [`Endpoint::get`], and
//!   [`Endpoint::accumulate_u64`] against registered remote regions,
//! * **global locks** ([`Endpoint::lock`] / [`Endpoint::unlock`]) and a
//!   [`Endpoint::barrier`],
//! * a configurable [`NetworkModel`] (per-message latency + bandwidth) that
//!   delays message visibility, and
//! * per-endpoint traffic statistics ([`Endpoint::stats`]) used by the
//!   runtime's communication accounting.
//!
//! Everything is deterministic when the network model is
//! [`NetworkModel::instant`] and the threads are driven deterministically.

use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Index of a simulated node.
pub type NodeId = u16;

/// A delivered active message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ActiveMessage {
    pub src: NodeId,
    pub handler: u32,
    pub payload: Vec<u8>,
}

/// Latency/bandwidth model for message visibility.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// Fixed per-message latency.
    pub latency: Duration,
    /// Bytes per second; `f64::INFINITY` disables the bandwidth term.
    pub bandwidth: f64,
}

impl NetworkModel {
    /// Zero latency, infinite bandwidth: messages are visible immediately.
    pub fn instant() -> Self {
        NetworkModel {
            latency: Duration::ZERO,
            bandwidth: f64::INFINITY,
        }
    }

    /// A model resembling a 2000s-era cluster interconnect.
    pub fn cluster() -> Self {
        NetworkModel {
            latency: Duration::from_micros(50),
            bandwidth: 100e6,
        }
    }

    /// Transfer time for a message of `bytes` bytes.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        if self.bandwidth.is_finite() && self.bandwidth > 0.0 {
            self.latency + Duration::from_secs_f64(bytes as f64 / self.bandwidth)
        } else {
            self.latency
        }
    }
}

#[derive(Debug)]
struct TimedMsg {
    deliver_at: Instant,
    seq: u64,
    msg: ActiveMessage,
}

impl PartialEq for TimedMsg {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for TimedMsg {}
impl PartialOrd for TimedMsg {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimedMsg {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

#[derive(Default)]
struct Inbox {
    heap: Mutex<BinaryHeap<Reverse<TimedMsg>>>,
    cond: Condvar,
}

#[derive(Default)]
struct BarrierState {
    count: Mutex<(usize, u64)>, // (waiting, generation)
    cond: Condvar,
}

/// Traffic counters for one endpoint.
#[derive(Clone, Debug, Default)]
pub struct TrafficStats {
    pub msgs_sent: usize,
    pub bytes_sent: usize,
    pub msgs_received: usize,
    pub bytes_received: usize,
    pub puts: usize,
    pub gets: usize,
}

type RegionMap = HashMap<(NodeId, u64), Arc<Mutex<Vec<u8>>>>;

struct Shared {
    n: usize,
    model: NetworkModel,
    inboxes: Vec<Inbox>,
    regions: Mutex<RegionMap>,
    locks: Mutex<HashMap<u64, NodeId>>,
    locks_cond: Condvar,
    barrier: BarrierState,
    seq: AtomicU64,
    live_endpoints: AtomicUsize,
}

/// The simulated interconnect; create one per simulated cluster.
pub struct Fabric;

impl Fabric {
    /// Build a fabric with `n` nodes; returns one [`Endpoint`] per node.
    /// `Fabric` is a constructor namespace only -- all state lives in the
    /// endpoints' shared core, so there is no `Self` to return.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(n: usize, model: NetworkModel) -> Vec<Endpoint> {
        assert!(n > 0 && n <= u16::MAX as usize);
        let shared = Arc::new(Shared {
            n,
            model,
            inboxes: (0..n).map(|_| Inbox::default()).collect(),
            regions: Mutex::new(HashMap::new()),
            locks: Mutex::new(HashMap::new()),
            locks_cond: Condvar::new(),
            barrier: BarrierState::default(),
            seq: AtomicU64::new(0),
            live_endpoints: AtomicUsize::new(n),
        });
        (0..n)
            .map(|i| Endpoint {
                node: i as NodeId,
                shared: shared.clone(),
                stats: TrafficStats::default(),
            })
            .collect::<Vec<_>>()
    }
}

/// One node's handle to the fabric.
pub struct Endpoint {
    node: NodeId,
    shared: Arc<Shared>,
    stats: TrafficStats,
}

impl Endpoint {
    /// This endpoint's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the fabric.
    pub fn num_nodes(&self) -> usize {
        self.shared.n
    }

    /// Traffic counters for this endpoint.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    // ----- active messages ------------------------------------------------

    /// One-sided send: the receiver needs no matching receive call; the
    /// message becomes visible after the network model's delay.
    pub fn am_send(&mut self, dest: NodeId, handler: u32, payload: Vec<u8>) {
        assert!((dest as usize) < self.shared.n, "no such node {dest}");
        let bytes = payload.len();
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes;
        let deliver_at = Instant::now() + self.shared.model.transfer_time(bytes);
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        let inbox = &self.shared.inboxes[dest as usize];
        inbox.heap.lock().push(Reverse(TimedMsg {
            deliver_at,
            seq,
            msg: ActiveMessage {
                src: self.node,
                handler,
                payload,
            },
        }));
        inbox.cond.notify_one();
    }

    /// Non-blocking receive of the next ripe message.
    pub fn try_recv(&mut self) -> Option<ActiveMessage> {
        let inbox = &self.shared.inboxes[self.node as usize];
        let mut heap = inbox.heap.lock();
        if let Some(Reverse(top)) = heap.peek() {
            if top.deliver_at <= Instant::now() {
                let msg = heap.pop().expect("peek() just returned this entry").0.msg;
                self.stats.msgs_received += 1;
                self.stats.bytes_received += msg.payload.len();
                return Some(msg);
            }
        }
        None
    }

    /// Blocking receive with a timeout. Returns `None` on timeout.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<ActiveMessage> {
        let deadline = Instant::now() + timeout;
        let inbox = &self.shared.inboxes[self.node as usize];
        let mut heap = inbox.heap.lock();
        loop {
            let now = Instant::now();
            if let Some(Reverse(top)) = heap.peek() {
                if top.deliver_at <= now {
                    let msg = heap.pop().expect("peek() just returned this entry").0.msg;
                    self.stats.msgs_received += 1;
                    self.stats.bytes_received += msg.payload.len();
                    return Some(msg);
                }
                // Wait until the head ripens or the deadline passes.
                let wake = top.deliver_at.min(deadline);
                if wake <= now {
                    return None;
                }
                inbox.cond.wait_until(&mut heap, wake);
            } else {
                if now >= deadline {
                    return None;
                }
                inbox.cond.wait_until(&mut heap, deadline);
            }
            if Instant::now() >= deadline
                && heap.peek().is_none_or(|Reverse(t)| t.deliver_at > deadline)
            {
                return None;
            }
        }
    }

    /// Number of queued (possibly not yet ripe) messages.
    pub fn pending(&self) -> usize {
        self.shared.inboxes[self.node as usize].heap.lock().len()
    }

    // ----- one-sided memory -------------------------------------------------

    /// Register a region of `size` bytes under `key` on this node. Remote
    /// nodes address it as `(node, key)`.
    pub fn register_region(&mut self, key: u64, size: usize) {
        let mut regions = self.shared.regions.lock();
        let prev = regions.insert((self.node, key), Arc::new(Mutex::new(vec![0; size])));
        assert!(prev.is_none(), "region {key} already registered");
    }

    fn region(&self, node: NodeId, key: u64) -> Arc<Mutex<Vec<u8>>> {
        self.shared
            .regions
            .lock()
            .get(&(node, key))
            .unwrap_or_else(|| panic!("no region {key} on node {node}"))
            .clone()
    }

    /// One-sided write into a remote (or local) region.
    pub fn put(&mut self, node: NodeId, key: u64, offset: usize, data: &[u8]) {
        let region = self.region(node, key);
        let mut mem = region.lock();
        mem[offset..offset + data.len()].copy_from_slice(data);
        self.stats.puts += 1;
        self.stats.bytes_sent += data.len();
    }

    /// One-sided read from a remote (or local) region.
    pub fn get(&mut self, node: NodeId, key: u64, offset: usize, len: usize) -> Vec<u8> {
        let region = self.region(node, key);
        let mem = region.lock();
        self.stats.gets += 1;
        self.stats.bytes_received += len;
        mem[offset..offset + len].to_vec()
    }

    /// Atomic fetch-and-add on a little-endian u64 in a remote region;
    /// returns the previous value.
    pub fn accumulate_u64(&mut self, node: NodeId, key: u64, offset: usize, delta: u64) -> u64 {
        let region = self.region(node, key);
        let mut mem = region.lock();
        let old = u64::from_le_bytes(
            mem[offset..offset + 8]
                .try_into()
                .expect("accumulate window is 8 bytes"),
        );
        mem[offset..offset + 8].copy_from_slice(&old.wrapping_add(delta).to_le_bytes());
        old
    }

    // ----- global locks and barrier ------------------------------------------

    /// Acquire global lock `id` (blocking; not reentrant).
    pub fn lock(&self, id: u64) {
        let mut locks = self.shared.locks.lock();
        while locks.contains_key(&id) {
            assert_ne!(
                locks.get(&id),
                Some(&self.node),
                "global lock {id} is not reentrant"
            );
            self.shared.locks_cond.wait(&mut locks);
        }
        locks.insert(id, self.node);
    }

    /// Release global lock `id`; panics if this node does not hold it.
    pub fn unlock(&self, id: u64) {
        let mut locks = self.shared.locks.lock();
        match locks.remove(&id) {
            Some(owner) if owner == self.node => {}
            other => panic!(
                "unlock of lock {id} not held by node {} ({other:?})",
                self.node
            ),
        }
        self.shared.locks_cond.notify_all();
    }

    /// Barrier over all live endpoints of the fabric.
    pub fn barrier(&self) {
        let total = self.shared.live_endpoints.load(Ordering::SeqCst);
        let mut guard = self.shared.barrier.count.lock();
        let gen = guard.1;
        guard.0 += 1;
        if guard.0 >= total {
            guard.0 = 0;
            guard.1 += 1;
            self.shared.barrier.cond.notify_all();
        } else {
            while guard.1 == gen {
                self.shared.barrier.cond.wait(&mut guard);
            }
        }
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.shared.live_endpoints.fetch_sub(1, Ordering::SeqCst);
        // A dying endpoint may strand a barrier; wake waiters so they can
        // re-check the live count. (The runtime never drops endpoints while
        // a barrier is in flight, but tests might.)
        self.shared.barrier.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn am_roundtrip_two_nodes() {
        let mut eps = Fabric::new(2, NetworkModel::instant());
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.am_send(1, 7, vec![1, 2, 3]);
        let msg = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.src, 0);
        assert_eq!(msg.handler, 7);
        assert_eq!(msg.payload, vec![1, 2, 3]);
        assert_eq!(a.stats().msgs_sent, 1);
        assert_eq!(b.stats().msgs_received, 1);
        assert_eq!(b.stats().bytes_received, 3);
    }

    #[test]
    fn self_send_works() {
        let mut eps = Fabric::new(1, NetworkModel::instant());
        let mut a = eps.pop().unwrap();
        a.am_send(0, 42, vec![]);
        assert_eq!(a.try_recv().unwrap().handler, 42);
        assert!(a.try_recv().is_none());
    }

    #[test]
    fn latency_delays_visibility() {
        let model = NetworkModel {
            latency: Duration::from_millis(30),
            bandwidth: f64::INFINITY,
        };
        let mut eps = Fabric::new(2, model);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.am_send(1, 1, vec![0; 16]);
        // Not visible immediately...
        assert!(b.try_recv().is_none());
        assert_eq!(b.pending(), 1);
        // ...but visible after the latency.
        let msg = b.recv_timeout(Duration::from_millis(500));
        assert!(msg.is_some());
    }

    #[test]
    fn message_order_preserved_between_endpoints() {
        let mut eps = Fabric::new(2, NetworkModel::instant());
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        for i in 0..100u32 {
            a.am_send(1, i, vec![]);
        }
        for i in 0..100u32 {
            let m = b.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(m.handler, i, "messages must arrive in send order");
        }
    }

    #[test]
    fn put_get_accumulate() {
        let mut eps = Fabric::new(2, NetworkModel::instant());
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        b.register_region(5, 64);
        a.put(1, 5, 8, &[9, 9, 9]);
        assert_eq!(a.get(1, 5, 8, 3), vec![9, 9, 9]);
        assert_eq!(b.get(1, 5, 8, 3), vec![9, 9, 9]);
        let old = a.accumulate_u64(1, 5, 16, 10);
        assert_eq!(old, 0);
        let old = b.accumulate_u64(1, 5, 16, 5);
        assert_eq!(old, 10);
        assert_eq!(
            u64::from_le_bytes(a.get(1, 5, 16, 8).try_into().unwrap()),
            15
        );
    }

    #[test]
    #[should_panic(expected = "no region")]
    fn unknown_region_panics() {
        let mut eps = Fabric::new(1, NetworkModel::instant());
        let mut a = eps.pop().unwrap();
        a.get(0, 99, 0, 1);
    }

    #[test]
    fn global_locks_mutual_exclusion() {
        let eps = Fabric::new(4, NetworkModel::instant());
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for ep in eps {
            let counter = counter.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    ep.lock(1);
                    // Critical section: non-atomic read-modify-write.
                    let v = *counter.lock();
                    thread::yield_now();
                    *counter.lock() = v + 1;
                    ep.unlock(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 400);
    }

    #[test]
    fn barrier_synchronizes_all_nodes() {
        let eps = Fabric::new(4, NetworkModel::instant());
        let flag = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for (i, ep) in eps.into_iter().enumerate() {
            let flag = flag.clone();
            handles.push(thread::spawn(move || {
                for round in 0..10 {
                    if i == 0 {
                        flag.store(round + 1, Ordering::SeqCst);
                    }
                    ep.barrier();
                    // After the barrier, everyone must see round+1.
                    assert_eq!(flag.load(Ordering::SeqCst), round + 1);
                    ep.barrier();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn cross_thread_am_traffic() {
        let mut eps = Fabric::new(3, NetworkModel::instant());
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let (mut a, mut b, mut c) = (a, b, c);
        let t1 = thread::spawn(move || {
            for i in 0..50 {
                a.am_send(2, i, vec![i as u8]);
            }
            a
        });
        let t2 = thread::spawn(move || {
            for i in 0..50 {
                b.am_send(2, 100 + i, vec![i as u8]);
            }
            b
        });
        let mut got = 0;
        while got < 100 {
            if c.recv_timeout(Duration::from_secs(2)).is_some() {
                got += 1;
            } else {
                panic!("timed out after {got} messages");
            }
        }
        t1.join().unwrap();
        t2.join().unwrap();
        assert!(c.try_recv().is_none());
    }

    #[test]
    fn transfer_time_model() {
        let m = NetworkModel {
            latency: Duration::from_micros(100),
            bandwidth: 1e6, // 1 MB/s
        };
        let t = m.transfer_time(1_000_000);
        assert!((t.as_secs_f64() - 1.0001).abs() < 1e-6);
        assert_eq!(
            NetworkModel::instant().transfer_time(1 << 30),
            Duration::ZERO
        );
    }
}
