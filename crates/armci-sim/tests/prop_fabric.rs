//! Property tests for the simulated fabric: per-pair message ordering,
//! payload integrity, and one-sided memory semantics under arbitrary
//! operation sequences.

use armci_sim::{Fabric, NetworkModel};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn payloads_arrive_intact_and_in_order(
        msgs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..40)
    ) {
        let mut eps = Fabric::new(2, NetworkModel::instant());
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        for (i, m) in msgs.iter().enumerate() {
            a.am_send(1, i as u32, m.clone());
        }
        for (i, m) in msgs.iter().enumerate() {
            let got = b.recv_timeout(Duration::from_secs(1)).expect("message lost");
            prop_assert_eq!(got.handler, i as u32, "order violated");
            prop_assert_eq!(&got.payload, m);
            prop_assert_eq!(got.src, 0);
        }
        prop_assert!(b.try_recv().is_none());
    }

    #[test]
    fn interleaved_senders_preserve_per_pair_order(
        n_a in 1usize..30, n_b in 1usize..30
    ) {
        let mut eps = Fabric::new(3, NetworkModel::instant());
        let mut c = eps.pop().unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        // Interleave sends from two sources.
        for i in 0..n_a.max(n_b) {
            if i < n_a {
                a.am_send(2, i as u32, vec![0]);
            }
            if i < n_b {
                b.am_send(2, i as u32, vec![1]);
            }
        }
        let mut last_a = None;
        let mut last_b = None;
        for _ in 0..n_a + n_b {
            let m = c.recv_timeout(Duration::from_secs(1)).expect("lost");
            let last = if m.payload[0] == 0 { &mut last_a } else { &mut last_b };
            if let Some(prev) = *last {
                prop_assert!(m.handler > prev, "per-pair order violated");
            }
            *last = Some(m.handler);
        }
    }

    #[test]
    fn put_get_roundtrip_arbitrary_regions(
        writes in prop::collection::vec((0usize..200, prop::collection::vec(any::<u8>(), 1..32)), 1..20)
    ) {
        let mut eps = Fabric::new(2, NetworkModel::instant());
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        b.register_region(1, 256);
        // Model the region locally and compare after arbitrary writes.
        let mut model = vec![0u8; 256];
        for (off, data) in &writes {
            let off = *off % (256 - data.len());
            a.put(1, 1, off, data);
            model[off..off + data.len()].copy_from_slice(data);
        }
        let readback = a.get(1, 1, 0, 256);
        prop_assert_eq!(readback, model);
    }

    #[test]
    fn accumulate_is_a_fetch_add(deltas in prop::collection::vec(1u64..1000, 1..20)) {
        let mut eps = Fabric::new(1, NetworkModel::instant());
        let mut a = eps.pop().unwrap();
        a.register_region(7, 8);
        let mut sum = 0u64;
        for &d in &deltas {
            let old = a.accumulate_u64(0, 7, 0, d);
            prop_assert_eq!(old, sum);
            sum += d;
        }
        let raw = a.get(0, 7, 0, 8);
        prop_assert_eq!(u64::from_le_bytes(raw.try_into().unwrap()), sum);
    }
}
