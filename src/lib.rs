//! Umbrella crate for the MRTS parallel out-of-core mesh generation suite.
//!
//! Re-exports the workspace crates so that examples and integration tests can
//! use a single dependency. See the individual crates for the real APIs:
//! [`mrts`] (the runtime), [`pumg_delaunay`] (the mesher),
//! [`pumg_methods`] (UPDR/NUPDR/PCDM and their out-of-core ports).

pub use armci_sim;
pub use mrts;
pub use pumg_delaunay as delaunay;
pub use pumg_geometry as geometry;
pub use pumg_methods as methods;
pub use pumg_quadtree as quadtree;
pub use pumg_schedsim as schedsim;
