//! The repository's audit gate.
//!
//! `cargo run -p pumg --bin audit` runs, in order:
//!
//! 1. `cargo fmt --check` — formatting;
//! 2. `cargo clippy --workspace --all-targets` with the curated deny
//!    list — lints;
//! 3. `cargo build --release` — the instrumentation must compile out;
//! 4. `cargo test -q` — the full workspace test suite;
//! 5. an in-process sweep of the MRTS invariant checker and race
//!    detector over both engines, including seeded schedule
//!    permutations of the DES engine.
//!
//! The process exits non-zero on the first failing step, so the binary
//! doubles as the CI gate.
//!
//! `--chaos` runs the storage-fault chaos sweep instead: ≥20 seeded
//! fault schedules (transient EIO, torn writes, latency spikes, ENOSPC
//! windows) driven through both engines on a real mesh workload, with
//! the invariant checker attached and the final mesh compared against
//! the fault-free run. `--quick` shrinks the sweep for smoke jobs. The
//! sweep writes its per-schedule report to `target/chaos-report.txt`.
//!
//! `--chaos-net` runs the fabric-fault sweep: ≥20 seeded message
//! drop/duplicate/delay/reorder schedules per engine (plus partition
//! windows and a duplicate storm), each required to produce the
//! fault-free mesh with zero invariant violations — the
//! reliable-delivery layer absorbs every fault. Report in
//! `target/chaos-net-report.txt`.
//!
//! `--chaos-service` runs the supervised multi-job service sweep: a
//! ≥16-node pool multiplexing ≥8 concurrent mesh jobs (each its own
//! fault domain with an independent storage/network fault stream),
//! plus poison jobs, an ENOSPC degraded-mode scenario with load
//! shedding, and a mid-run node kill. Every non-quarantined job must
//! reproduce its fault-free bytes; quarantined jobs must persist
//! decodable replay artifacts. Report in
//! `target/chaos-service-report.txt`.
//!
//! `--nodes <n>` overrides the simulated node count of the chaos
//! sweeps (default 2; the service sweep floors its pool at 16). Runs
//! at non-default widths skip replay-artifact persistence, since an
//! artifact must be reproducible from its harness id + seed alone.
//!
//! `--analyze` runs only the `mrts-analyzer` static-analysis pass
//! (protocol exhaustiveness, lock-order graph, runtime unwrap ban)
//! against the workspace source; the default gate also runs it between
//! the test suite and the invariant sweep.
//!
//! Record/replay: both chaos sweeps record every threaded schedule's
//! nondeterministic decisions and, on failure, persist a self-describing
//! artifact under `target/replay/`; `--seed <n>` re-runs a single
//! schedule, `--replay <path>` re-executes a persisted artifact under
//! its decision log and reports the first divergence between recorded
//! and live audit streams, and `--replay-smoke` proves byte-identical
//! replay (plus perturbation probes) over a batch of chaos-net seeds.

use std::process::{Command, ExitCode};

/// Lints denied beyond rustc's warning set. Curated: every entry has
/// bitten a runtime like this one (silent zeroing, debris left in,
/// panics shipped to production paths).
const CLIPPY_DENY: &[&str] = &[
    "warnings",
    "clippy::erasing_op",
    "clippy::dbg_macro",
    "clippy::todo",
    "clippy::unimplemented",
];

fn cargo(args: &[&str]) -> bool {
    println!("==> cargo {}", args.join(" "));
    match Command::new(env!("CARGO")).args(args).status() {
        Ok(st) if st.success() => true,
        Ok(st) => {
            eprintln!("audit: `cargo {}` failed ({st})", args.join(" "));
            false
        }
        Err(e) => {
            eprintln!("audit: could not spawn cargo: {e}");
            false
        }
    }
}

/// Run the source-level static analysis (protocol exhaustiveness,
/// lock-order graph, runtime unwrap ban) over the workspace tree.
fn static_analysis() -> bool {
    println!("==> mrts-analyzer (protocol / lock-order / unwrap-ban)");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    match mrts_analyzer::analyze_tree(root) {
        Ok(report) => {
            println!(
                "    {} tags, {} counters, {} decisions, {} service states, {} locks, \
                 {} fns scanned",
                report.tags_checked,
                report.counters_checked,
                report.decisions_checked,
                report.service_states_checked,
                report.locks_seen,
                report.fns_scanned
            );
            for v in &report.violations {
                eprintln!("    {v}");
            }
            if report.pass() {
                println!("    analysis clean");
                true
            } else {
                eprintln!(
                    "audit: static analysis found {} violation(s)",
                    report.violations.len()
                );
                false
            }
        }
        Err(e) => {
            eprintln!("audit: static analysis could not run: {e}");
            false
        }
    }
}

fn lint_and_test() -> bool {
    let mut clippy = vec!["clippy", "--workspace", "--all-targets", "--"];
    let denies: Vec<String> = CLIPPY_DENY.iter().map(|l| format!("-D{l}")).collect();
    clippy.extend(denies.iter().map(String::as_str));
    cargo(&["fmt", "--check"])
        && cargo(&clippy)
        && cargo(&["build", "--release"])
        && cargo(&["test", "-q"])
}

#[cfg(any(feature = "audit", debug_assertions))]
mod invariant_sweep {
    //! A self-contained MRTS workload (ring of growing cells under memory
    //! pressure, a migration, a multicast) run with the fail-fast
    //! invariant checker attached, across several schedule seeds, on both
    //! engines.

    use mrts::audit::{FailMode, InvariantChecker, RaceDetector};
    use mrts::codec::{PayloadReader, PayloadWriter};
    use mrts::prelude::*;
    use std::any::Any;
    use std::sync::Arc;

    const CELL_TAG: TypeTag = TypeTag(1);
    const H_RING: HandlerId = HandlerId(1);
    const H_MOVE: HandlerId = HandlerId(2);

    struct Cell {
        value: u64,
        neighbors: Vec<MobilePtr>,
        pad: Vec<u8>,
    }

    impl Cell {
        fn decode(buf: &[u8]) -> Result<Box<dyn MobileObject>, ObjectDecodeError> {
            let mut r = PayloadReader::new(buf);
            let value = r.u64().unwrap();
            let neighbors = r.ptrs().unwrap();
            let pad = r.bytes().unwrap().to_vec();
            Ok(Box::new(Cell {
                value,
                neighbors,
                pad,
            }))
        }
    }

    impl MobileObject for Cell {
        fn type_tag(&self) -> TypeTag {
            CELL_TAG
        }

        fn encode(&self, buf: &mut Vec<u8>) {
            let mut w = PayloadWriter::new();
            w.u64(self.value).ptrs(&self.neighbors).bytes(&self.pad);
            buf.extend_from_slice(&w.finish());
        }

        fn footprint(&self) -> usize {
            8 + 8 * self.neighbors.len() + self.pad.len() + 48
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn h_ring(obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        let hops = r.u64().unwrap();
        let cell = obj.as_any_mut().downcast_mut::<Cell>().unwrap();
        cell.value += 1;
        // Grow a little on every visit so the out-of-core layer has to
        // re-balance (exercises Resize + Budget events).
        cell.pad.extend_from_slice(&[0u8; 16]);
        if hops > 0 {
            let next = cell.neighbors[0];
            let mut w = PayloadWriter::new();
            w.u64(hops - 1);
            ctx.send(next, H_RING, w.finish());
        }
    }

    fn h_move(_obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        let dest = r.u64().unwrap() as NodeId;
        ctx.migrate(ctx.self_ptr(), dest);
    }

    fn u64_payload(v: u64) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.u64(v);
        w.finish()
    }

    fn des_sweep() -> Result<(), String> {
        let mut reference: Option<u64> = None;
        for seed in [None, Some(7u64), Some(1234), Some(0x5EED)] {
            let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
            let mut cfg = MrtsConfig::out_of_core(3, 600);
            cfg.soft_threshold_frac = 0.25;
            let nodes = cfg.nodes;
            let mut rt = DesRuntime::new(cfg);
            rt.register_type(CELL_TAG, Cell::decode);
            rt.register_handler(H_RING, "ring", h_ring);
            rt.register_handler(H_MOVE, "move", h_move);
            rt.set_schedule_seed(seed);
            rt.attach_audit(chk.clone());
            let cells: Vec<MobilePtr> = (0..nodes)
                .map(|n| MobilePtr::new(ObjectId::new(n as NodeId, 0)))
                .collect();
            for (i, &p) in cells.iter().enumerate() {
                let cell = Box::new(Cell {
                    value: 0,
                    neighbors: vec![cells[(i + 1) % nodes]],
                    pad: vec![0x5A; 256],
                });
                rt.create_object(i as NodeId, cell, 128);
                rt.post(p, H_RING, u64_payload(15));
            }
            rt.post(cells[0], H_MOVE, u64_payload(2));
            rt.run();
            if !chk.violations().is_empty() {
                return Err(format!(
                    "DES run (seed {seed:?}) violated invariants: {:?}",
                    chk.violations()
                ));
            }
            let total: u64 = cells
                .iter()
                .map(|&p| rt.with_object(p, |o| o.as_any().downcast_ref::<Cell>().unwrap().value))
                .sum();
            match reference {
                None => reference = Some(total),
                Some(want) if want != total => {
                    return Err(format!(
                        "seed {seed:?} changed application results: {total} != {want}"
                    ));
                }
                Some(_) => {}
            }
            println!(
                "    DES seed {:>10}: {} events checked, results stable",
                format!("{seed:?}"),
                chk.events_seen()
            );
        }
        Ok(())
    }

    fn threaded_sweep() -> Result<(), String> {
        let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
        let det = Arc::new(RaceDetector::new(3));
        let mut rt = ThreadedRuntime::new(MrtsConfig::in_core(3));
        rt.register_type(CELL_TAG, Cell::decode);
        rt.register_handler(H_RING, "ring", h_ring);
        rt.register_handler(H_MOVE, "move", h_move);
        rt.attach_audit(chk.clone());
        rt.attach_race_detector(det.clone());
        let cells: Vec<MobilePtr> = (0..3)
            .map(|n| MobilePtr::new(ObjectId::new(n, 0)))
            .collect();
        for (i, &p) in cells.iter().enumerate() {
            let cell = Box::new(Cell {
                value: 0,
                neighbors: vec![cells[(i + 1) % 3]],
                pad: vec![0x5A; 64],
            });
            rt.create_object(i as NodeId, cell, 128);
            rt.post(p, H_RING, u64_payload(10));
        }
        rt.post(cells[1], H_MOVE, u64_payload(2));
        rt.run();
        if !chk.violations().is_empty() {
            return Err(format!(
                "threaded run violated invariants: {:?}",
                chk.violations()
            ));
        }
        if !det.races().is_empty() {
            return Err(format!("threaded run raced: {:?}", det.races()));
        }
        println!(
            "    threaded: {} events checked, {} races",
            chk.events_seen(),
            det.races().len()
        );
        Ok(())
    }

    /// Out-of-core threaded run over real spill files: tiny budget and
    /// tiny segments so the segmented spill log rolls and compacts while
    /// the prefetch window streams reloads — the checker validates the
    /// Prefetch (window bound, on-disk state) and Compaction (no live
    /// object lost) invariants against a live run.
    fn threaded_ooc_sweep() -> Result<(), String> {
        let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
        let det = Arc::new(RaceDetector::new(3));
        let mut cfg = MrtsConfig::out_of_core(3, 600);
        cfg.soft_threshold_frac = 0.25;
        cfg.segment_bytes = 512;
        cfg.segment_garbage_frac = 0.3;
        cfg.spill_dir =
            Some(std::env::temp_dir().join(format!("mrts-audit-ooc-{}", std::process::id())));
        let spill = cfg.spill_dir.clone().unwrap();
        let mut rt = ThreadedRuntime::new(cfg);
        rt.register_type(CELL_TAG, Cell::decode);
        rt.register_handler(H_RING, "ring", h_ring);
        rt.register_handler(H_MOVE, "move", h_move);
        rt.attach_audit(chk.clone());
        rt.attach_race_detector(det.clone());
        let cells: Vec<MobilePtr> = (0..3)
            .map(|n| MobilePtr::new(ObjectId::new(n, 0)))
            .collect();
        for (i, &p) in cells.iter().enumerate() {
            let cell = Box::new(Cell {
                value: 0,
                neighbors: vec![cells[(i + 1) % 3]],
                pad: vec![0x5A; 256],
            });
            rt.create_object(i as NodeId, cell, 128);
            rt.post(p, H_RING, u64_payload(15));
        }
        rt.post(cells[0], H_MOVE, u64_payload(2));
        let stats = rt.run();
        let _ = std::fs::remove_dir_all(spill);
        if !chk.violations().is_empty() {
            return Err(format!(
                "threaded OOC run violated invariants: {:?}",
                chk.violations()
            ));
        }
        if !det.races().is_empty() {
            return Err(format!("threaded OOC run raced: {:?}", det.races()));
        }
        if stats.total_of(|n| n.stores) == 0 {
            return Err("threaded OOC run never spilled — sweep is vacuous".into());
        }
        println!(
            "    threaded-ooc: {} events checked ({} stores, {} loads, hit rate {:.0}%, \
             {} elided, {} batches, {} pool hits)",
            chk.events_seen(),
            stats.total_of(|n| n.stores),
            stats.total_of(|n| n.loads),
            100.0 * stats.prefetch_hit_rate(),
            stats.total_of(|n| n.evictions_elided),
            stats.total_of(|n| n.spill_batches),
            stats.total_of(|n| n.buffer_pool_hits),
        );
        Ok(())
    }

    pub fn run() -> bool {
        println!("==> invariant sweep (DES schedule permutations + threaded race check)");
        for (name, res) in [
            ("des", des_sweep()),
            ("threaded", threaded_sweep()),
            ("threaded-ooc", threaded_ooc_sweep()),
        ] {
            if let Err(e) = res {
                eprintln!("audit: {name} sweep failed: {e}");
                return false;
            }
        }
        true
    }
}

#[cfg(not(any(feature = "audit", debug_assertions)))]
mod invariant_sweep {
    pub fn run() -> bool {
        // Release build without the `audit` feature: the instrumentation
        // is compiled out, so there is nothing to sweep in-process. The
        // subprocess steps above already ran the (debug) test suite,
        // which carries the checker.
        println!("==> invariant sweep skipped (instrumentation compiled out)");
        true
    }
}

#[cfg(any(feature = "audit", debug_assertions))]
mod chaos_sweep {
    //! Seeded storage-fault schedules through both engines on OPCDM:
    //! every schedule must finish with zero invariant violations and the
    //! fault-free mesh (transient faults cost time, never correctness);
    //! ENOSPC schedules must degrade and recover.

    use crate::replay_harness;
    use pumg::methods::ooc_pcdm::{opcdm_run, opcdm_run_threaded, opcdm_run_with};
    use pumg::mrts::audit::{EventSink, FailMode, InvariantChecker, RaceDetector};
    use pumg::mrts::config::MrtsConfig;
    use pumg::mrts::fault::FaultPlan;
    use pumg::mrts::stats::RunStats;
    use std::io::Write;
    use std::sync::Arc;
    use std::time::Duration;

    fn mixed_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(0xC0FF_EE00 ^ seed)
            .with_eio(60)
            .with_torn_writes(40)
            .with_latency(80, Duration::from_micros(300))
    }

    fn counters(stats: &RunStats) -> String {
        format!(
            "faults={} retries={} gave_up={} degraded={} elided={} batches={}",
            stats.total_of(|n| n.faults_injected),
            stats.total_of(|n| n.io_retries),
            stats.total_of(|n| n.io_gave_up),
            stats.total_of(|n| n.degraded_entries),
            stats.total_of(|n| n.evictions_elided),
            stats.total_of(|n| n.spill_batches),
        )
    }

    pub fn run(quick: bool, only: Option<u64>, nodes: usize) -> bool {
        let params = replay_harness::params(nodes);
        let (des_seeds, thr_seeds) = if quick { (4u64, 2u64) } else { (14, 6) };
        let des_seeds: Vec<u64> = match only {
            Some(s) => vec![s],
            None => (0..des_seeds).collect(),
        };
        let thr_seeds: Vec<u64> = match only {
            Some(s) => vec![s],
            None => (0..thr_seeds).collect(),
        };
        // `--seed` re-runs one schedule; the fixed-seed extras are skipped.
        let enospc_seeds: &[u64] = match (only, quick) {
            (Some(_), _) => &[],
            (None, true) => &[1],
            (None, false) => &[1, 2, 3],
        };
        let mut report = Vec::<String>::new();
        let mut ok = true;
        let mut say = |line: String| {
            println!("    {line}");
            report.push(line);
        };

        let budget = 70_000usize;
        println!("==> chaos sweep (seeded storage-fault schedules, both engines, {nodes} nodes)");
        let reference = opcdm_run(&params, MrtsConfig::out_of_core(nodes, budget));

        for &seed in &des_seeds {
            let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
            let sink = chk.clone();
            let r = opcdm_run_with(
                &params,
                MrtsConfig::out_of_core(nodes, budget).with_faults(mixed_plan(seed)),
                move |rt| rt.attach_audit(sink),
            );
            let clean = chk.violations().is_empty()
                && (r.elements, r.vertices) == (reference.elements, reference.vertices);
            ok &= clean;
            say(format!(
                "des seed {seed:>2}: {} [{}] mesh {}",
                if clean { "ok" } else { "FAIL" },
                counters(&r.stats),
                r.elements
            ));
            if !chk.violations().is_empty() {
                say(format!("  violations: {:?}", chk.violations()));
            }
        }

        let thr_reference = {
            let mut cfg = MrtsConfig::out_of_core(nodes, budget);
            cfg.spill_dir = Some(spill_dir("chaos-ref"));
            let r = opcdm_run_threaded(&params, cfg);
            let _ = std::fs::remove_dir_all(spill_dir("chaos-ref"));
            r
        };
        for &seed in &thr_seeds {
            let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
            let det = Arc::new(RaceDetector::new(nodes));
            let label = format!("chaos-t{seed}");
            let cfg =
                replay_harness::harness_config(replay_harness::CHAOS_THREADED, seed, &label, nodes)
                    .expect("known harness id");
            let sink: Arc<dyn EventSink> = chk.clone();
            let r = replay_harness::record_run(cfg, std::slice::from_ref(&sink), Some(det.clone()));
            let _ = std::fs::remove_dir_all(replay_harness::spill_dir(&label));
            let clean = chk.violations().is_empty()
                && det.races().is_empty()
                && (r.elements, r.vertices) == (thr_reference.elements, thr_reference.vertices);
            ok &= clean;
            say(format!(
                "threaded seed {seed:>2}: {} [{}] mesh {}",
                if clean { "ok" } else { "FAIL" },
                counters(&r.stats),
                r.elements
            ));
            if !chk.violations().is_empty() {
                say(format!("  violations: {:?}", chk.violations()));
            }
            if !clean && nodes == replay_harness::DEFAULT_NODES {
                let path = replay_harness::persist_artifact(
                    replay_harness::CHAOS_THREADED,
                    seed,
                    r.decisions,
                    r.recorded,
                );
                say(format!(
                    "  failing schedule persisted: {path} (re-run: audit -- --replay {path})"
                ));
            }
        }

        for &seed in enospc_seeds {
            // Window from store-op 0: per-node store-op counters may only
            // reach low single digits at wide `--nodes`, and a window
            // nobody enters makes the degraded-entry requirement fail
            // (by design — vacuity).
            let plan = FaultPlan::new(seed).with_enospc_window(0, 8);
            let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
            let sink = chk.clone();
            let r = opcdm_run_with(
                &params,
                MrtsConfig::out_of_core(nodes, budget).with_faults(plan),
                move |rt| rt.attach_audit(sink),
            );
            let ratio = r.elements as f64 / reference.elements as f64;
            let clean = chk.violations().is_empty()
                && r.stats.total_of(|n| n.degraded_entries) > 0
                && (0.97..1.03).contains(&ratio);
            ok &= clean;
            say(format!(
                "enospc seed {seed:>2}: {} [{}] mesh {}",
                if clean { "ok" } else { "FAIL" },
                counters(&r.stats),
                r.elements
            ));
        }

        let _ = std::fs::create_dir_all("target");
        if let Ok(mut f) = std::fs::File::create("target/chaos-report.txt") {
            for line in &report {
                let _ = writeln!(f, "{line}");
            }
        }
        println!(
            "    {} schedules swept — report in target/chaos-report.txt",
            des_seeds.len() + thr_seeds.len() + enospc_seeds.len()
        );
        ok
    }

    fn spill_dir(label: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mrts-audit-{label}-{}", std::process::id()))
    }
}

#[cfg(not(any(feature = "audit", debug_assertions)))]
mod chaos_sweep {
    pub fn run(_quick: bool, _only: Option<u64>, _nodes: usize) -> bool {
        println!("==> chaos sweep skipped (instrumentation compiled out)");
        true
    }
}

#[cfg(any(feature = "audit", debug_assertions))]
mod chaos_net_sweep {
    //! Seeded fabric-fault schedules (message drops, duplicates, delays,
    //! reorders, partition windows) through both engines on OPCDM. The
    //! reliable-delivery layer — sequence numbers, positive acks,
    //! bounded-exponential retransmit, receiver dedup — must finish every
    //! schedule with zero invariant violations and the byte-identical
    //! fault-free mesh; a duplicate storm must never re-execute a handler.

    use crate::replay_harness;
    use pumg::methods::ooc_pcdm::{
        opcdm_run, opcdm_run_threaded, opcdm_run_threaded_with, opcdm_run_with,
    };
    use pumg::mrts::audit::{EventSink, FailMode, InvariantChecker, RaceDetector};
    use pumg::mrts::config::MrtsConfig;
    use pumg::mrts::netfault::NetFaultPlan;
    use pumg::mrts::stats::RunStats;
    use std::io::Write;
    use std::sync::Arc;

    // Rates run hotter than the `tests/chaos.rs` schedules: the mesh
    // workload exchanges only a handful of remote messages per run, so a
    // sweep at realistic rates could pass without injecting anything.
    // (The plan itself lives in `replay_harness` so a persisted seed maps
    // back to the exact schedule.)
    fn net_plan(seed: u64) -> NetFaultPlan {
        replay_harness::chaos_net_plan(seed)
    }

    fn counters(stats: &RunStats) -> String {
        format!(
            "dropped={} retransmits={} dups={} hints={} acks={}",
            stats.total_of(|n| n.messages_dropped),
            stats.total_of(|n| n.retransmits),
            stats.total_of(|n| n.dup_suppressed),
            stats.total_of(|n| n.hints_invalidated),
            stats.total_of(|n| n.acks_sent),
        )
    }

    pub fn run(quick: bool, only: Option<u64>, nodes: usize) -> bool {
        let params = replay_harness::params(nodes);
        let (des_seeds, thr_seeds) = if quick { (4u64, 2u64) } else { (20, 20) };
        let des_seeds: Vec<u64> = match only {
            Some(s) => vec![s],
            None => (0..des_seeds).collect(),
        };
        let thr_seeds: Vec<u64> = match only {
            Some(s) => vec![s],
            None => (0..thr_seeds).collect(),
        };
        // `--seed` re-runs one schedule; the fixed-seed extras are skipped.
        let partition_seeds: &[u64] = match (only, quick) {
            (Some(_), _) => &[],
            (None, true) => &[1],
            (None, false) => &[1, 2, 3],
        };
        let run_dup_storm = only.is_none();
        let mut report = Vec::<String>::new();
        let mut ok = true;
        let mut say = |line: String| {
            println!("    {line}");
            report.push(line);
        };

        let budget = 70_000usize;
        println!(
            "==> chaos-net sweep (seeded fabric-fault schedules, both engines, {nodes} nodes)"
        );
        let reference = opcdm_run(&params, MrtsConfig::out_of_core(nodes, budget));

        let mut injected = 0usize;
        for &seed in &des_seeds {
            let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
            let sink = chk.clone();
            let r = opcdm_run_with(
                &params,
                MrtsConfig::out_of_core(nodes, budget).with_net_faults(net_plan(seed)),
                move |rt| rt.attach_audit(sink),
            );
            let clean = chk.violations().is_empty()
                && (r.elements, r.vertices) == (reference.elements, reference.vertices);
            ok &= clean;
            injected +=
                r.stats.total_of(|n| n.messages_dropped) + r.stats.total_of(|n| n.dup_suppressed);
            say(format!(
                "des seed {seed:>2}: {} [{}] mesh {}",
                if clean { "ok" } else { "FAIL" },
                counters(&r.stats),
                r.elements
            ));
            if !chk.violations().is_empty() {
                say(format!("  violations: {:?}", chk.violations()));
            }
        }

        // Partition windows: a contiguous range of sequence numbers per
        // edge is dropped on every attempt the bounded-drop guarantee
        // allows, then the fabric heals. The window sits at low sequence
        // numbers because the mesh workload exchanges only a handful of
        // remote messages per edge.
        for &seed in partition_seeds {
            let plan = NetFaultPlan::new(0x9A27 ^ seed).with_partition(1, 6);
            let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
            let sink = chk.clone();
            let r = opcdm_run_with(
                &params,
                MrtsConfig::out_of_core(nodes, budget).with_net_faults(plan),
                move |rt| rt.attach_audit(sink),
            );
            let clean = chk.violations().is_empty()
                && (r.elements, r.vertices) == (reference.elements, reference.vertices);
            ok &= clean;
            say(format!(
                "partition seed {seed:>2}: {} [{}] mesh {}",
                if clean { "ok" } else { "FAIL" },
                counters(&r.stats),
                r.elements
            ));
        }

        let thr_reference = {
            let mut cfg = MrtsConfig::out_of_core(nodes, budget);
            cfg.spill_dir = Some(spill_dir("chaos-net-ref"));
            let r = opcdm_run_threaded(&params, cfg);
            let _ = std::fs::remove_dir_all(spill_dir("chaos-net-ref"));
            r
        };
        for &seed in &thr_seeds {
            let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
            let det = Arc::new(RaceDetector::new(nodes));
            let label = format!("chaos-net-t{seed}");
            let cfg = replay_harness::harness_config(
                replay_harness::CHAOS_NET_THREADED,
                seed,
                &label,
                nodes,
            )
            .expect("known harness id");
            let sink: Arc<dyn EventSink> = chk.clone();
            let r = replay_harness::record_run(cfg, std::slice::from_ref(&sink), Some(det.clone()));
            let _ = std::fs::remove_dir_all(replay_harness::spill_dir(&label));
            let clean = chk.violations().is_empty()
                && det.races().is_empty()
                && (r.elements, r.vertices) == (thr_reference.elements, thr_reference.vertices);
            ok &= clean;
            injected +=
                r.stats.total_of(|n| n.messages_dropped) + r.stats.total_of(|n| n.dup_suppressed);
            say(format!(
                "threaded seed {seed:>2}: {} [{}] mesh {}",
                if clean { "ok" } else { "FAIL" },
                counters(&r.stats),
                r.elements
            ));
            if !chk.violations().is_empty() {
                say(format!("  violations: {:?}", chk.violations()));
            }
            if !clean && nodes == replay_harness::DEFAULT_NODES {
                let path = replay_harness::persist_artifact(
                    replay_harness::CHAOS_NET_THREADED,
                    seed,
                    r.decisions,
                    r.recorded,
                );
                say(format!(
                    "  failing schedule persisted: {path} (re-run: audit -- --replay {path})"
                ));
            }
        }

        // Duplicate storm: half of all transmissions duplicated; a handler
        // executed twice drives the checker's outstanding-delivery count
        // negative (DuplicateDelivery) and would mutate the mesh.
        if run_dup_storm {
            let plan = NetFaultPlan::new(0xD0D0).with_dups(500);
            let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
            let dir = spill_dir("chaos-net-dup");
            let mut cfg = MrtsConfig::out_of_core(nodes, budget).with_net_faults(plan);
            cfg.spill_dir = Some(dir.clone());
            let sink = chk.clone();
            let r = opcdm_run_threaded_with(&params, cfg, move |rt| rt.attach_audit(sink));
            let _ = std::fs::remove_dir_all(dir);
            let clean = chk.violations().is_empty()
                && r.stats.total_of(|n| n.dup_suppressed) > 0
                && (r.elements, r.vertices) == (thr_reference.elements, thr_reference.vertices);
            ok &= clean;
            say(format!(
                "dup storm:       {} [{}] mesh {}",
                if clean { "ok" } else { "FAIL" },
                counters(&r.stats),
                r.elements
            ));
        }

        if injected == 0 {
            say("FAIL: sweep injected no fabric faults — vacuous".into());
            ok = false;
        }

        let _ = std::fs::create_dir_all("target");
        if let Ok(mut f) = std::fs::File::create("target/chaos-net-report.txt") {
            for line in &report {
                let _ = writeln!(f, "{line}");
            }
        }
        println!(
            "    {} schedules swept — report in target/chaos-net-report.txt",
            des_seeds.len() + thr_seeds.len() + partition_seeds.len() + run_dup_storm as usize
        );
        ok
    }

    fn spill_dir(label: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mrts-audit-{label}-{}", std::process::id()))
    }
}

#[cfg(not(any(feature = "audit", debug_assertions)))]
mod chaos_net_sweep {
    pub fn run(_quick: bool, _only: Option<u64>, _nodes: usize) -> bool {
        println!("==> chaos-net sweep skipped (instrumentation compiled out)");
        true
    }
}

#[cfg(any(feature = "audit", debug_assertions))]
mod chaos_service_sweep {
    //! The supervised multi-job service under sustained chaos: a ≥16-node
    //! pool multiplexing ≥8 concurrent mesh jobs, each job a fault domain
    //! with an independent storage/network fault stream derived from one
    //! base seed. Every non-quarantined job must reproduce its fault-free
    //! bytes; poison jobs must quarantine with decodable replay
    //! artifacts; a mid-run node kill must recover exactly the jobs homed
    //! there; an ENOSPC job must drive the service degraded (shedding
    //! load) and fault-free completions must bring it back. A fault-free
    //! reference pass doubles as the no-quarantine-on-clean-seed guard.

    use pumg::methods::domain::Workload;
    use pumg::methods::mesh_job::MeshJob;
    use pumg::methods::pcdm::PcdmParams;
    use pumg::mrts::audit::{FailMode, InvariantChecker, ServiceEvent, ServiceLog};
    use pumg::mrts::fault::FaultPlan;
    use pumg::mrts::netfault::NetFaultPlan;
    use pumg::mrts::service::{
        AdmissionError, JobService, JobSpec, JobState, QuarantineArtifact, ServiceConfig,
    };
    use std::io::Write;
    use std::sync::Arc;

    /// Base seed every per-job fault stream derives from.
    const BASE_SEED: u64 = 0x5E21_11CE;
    /// Fault-domain width of every mesh job (16 nodes / 2 = 8 concurrent).
    const WIDTH: usize = 2;
    /// Per-pool-node memory budget: low enough that every job spills — a
    /// storage-chaos sweep with no storage traffic would be vacuous.
    const NODE_BUDGET: usize = 60_000;
    /// Supervisor step at which pool node 0 is killed.
    const KILL_STEP: u64 = 6;
    /// Drive-loop backstop against a wedged supervisor.
    const MAX_STEPS: u64 = 1_000_000;

    /// Job shapes cycled across the fleet: (elements, grid, phases).
    const SHAPES: [(u64, usize, u32); 3] = [(1_500, 2, 2), (2_000, 2, 3), (1_200, 3, 2)];

    fn shape_job(shape: usize) -> MeshJob {
        let (elements, grid, phases) = SHAPES[shape % SHAPES.len()];
        MeshJob::new(
            PcdmParams::new(Workload::uniform_square(elements), grid),
            phases,
        )
    }

    /// The ENOSPC job's shape: single-phase, so its degraded-mode entry
    /// lands in the outcome stats the service health machine reads, and
    /// heavy enough that the store-op counter reaches the ENOSPC window.
    fn single_phase_job() -> MeshJob {
        MeshJob::new(PcdmParams::new(Workload::uniform_square(2_500), 2), 1)
    }

    fn spec(name: impl Into<String>) -> JobSpec {
        JobSpec::new(name, WIDTH, WIDTH * NODE_BUDGET)
    }

    fn storage_chaos(job: u64) -> FaultPlan {
        FaultPlan::for_job(BASE_SEED, job)
            .with_eio(60)
            .with_torn_writes(40)
    }

    fn net_chaos(job: u64) -> NetFaultPlan {
        NetFaultPlan::for_job(BASE_SEED, job)
            .with_drops(150)
            .with_dups(100)
            .with_reorder(60)
    }

    pub fn run(quick: bool, nodes: Option<usize>) -> bool {
        let pool = nodes.unwrap_or(16).max(16);
        let n_chaos = if quick { 8usize } else { 24 };
        println!(
            "==> chaos-service sweep ({pool} pool nodes, {n_chaos} chaos jobs + probes, \
             width {WIDTH})"
        );
        let mut report = Vec::<String>::new();
        let mut ok = true;
        let mut say = |line: String| {
            println!("    {line}");
            report.push(line);
        };

        // Fault-free references: one job per shape (plus the ENOSPC
        // job's single-phase shape) through a clean service, drained by
        // a multi-worker pool. Doubles as the fault-free-seed guard:
        // any quarantine or retry here fails the sweep.
        let ref_svc = JobService::new(ServiceConfig {
            pool_nodes: pool,
            node_budget: NODE_BUDGET,
            ..ServiceConfig::default()
        });
        let ref_chk = Arc::new(InvariantChecker::new(FailMode::Collect));
        ref_svc.attach_service_audit(ref_chk.clone());
        let ref_ids: Vec<u64> = (0..SHAPES.len())
            .map(|s| {
                ref_svc
                    .submit(spec(format!("ref-{s}")), Box::new(shape_job(s)))
                    .expect("reference job admitted")
            })
            .collect();
        let ref_1p = ref_svc
            .submit(spec("ref-1p"), Box::new(single_phase_job()))
            .expect("reference job admitted");
        ref_svc.run_until_drained(4);
        let rst = ref_svc.stats();
        let refs_clean = rst.jobs_completed == SHAPES.len() as u64 + 1
            && rst.jobs_quarantined == 0
            && rst.jobs_retried == 0
            && ref_chk.violations().is_empty();
        ok &= refs_clean;
        say(format!(
            "fault-free references: {} [{}]",
            if refs_clean {
                "ok"
            } else {
                "FAIL — quarantine/retry/violation on a fault-free seed"
            },
            rst.summary()
        ));
        let refs: Vec<(u64, u64)> = ref_ids
            .iter()
            .map(|&id| {
                let o = ref_svc.outcome(id).expect("reference outcome");
                (o.digest, o.elements)
            })
            .collect();
        let ref_1p_elements = ref_svc.outcome(ref_1p).expect("reference outcome").elements;

        // The chaos service. Artifacts land in a dedicated directory so
        // the quarantine assertions below see only this run's files.
        let replay_dir = std::path::PathBuf::from("target/replay/service");
        let _ = std::fs::remove_dir_all(&replay_dir);
        let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
        let slog = Arc::new(ServiceLog::new());
        let svc = JobService::new(ServiceConfig {
            pool_nodes: pool,
            node_budget: NODE_BUDGET,
            replay_dir: replay_dir.clone(),
            ..ServiceConfig::default()
        });
        svc.attach_service_audit(chk.clone());
        svc.attach_service_audit(slog.clone());

        let enospc = svc
            .submit(
                spec("enospc"),
                Box::new(
                    single_phase_job()
                        .with_fault(FaultPlan::for_job(BASE_SEED, 1).with_enospc_window(1, 10)),
                ),
            )
            .expect("enospc job admitted");
        let mut chaos_jobs: Vec<(u64, usize)> = Vec::new();
        for i in 0..n_chaos {
            let shape = i % SHAPES.len();
            // Fault streams are keyed by the fleet index: distinct per
            // job, reproducible from (BASE_SEED, i) alone.
            let mut job = shape_job(shape).with_fault(storage_chaos(100 + i as u64));
            if i % 2 == 1 {
                job = job.with_net_fault(net_chaos(100 + i as u64));
            }
            let id = svc
                .submit(spec(format!("chaos-{i}")), Box::new(job))
                .expect("chaos job admitted");
            chaos_jobs.push((id, shape));
        }
        let flaky = svc
            .submit(spec("flaky"), Box::new(shape_job(0).failing_attempts(1)))
            .expect("flaky job admitted");
        let poison_inv = svc
            .submit(spec("poison-inv"), Box::new(shape_job(0).poisoned()))
            .expect("poison job admitted");
        let poison_rt = svc
            .submit(
                spec("poison-rt"),
                Box::new(shape_job(0).failing_attempts(99)),
            )
            .expect("poison job admitted");
        // Admission control: a domain wider than the pool can never be
        // granted and must bounce at submission.
        let infeasible = svc.submit(
            JobSpec::new("too-wide", pool + 1, NODE_BUDGET),
            Box::new(shape_job(0)),
        );
        let infeasible_ok = matches!(infeasible, Err(AdmissionError::Infeasible(_)));
        ok &= infeasible_ok;
        say(format!(
            "admission (too-wide domain): {}",
            if infeasible_ok {
                "rejected ok"
            } else {
                "FAIL — admitted"
            }
        ));

        // Serial drive: deterministic interleaving of job phases with the
        // chaos script (node kill at a fixed step, shed probe at the
        // first degraded observation).
        let mut steps: u64 = 0;
        let mut shed: Option<Result<u64, AdmissionError>> = None;
        let mut drained = true;
        while svc.step_serial() {
            steps += 1;
            if steps == KILL_STEP {
                svc.kill_node(0);
            }
            if shed.is_none() && svc.is_degraded() {
                shed = Some(svc.submit(spec("shed-probe"), Box::new(shape_job(0))));
            }
            if steps > MAX_STEPS {
                drained = false;
                break;
            }
        }
        if !drained {
            say(format!(
                "FAIL: supervisor not drained after {MAX_STEPS} steps"
            ));
            ok = false;
        }

        // Byte-identity: every chaos job must have completed with its
        // shape's fault-free digest — across retries, recoveries, and
        // its private fault stream.
        let mut bad = 0usize;
        let mut faults_seen = 0usize;
        for &(id, shape) in &chaos_jobs {
            let good = match svc.outcome(id) {
                Some(o) => {
                    faults_seen += o.stats.total_of(|n| n.faults_injected)
                        + o.stats.total_of(|n| n.messages_dropped)
                        + o.stats.total_of(|n| n.dup_suppressed);
                    (o.digest, o.elements) == refs[shape]
                }
                None => false,
            };
            if !good {
                bad += 1;
                say(format!(
                    "job {id} (shape {shape}): FAIL — state {:?}, diverged from fault-free \
                     reference",
                    svc.job_state(id)
                ));
            }
        }
        say(format!(
            "byte-identity: {}/{} chaos jobs reproduced their fault-free mesh",
            n_chaos - bad,
            n_chaos
        ));
        ok &= bad == 0;
        if faults_seen == 0 {
            say("FAIL: no faults observed across the fleet — vacuous".into());
            ok = false;
        }

        let flaky_ok = svc
            .outcome(flaky)
            .is_some_and(|o| (o.digest, o.elements) == refs[0]);
        ok &= flaky_ok;
        say(format!(
            "flaky job (1 failed attempt): {}",
            if flaky_ok {
                "retried, bytes ok"
            } else {
                "FAIL — diverged or not completed"
            }
        ));

        // The ENOSPC job runs degraded: the mesh survives (ratio check —
        // degraded eviction legitimately changes the schedule, so bytes
        // may differ) and its completion drives the service health
        // machine.
        let enospc_out = svc.outcome(enospc);
        let enospc_ok = enospc_out.as_ref().is_some_and(|o| {
            let ratio = o.elements as f64 / ref_1p_elements as f64;
            o.stats.total_of(|n| n.degraded_entries) > 0 && (0.97..1.03).contains(&ratio)
        });
        ok &= enospc_ok;
        say(format!(
            "enospc job: {} (elements {} vs fault-free {})",
            if enospc_ok {
                "degraded + recovered ok"
            } else {
                "FAIL — no degraded entry or mesh ratio off"
            },
            enospc_out.map_or(0, |o| o.elements),
            ref_1p_elements
        ));
        let shed_ok = matches!(shed, Some(Err(AdmissionError::Shedding)));
        ok &= shed_ok;
        say(format!(
            "degraded-mode shedding: {}",
            if shed_ok {
                "probe shed ok"
            } else {
                "FAIL — degraded window not observed or probe admitted"
            }
        ));

        // Poison jobs: quarantined, never resubmitted, replay artifact
        // persisted and decodable.
        for (id, name, want_attempts) in [
            (poison_inv, "poison-inv", 1u32),
            (poison_rt, "poison-rt", 3u32),
        ] {
            let state_ok = svc.job_state(id) == Some(JobState::Quarantined);
            let path = replay_dir.join(format!("job-{id:04}-{name}.mjob"));
            let art = QuarantineArtifact::load(&path);
            let art_ok = art
                .as_ref()
                .is_ok_and(|a| a.job == id && a.attempts == want_attempts);
            ok &= state_ok && art_ok;
            say(format!(
                "{name}: {} (artifact {})",
                if state_ok {
                    "quarantined ok"
                } else {
                    "FAIL — not quarantined"
                },
                if art_ok {
                    format!("{} ok", path.display())
                } else {
                    format!("FAIL — {} missing or wrong", path.display())
                }
            ));
        }

        let st = svc.stats();
        let recovered_events = slog
            .snapshot()
            .iter()
            .filter(|e| matches!(e, ServiceEvent::JobRecovered { .. }))
            .count() as u64;
        let counters_ok = st.jobs_quarantined == 2
            && st.jobs_recovered >= 1
            && recovered_events == st.jobs_recovered
            && st.jobs_retried >= 3
            && st.shed_events == 1
            && st.jobs_rejected == 2
            && st.degraded_mode_transitions == 2
            && !svc.is_degraded();
        ok &= counters_ok;
        say(format!(
            "service counters: {} [{}]",
            if counters_ok { "ok" } else { "FAIL" },
            st.summary()
        ));
        if !chk.violations().is_empty() {
            say(format!("FAIL: violations {:?}", chk.violations()));
            ok = false;
        }

        let _ = std::fs::create_dir_all("target");
        if let Ok(mut f) = std::fs::File::create("target/chaos-service-report.txt") {
            for line in &report {
                let _ = writeln!(f, "{line}");
            }
        }
        println!(
            "    {} jobs supervised over {steps} steps — report in \
             target/chaos-service-report.txt",
            n_chaos + 6
        );
        ok
    }
}

#[cfg(not(any(feature = "audit", debug_assertions)))]
mod chaos_service_sweep {
    pub fn run(_quick: bool, _nodes: Option<usize>) -> bool {
        println!("==> chaos-service sweep skipped (instrumentation compiled out)");
        true
    }
}

#[cfg(any(feature = "audit", debug_assertions))]
mod replay_harness {
    //! Record/replay plumbing shared by the chaos sweeps and the
    //! `--replay` / `--replay-smoke` commands. A harness id + fault seed
    //! fully determines a schedule's configuration, so a persisted
    //! [`ReplayArtifact`] is self-describing: `--replay <path>` rebuilds
    //! the workload, re-executes under the recorded decision log, and
    //! diffs the live canonical audit stream against the recorded one.

    use pumg::methods::domain::Workload;
    use pumg::methods::ooc_pcdm::{opcdm_collect_threaded, opcdm_setup_threaded};
    use pumg::methods::pcdm::PcdmParams;
    use pumg::mrts::audit::{EventLog, EventSink, FanOut, RaceDetector};
    use pumg::mrts::config::MrtsConfig;
    use pumg::mrts::fault::FaultPlan;
    use pumg::mrts::netfault::NetFaultPlan;
    use pumg::mrts::replay::{
        canonicalize, compare, CanonicalStream, Decision, DecisionLog, ReplayArtifact,
        DEFAULT_LOG_BYTE_CAP,
    };
    use pumg::mrts::stats::RunStats;
    use std::io::Write;
    use std::path::{Path, PathBuf};
    use std::sync::Arc;
    use std::time::Duration;

    pub const CHAOS_THREADED: &str = "chaos-threaded";
    pub const CHAOS_NET_THREADED: &str = "chaos-net-threaded";
    pub const REPLAY_SMOKE: &str = "replay-smoke";

    /// The node count persisted artifacts replay at. Sweeps run at other
    /// widths (`--nodes`) skip artifact persistence, because an artifact
    /// names only `(harness, seed)` and must rebuild its exact config.
    pub const DEFAULT_NODES: usize = 2;
    const BUDGET: usize = 70_000;

    /// The sweep workload, scaled so a `--nodes` override keeps the
    /// *per-node* memory pressure of the default 2-node sweep: the mesh
    /// grows with the pool and the grid keeps at least one subdomain per
    /// node. Without the scaling a 16-node sweep fits in-core and the
    /// storage chaos never touches a disk — vacuously green.
    pub fn params(nodes: usize) -> PcdmParams {
        PcdmParams::new(
            Workload::uniform_square(3_000 * nodes as u64),
            grid_for(nodes),
        )
    }

    /// Smallest grid with at least one subdomain per node.
    pub fn grid_for(nodes: usize) -> usize {
        let mut g = 2usize;
        while g * g < nodes {
            g += 1;
        }
        g
    }

    /// The chaos sweep's threaded storage-fault schedule for `seed`.
    fn chaos_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(0xBAD_D15C ^ seed)
            .with_eio(120)
            .with_torn_writes(80)
            .with_latency(60, Duration::from_micros(200))
    }

    /// The chaos-net sweep's fabric-fault schedule for `seed`.
    pub fn chaos_net_plan(seed: u64) -> NetFaultPlan {
        NetFaultPlan::new(0x6E7F_A017 ^ seed)
            .with_drops(200)
            .with_dups(150)
            .with_delay(80, Duration::from_micros(300))
            .with_reorder(60)
    }

    /// Map a harness id + seed back to the exact configuration that
    /// produced a persisted artifact. `replay-smoke` pins `io_threads`
    /// to 1: with a single pool thread both lanes of the canonical
    /// stream are fully deterministic, so byte-identity is provable.
    pub fn harness_config(
        harness: &str,
        seed: u64,
        label: &str,
        nodes: usize,
    ) -> Option<MrtsConfig> {
        let mut cfg = match harness {
            CHAOS_THREADED => MrtsConfig::out_of_core(nodes, BUDGET).with_faults(chaos_plan(seed)),
            CHAOS_NET_THREADED => {
                MrtsConfig::out_of_core(nodes, BUDGET).with_net_faults(chaos_net_plan(seed))
            }
            // Work stealing stays on here so the smoke proves the steal
            // decisions (`StealRequest`/`StealGrant`) replay faithfully.
            REPLAY_SMOKE => MrtsConfig::out_of_core(nodes, BUDGET)
                .with_net_faults(chaos_net_plan(seed))
                .with_io_threads(1)
                .with_work_stealing(),
            _ => return None,
        };
        cfg.spill_dir = Some(spill_dir(label));
        Some(cfg)
    }

    pub fn spill_dir(label: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mrts-audit-{label}-{}", std::process::id()))
    }

    fn artifact_path(harness: &str, seed: u64) -> PathBuf {
        PathBuf::from("target/replay").join(format!("{harness}-seed{seed}.replay"))
    }

    /// Persist a failing schedule for offline replay; returns the path
    /// (or an error marker) for the sweep report.
    pub fn persist_artifact(
        harness: &str,
        seed: u64,
        decisions: DecisionLog,
        recorded: CanonicalStream,
    ) -> String {
        let art = ReplayArtifact {
            harness: harness.to_string(),
            seed,
            decisions,
            recorded,
        };
        let path = artifact_path(harness, seed);
        match art.save(&path, DEFAULT_LOG_BYTE_CAP) {
            Ok(()) => path.display().to_string(),
            Err(e) => format!("<persist failed: {e}>"),
        }
    }

    /// One recorded (or replayed) schedule's outcome.
    pub struct RunOutcome {
        pub elements: u64,
        pub vertices: u64,
        pub stats: RunStats,
        pub decisions: DecisionLog,
        pub recorded: CanonicalStream,
    }

    fn execute(
        cfg: MrtsConfig,
        sinks: &[Arc<dyn EventSink>],
        det: Option<Arc<RaceDetector>>,
        mode: Option<DecisionLog>,
    ) -> RunOutcome {
        let nodes = cfg.nodes;
        let log = Arc::new(EventLog::new());
        let mut all: Vec<Arc<dyn EventSink>> = vec![log.clone()];
        all.extend(sinks.iter().cloned());
        let mut rt = opcdm_setup_threaded(&params(nodes), cfg);
        rt.attach_audit(Arc::new(FanOut::new(all)));
        if let Some(d) = det {
            rt.attach_race_detector(d);
        }
        match mode {
            Some(decisions) => rt.replay_decisions(decisions),
            None => rt.record_decisions(),
        }
        let stats = rt.run();
        let (elements, vertices) = opcdm_collect_threaded(&rt);
        let decisions = rt
            .take_decision_log()
            .unwrap_or_else(|| DecisionLog::new(nodes));
        RunOutcome {
            elements,
            vertices,
            stats,
            decisions,
            recorded: canonicalize(&log.snapshot(), nodes),
        }
    }

    /// Run a schedule with decision recording on; `sinks` ride alongside
    /// the internal [`EventLog`] via a [`FanOut`].
    pub fn record_run(
        cfg: MrtsConfig,
        sinks: &[Arc<dyn EventSink>],
        det: Option<Arc<RaceDetector>>,
    ) -> RunOutcome {
        execute(cfg, sinks, det, None)
    }

    /// Re-run a schedule under a recorded decision log. The returned
    /// `recorded` field holds the *live* canonical stream; `decisions`
    /// is empty (the sequencer consumes the log).
    pub fn replay_run(cfg: MrtsConfig, decisions: DecisionLog) -> RunOutcome {
        execute(cfg, &[], None, Some(decisions))
    }

    fn write_divergence_report(text: &str) {
        let _ = std::fs::create_dir_all("target/replay");
        if let Ok(mut f) = std::fs::File::create("target/replay/divergence-report.txt") {
            let _ = f.write_all(text.as_bytes());
        }
    }

    /// `--replay <path>`: load an artifact, re-execute its schedule under
    /// the recorded decision log, and report the first divergence (if
    /// any) between the recorded and live canonical audit streams.
    pub fn replay_artifact_cmd(path: &Path) -> bool {
        println!("==> replay ({})", path.display());
        let art = match ReplayArtifact::load(path) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("audit: cannot load replay artifact: {e}");
                return false;
            }
        };
        let label = format!("replay-{}", art.seed);
        let Some(cfg) = harness_config(&art.harness, art.seed, &label, DEFAULT_NODES) else {
            eprintln!(
                "audit: artifact names unknown harness {:?} (known: {CHAOS_THREADED}, \
                 {CHAOS_NET_THREADED}, {REPLAY_SMOKE})",
                art.harness
            );
            return false;
        };
        println!(
            "    harness {} seed {} ({} recorded decisions, {} recorded events)",
            art.harness,
            art.seed,
            art.decisions.len(),
            art.recorded.total_events()
        );
        let r = replay_run(cfg, art.decisions.clone());
        let _ = std::fs::remove_dir_all(spill_dir(&label));
        let report = compare(&art.recorded, &r.recorded);
        let seq_div = r.stats.total_of(|n| n.replay_divergences);
        print!("    {report}");
        println!("    sequencer divergences: {seq_div}");
        let text = format!("{report}sequencer divergences: {seq_div}\n");
        write_divergence_report(&text);
        println!("    report in target/replay/divergence-report.txt");
        report.is_clean() && seq_div == 0
    }

    /// `--replay-smoke`: record chaos-net schedules (single pool thread),
    /// replay each, and require byte-identical canonical streams with
    /// zero sequencer divergences — plus two perturbation probes proving
    /// the detector is not vacuous.
    pub fn smoke(quick: bool) -> bool {
        let seeds: u64 = if quick { 3 } else { 10 };
        println!("==> replay smoke ({seeds} record/replay pairs + perturbation probes)");
        let mut ok = true;
        let mut kept: Option<(DecisionLog, CanonicalStream)> = None;
        let mut divergence_text = String::new();
        for seed in 0..seeds {
            let rec_label = format!("rsmoke-rec{seed}");
            let cfg = harness_config(REPLAY_SMOKE, seed, &rec_label, DEFAULT_NODES)
                .expect("known harness id");
            let rec = record_run(cfg, &[], None);
            let _ = std::fs::remove_dir_all(spill_dir(&rec_label));
            let n_decisions = rec.stats.total_of(|n| n.decisions_recorded);
            if n_decisions == 0 {
                println!("    seed {seed}: FAIL — recorded no decisions (vacuous)");
                ok = false;
                continue;
            }
            let rep_label = format!("rsmoke-rep{seed}");
            let cfg = harness_config(REPLAY_SMOKE, seed, &rep_label, DEFAULT_NODES)
                .expect("known harness id");
            let rep = replay_run(cfg, rec.decisions.clone());
            let _ = std::fs::remove_dir_all(spill_dir(&rep_label));
            let report = compare(&rec.recorded, &rep.recorded);
            let seq_div = rep.stats.total_of(|n| n.replay_divergences);
            let clean = report.is_clean()
                && seq_div == 0
                && report.events_compared > 0
                && (rep.elements, rep.vertices) == (rec.elements, rec.vertices);
            ok &= clean;
            println!(
                "    seed {seed}: {} ({} decisions, {} events byte-compared, {} sequencer \
                 divergences, mesh {})",
                if clean { "ok" } else { "FAIL" },
                n_decisions,
                report.events_compared,
                seq_div,
                rep.elements
            );
            if !clean {
                divergence_text.push_str(&format!("seed {seed}:\n{report}"));
                let path = persist_artifact(
                    REPLAY_SMOKE,
                    seed,
                    rec.decisions.clone(),
                    rec.recorded.clone(),
                );
                println!("      artifact persisted: {path}");
            }
            if kept.is_none() {
                kept = Some((rec.decisions, rec.recorded));
            }
        }

        let Some((decisions, recorded)) = kept else {
            println!("    FAIL: no schedule recorded — probes skipped");
            write_divergence_report(&divergence_text);
            return false;
        };
        // Keep one good artifact around: it documents the on-disk format
        // and gives `--replay` a known-clean input.
        let path = persist_artifact(REPLAY_SMOKE, 0, decisions.clone(), recorded.clone());
        println!("    seed 0 artifact kept: {path}");

        // Probe 1: corrupt one fabric decision; the sequencer must notice
        // (tag mismatch → divergence counter) even if the run then
        // converges back to the recorded stream.
        let mut bad = decisions.clone();
        let flipped = bad.nodes.iter_mut().flatten().find_map(|d| {
            if let Decision::FabricRecv { tag, .. } = d {
                *tag ^= 0x5A5A;
                Some(())
            } else {
                None
            }
        });
        if flipped.is_none() {
            println!("    FAIL: recorded log holds no FabricRecv to perturb (vacuous)");
            ok = false;
        } else {
            let label = "rsmoke-perturb";
            let cfg =
                harness_config(REPLAY_SMOKE, 0, label, DEFAULT_NODES).expect("known harness id");
            let rep = replay_run(cfg, bad);
            let _ = std::fs::remove_dir_all(spill_dir(label));
            let report = compare(&recorded, &rep.recorded);
            let seq_div = rep.stats.total_of(|n| n.replay_divergences);
            let caught = seq_div > 0 || !report.is_clean();
            ok &= caught;
            println!(
                "    perturbed log: {} ({} sequencer divergences, stream {})",
                if caught {
                    "caught"
                } else {
                    "FAIL — undetected"
                },
                seq_div,
                if report.is_clean() {
                    "clean"
                } else {
                    "diverged"
                }
            );
            if !report.is_clean() {
                divergence_text.push_str(&format!("perturbed log:\n{report}"));
            }
        }

        // Probe 2: corrupt the recorded stream itself; the detector must
        // report the first divergence at exactly the cut index.
        let mut cut = recorded.clone();
        let probe = cut
            .nodes
            .iter()
            .position(|n| n.control.len() >= 2)
            .map(|node| {
                let idx = cut.nodes[node].control.len() / 2;
                cut.nodes[node].control.truncate(idx);
                (node, idx)
            });
        match probe {
            None => {
                println!("    FAIL: recorded stream too small to perturb (vacuous)");
                ok = false;
            }
            Some((node, idx)) => {
                let report = compare(&cut, &recorded);
                let hit = report
                    .divergences
                    .iter()
                    .any(|d| d.node as usize == node && d.index == idx);
                ok &= hit;
                println!(
                    "    perturbed stream: {} (expected first divergence node {node} index {idx})",
                    if hit {
                        "located"
                    } else {
                        "FAIL — misreported"
                    },
                );
                divergence_text.push_str(&format!("perturbed stream probe:\n{report}"));
            }
        }

        write_divergence_report(&divergence_text);
        println!("    report in target/replay/divergence-report.txt");
        ok
    }
}

#[cfg(not(any(feature = "audit", debug_assertions)))]
mod replay_harness {
    use std::path::Path;

    pub fn replay_artifact_cmd(_path: &Path) -> bool {
        eprintln!(
            "audit: --replay needs the audit stream; build with debug assertions or \
             `--features audit`"
        );
        false
    }

    pub fn smoke(_quick: bool) -> bool {
        eprintln!(
            "audit: --replay-smoke needs the audit stream; build with debug assertions or \
             `--features audit`"
        );
        false
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut chaos = false;
    let mut chaos_net = false;
    let mut chaos_service = false;
    let mut quick = false;
    let mut analyze = false;
    let mut replay_smoke = false;
    let mut seed: Option<u64> = None;
    let mut nodes: Option<usize> = None;
    let mut replay_path: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--chaos" => chaos = true,
            "--chaos-net" => chaos_net = true,
            "--chaos-service" => chaos_service = true,
            "--quick" => quick = true,
            "--analyze" => analyze = true,
            "--replay-smoke" => replay_smoke = true,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = Some(v),
                None => {
                    eprintln!("audit: --seed requires an integer schedule seed");
                    return ExitCode::FAILURE;
                }
            },
            "--nodes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => nodes = Some(v),
                _ => {
                    eprintln!("audit: --nodes requires a positive node count");
                    return ExitCode::FAILURE;
                }
            },
            "--replay" => match it.next() {
                Some(v) => replay_path = Some(std::path::PathBuf::from(v)),
                None => {
                    eprintln!("audit: --replay requires a path to a .replay artifact");
                    return ExitCode::FAILURE;
                }
            },
            bad => {
                eprintln!(
                    "audit: unknown flag {bad} (expected --chaos, --chaos-net, \
                     --chaos-service, --analyze, --replay-smoke, --replay <path>, \
                     --seed <n>, --nodes <n> and/or --quick)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if seed.is_some() && !(chaos || chaos_net) {
        eprintln!("audit: --seed only applies to --chaos / --chaos-net");
        return ExitCode::FAILURE;
    }
    if nodes.is_some() && !(chaos || chaos_net || chaos_service) {
        eprintln!("audit: --nodes only applies to --chaos / --chaos-net / --chaos-service");
        return ExitCode::FAILURE;
    }
    let ok = if let Some(path) = replay_path {
        replay_harness::replay_artifact_cmd(&path)
    } else if replay_smoke {
        replay_harness::smoke(quick)
    } else if analyze {
        static_analysis()
    } else if chaos_service {
        chaos_service_sweep::run(quick, nodes)
    } else if chaos_net {
        chaos_net_sweep::run(quick, seed, nodes.unwrap_or(2))
    } else if chaos {
        chaos_sweep::run(quick, seed, nodes.unwrap_or(2))
    } else {
        lint_and_test()
            && static_analysis()
            && invariant_sweep::run()
            && chaos_sweep::run(true, None, 2)
            && chaos_net_sweep::run(true, None, 2)
            && chaos_service_sweep::run(true, None)
    };
    if ok {
        println!("audit: all gates passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
