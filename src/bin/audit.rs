//! The repository's audit gate.
//!
//! `cargo run -p pumg --bin audit` runs, in order:
//!
//! 1. `cargo fmt --check` — formatting;
//! 2. `cargo clippy --workspace --all-targets` with the curated deny
//!    list — lints;
//! 3. `cargo build --release` — the instrumentation must compile out;
//! 4. `cargo test -q` — the full workspace test suite;
//! 5. an in-process sweep of the MRTS invariant checker and race
//!    detector over both engines, including seeded schedule
//!    permutations of the DES engine.
//!
//! The process exits non-zero on the first failing step, so the binary
//! doubles as the CI gate.

use std::process::{Command, ExitCode};

/// Lints denied beyond rustc's warning set. Curated: every entry has
/// bitten a runtime like this one (silent zeroing, debris left in,
/// panics shipped to production paths).
const CLIPPY_DENY: &[&str] = &[
    "warnings",
    "clippy::erasing_op",
    "clippy::dbg_macro",
    "clippy::todo",
    "clippy::unimplemented",
];

fn cargo(args: &[&str]) -> bool {
    println!("==> cargo {}", args.join(" "));
    match Command::new(env!("CARGO")).args(args).status() {
        Ok(st) if st.success() => true,
        Ok(st) => {
            eprintln!("audit: `cargo {}` failed ({st})", args.join(" "));
            false
        }
        Err(e) => {
            eprintln!("audit: could not spawn cargo: {e}");
            false
        }
    }
}

fn lint_and_test() -> bool {
    let mut clippy = vec!["clippy", "--workspace", "--all-targets", "--"];
    let denies: Vec<String> = CLIPPY_DENY.iter().map(|l| format!("-D{l}")).collect();
    clippy.extend(denies.iter().map(String::as_str));
    cargo(&["fmt", "--check"])
        && cargo(&clippy)
        && cargo(&["build", "--release"])
        && cargo(&["test", "-q"])
}

#[cfg(any(feature = "audit", debug_assertions))]
mod invariant_sweep {
    //! A self-contained MRTS workload (ring of growing cells under memory
    //! pressure, a migration, a multicast) run with the fail-fast
    //! invariant checker attached, across several schedule seeds, on both
    //! engines.

    use mrts::audit::{FailMode, InvariantChecker, RaceDetector};
    use mrts::codec::{PayloadReader, PayloadWriter};
    use mrts::prelude::*;
    use std::any::Any;
    use std::sync::Arc;

    const CELL_TAG: TypeTag = TypeTag(1);
    const H_RING: HandlerId = HandlerId(1);
    const H_MOVE: HandlerId = HandlerId(2);

    struct Cell {
        value: u64,
        neighbors: Vec<MobilePtr>,
        pad: Vec<u8>,
    }

    impl Cell {
        fn decode(buf: &[u8]) -> Box<dyn MobileObject> {
            let mut r = PayloadReader::new(buf);
            let value = r.u64().unwrap();
            let neighbors = r.ptrs().unwrap();
            let pad = r.bytes().unwrap().to_vec();
            Box::new(Cell {
                value,
                neighbors,
                pad,
            })
        }
    }

    impl MobileObject for Cell {
        fn type_tag(&self) -> TypeTag {
            CELL_TAG
        }

        fn encode(&self, buf: &mut Vec<u8>) {
            let mut w = PayloadWriter::new();
            w.u64(self.value).ptrs(&self.neighbors).bytes(&self.pad);
            buf.extend_from_slice(&w.finish());
        }

        fn footprint(&self) -> usize {
            8 + 8 * self.neighbors.len() + self.pad.len() + 48
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn h_ring(obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        let hops = r.u64().unwrap();
        let cell = obj.as_any_mut().downcast_mut::<Cell>().unwrap();
        cell.value += 1;
        // Grow a little on every visit so the out-of-core layer has to
        // re-balance (exercises Resize + Budget events).
        cell.pad.extend_from_slice(&[0u8; 16]);
        if hops > 0 {
            let next = cell.neighbors[0];
            let mut w = PayloadWriter::new();
            w.u64(hops - 1);
            ctx.send(next, H_RING, w.finish());
        }
    }

    fn h_move(_obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        let dest = r.u64().unwrap() as NodeId;
        ctx.migrate(ctx.self_ptr(), dest);
    }

    fn u64_payload(v: u64) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.u64(v);
        w.finish()
    }

    fn des_sweep() -> Result<(), String> {
        let mut reference: Option<u64> = None;
        for seed in [None, Some(7u64), Some(1234), Some(0x5EED)] {
            let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
            let mut cfg = MrtsConfig::out_of_core(3, 600);
            cfg.soft_threshold_frac = 0.25;
            let nodes = cfg.nodes;
            let mut rt = DesRuntime::new(cfg);
            rt.register_type(CELL_TAG, Cell::decode);
            rt.register_handler(H_RING, "ring", h_ring);
            rt.register_handler(H_MOVE, "move", h_move);
            rt.set_schedule_seed(seed);
            rt.attach_audit(chk.clone());
            let cells: Vec<MobilePtr> = (0..nodes)
                .map(|n| MobilePtr::new(ObjectId::new(n as NodeId, 0)))
                .collect();
            for (i, &p) in cells.iter().enumerate() {
                let cell = Box::new(Cell {
                    value: 0,
                    neighbors: vec![cells[(i + 1) % nodes]],
                    pad: vec![0x5A; 256],
                });
                rt.create_object(i as NodeId, cell, 128);
                rt.post(p, H_RING, u64_payload(15));
            }
            rt.post(cells[0], H_MOVE, u64_payload(2));
            rt.run();
            if !chk.violations().is_empty() {
                return Err(format!(
                    "DES run (seed {seed:?}) violated invariants: {:?}",
                    chk.violations()
                ));
            }
            let total: u64 = cells
                .iter()
                .map(|&p| rt.with_object(p, |o| o.as_any().downcast_ref::<Cell>().unwrap().value))
                .sum();
            match reference {
                None => reference = Some(total),
                Some(want) if want != total => {
                    return Err(format!(
                        "seed {seed:?} changed application results: {total} != {want}"
                    ));
                }
                Some(_) => {}
            }
            println!(
                "    DES seed {:>10}: {} events checked, results stable",
                format!("{seed:?}"),
                chk.events_seen()
            );
        }
        Ok(())
    }

    fn threaded_sweep() -> Result<(), String> {
        let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
        let det = Arc::new(RaceDetector::new(3));
        let mut rt = ThreadedRuntime::new(MrtsConfig::in_core(3));
        rt.register_type(CELL_TAG, Cell::decode);
        rt.register_handler(H_RING, "ring", h_ring);
        rt.register_handler(H_MOVE, "move", h_move);
        rt.attach_audit(chk.clone());
        rt.attach_race_detector(det.clone());
        let cells: Vec<MobilePtr> = (0..3)
            .map(|n| MobilePtr::new(ObjectId::new(n, 0)))
            .collect();
        for (i, &p) in cells.iter().enumerate() {
            let cell = Box::new(Cell {
                value: 0,
                neighbors: vec![cells[(i + 1) % 3]],
                pad: vec![0x5A; 64],
            });
            rt.create_object(i as NodeId, cell, 128);
            rt.post(p, H_RING, u64_payload(10));
        }
        rt.post(cells[1], H_MOVE, u64_payload(2));
        rt.run();
        if !chk.violations().is_empty() {
            return Err(format!(
                "threaded run violated invariants: {:?}",
                chk.violations()
            ));
        }
        if !det.races().is_empty() {
            return Err(format!("threaded run raced: {:?}", det.races()));
        }
        println!(
            "    threaded: {} events checked, {} races",
            chk.events_seen(),
            det.races().len()
        );
        Ok(())
    }

    /// Out-of-core threaded run over real spill files: tiny budget and
    /// tiny segments so the segmented spill log rolls and compacts while
    /// the prefetch window streams reloads — the checker validates the
    /// Prefetch (window bound, on-disk state) and Compaction (no live
    /// object lost) invariants against a live run.
    fn threaded_ooc_sweep() -> Result<(), String> {
        let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
        let det = Arc::new(RaceDetector::new(3));
        let mut cfg = MrtsConfig::out_of_core(3, 600);
        cfg.soft_threshold_frac = 0.25;
        cfg.segment_bytes = 512;
        cfg.segment_garbage_frac = 0.3;
        cfg.spill_dir =
            Some(std::env::temp_dir().join(format!("mrts-audit-ooc-{}", std::process::id())));
        let spill = cfg.spill_dir.clone().unwrap();
        let mut rt = ThreadedRuntime::new(cfg);
        rt.register_type(CELL_TAG, Cell::decode);
        rt.register_handler(H_RING, "ring", h_ring);
        rt.register_handler(H_MOVE, "move", h_move);
        rt.attach_audit(chk.clone());
        rt.attach_race_detector(det.clone());
        let cells: Vec<MobilePtr> = (0..3)
            .map(|n| MobilePtr::new(ObjectId::new(n, 0)))
            .collect();
        for (i, &p) in cells.iter().enumerate() {
            let cell = Box::new(Cell {
                value: 0,
                neighbors: vec![cells[(i + 1) % 3]],
                pad: vec![0x5A; 256],
            });
            rt.create_object(i as NodeId, cell, 128);
            rt.post(p, H_RING, u64_payload(15));
        }
        rt.post(cells[0], H_MOVE, u64_payload(2));
        let stats = rt.run();
        let _ = std::fs::remove_dir_all(spill);
        if !chk.violations().is_empty() {
            return Err(format!(
                "threaded OOC run violated invariants: {:?}",
                chk.violations()
            ));
        }
        if !det.races().is_empty() {
            return Err(format!("threaded OOC run raced: {:?}", det.races()));
        }
        if stats.total_of(|n| n.stores) == 0 {
            return Err("threaded OOC run never spilled — sweep is vacuous".into());
        }
        println!(
            "    threaded-ooc: {} events checked ({} stores, {} loads, hit rate {:.0}%)",
            chk.events_seen(),
            stats.total_of(|n| n.stores),
            stats.total_of(|n| n.loads),
            100.0 * stats.prefetch_hit_rate(),
        );
        Ok(())
    }

    pub fn run() -> bool {
        println!("==> invariant sweep (DES schedule permutations + threaded race check)");
        for (name, res) in [
            ("des", des_sweep()),
            ("threaded", threaded_sweep()),
            ("threaded-ooc", threaded_ooc_sweep()),
        ] {
            if let Err(e) = res {
                eprintln!("audit: {name} sweep failed: {e}");
                return false;
            }
        }
        true
    }
}

#[cfg(not(any(feature = "audit", debug_assertions)))]
mod invariant_sweep {
    pub fn run() -> bool {
        // Release build without the `audit` feature: the instrumentation
        // is compiled out, so there is nothing to sweep in-process. The
        // subprocess steps above already ran the (debug) test suite,
        // which carries the checker.
        println!("==> invariant sweep skipped (instrumentation compiled out)");
        true
    }
}

fn main() -> ExitCode {
    let ok = lint_and_test() && invariant_sweep::run();
    if ok {
        println!("audit: all gates passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
