//! The repository's audit gate.
//!
//! `cargo run -p pumg --bin audit` runs, in order:
//!
//! 1. `cargo fmt --check` — formatting;
//! 2. `cargo clippy --workspace --all-targets` with the curated deny
//!    list — lints;
//! 3. `cargo build --release` — the instrumentation must compile out;
//! 4. `cargo test -q` — the full workspace test suite;
//! 5. an in-process sweep of the MRTS invariant checker and race
//!    detector over both engines, including seeded schedule
//!    permutations of the DES engine.
//!
//! The process exits non-zero on the first failing step, so the binary
//! doubles as the CI gate.
//!
//! `--chaos` runs the storage-fault chaos sweep instead: ≥20 seeded
//! fault schedules (transient EIO, torn writes, latency spikes, ENOSPC
//! windows) driven through both engines on a real mesh workload, with
//! the invariant checker attached and the final mesh compared against
//! the fault-free run. `--quick` shrinks the sweep for smoke jobs. The
//! sweep writes its per-schedule report to `target/chaos-report.txt`.
//!
//! `--chaos-net` runs the fabric-fault sweep: ≥20 seeded message
//! drop/duplicate/delay/reorder schedules per engine (plus partition
//! windows and a duplicate storm), each required to produce the
//! fault-free mesh with zero invariant violations — the
//! reliable-delivery layer absorbs every fault. Report in
//! `target/chaos-net-report.txt`.
//!
//! `--analyze` runs only the `mrts-analyzer` static-analysis pass
//! (protocol exhaustiveness, lock-order graph, runtime unwrap ban)
//! against the workspace source; the default gate also runs it between
//! the test suite and the invariant sweep.

use std::process::{Command, ExitCode};

/// Lints denied beyond rustc's warning set. Curated: every entry has
/// bitten a runtime like this one (silent zeroing, debris left in,
/// panics shipped to production paths).
const CLIPPY_DENY: &[&str] = &[
    "warnings",
    "clippy::erasing_op",
    "clippy::dbg_macro",
    "clippy::todo",
    "clippy::unimplemented",
];

fn cargo(args: &[&str]) -> bool {
    println!("==> cargo {}", args.join(" "));
    match Command::new(env!("CARGO")).args(args).status() {
        Ok(st) if st.success() => true,
        Ok(st) => {
            eprintln!("audit: `cargo {}` failed ({st})", args.join(" "));
            false
        }
        Err(e) => {
            eprintln!("audit: could not spawn cargo: {e}");
            false
        }
    }
}

/// Run the source-level static analysis (protocol exhaustiveness,
/// lock-order graph, runtime unwrap ban) over the workspace tree.
fn static_analysis() -> bool {
    println!("==> mrts-analyzer (protocol / lock-order / unwrap-ban)");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    match mrts_analyzer::analyze_tree(root) {
        Ok(report) => {
            println!(
                "    {} tags, {} counters, {} locks, {} fns scanned",
                report.tags_checked, report.counters_checked, report.locks_seen, report.fns_scanned
            );
            for v in &report.violations {
                eprintln!("    {v}");
            }
            if report.pass() {
                println!("    analysis clean");
                true
            } else {
                eprintln!(
                    "audit: static analysis found {} violation(s)",
                    report.violations.len()
                );
                false
            }
        }
        Err(e) => {
            eprintln!("audit: static analysis could not run: {e}");
            false
        }
    }
}

fn lint_and_test() -> bool {
    let mut clippy = vec!["clippy", "--workspace", "--all-targets", "--"];
    let denies: Vec<String> = CLIPPY_DENY.iter().map(|l| format!("-D{l}")).collect();
    clippy.extend(denies.iter().map(String::as_str));
    cargo(&["fmt", "--check"])
        && cargo(&clippy)
        && cargo(&["build", "--release"])
        && cargo(&["test", "-q"])
}

#[cfg(any(feature = "audit", debug_assertions))]
mod invariant_sweep {
    //! A self-contained MRTS workload (ring of growing cells under memory
    //! pressure, a migration, a multicast) run with the fail-fast
    //! invariant checker attached, across several schedule seeds, on both
    //! engines.

    use mrts::audit::{FailMode, InvariantChecker, RaceDetector};
    use mrts::codec::{PayloadReader, PayloadWriter};
    use mrts::prelude::*;
    use std::any::Any;
    use std::sync::Arc;

    const CELL_TAG: TypeTag = TypeTag(1);
    const H_RING: HandlerId = HandlerId(1);
    const H_MOVE: HandlerId = HandlerId(2);

    struct Cell {
        value: u64,
        neighbors: Vec<MobilePtr>,
        pad: Vec<u8>,
    }

    impl Cell {
        fn decode(buf: &[u8]) -> Box<dyn MobileObject> {
            let mut r = PayloadReader::new(buf);
            let value = r.u64().unwrap();
            let neighbors = r.ptrs().unwrap();
            let pad = r.bytes().unwrap().to_vec();
            Box::new(Cell {
                value,
                neighbors,
                pad,
            })
        }
    }

    impl MobileObject for Cell {
        fn type_tag(&self) -> TypeTag {
            CELL_TAG
        }

        fn encode(&self, buf: &mut Vec<u8>) {
            let mut w = PayloadWriter::new();
            w.u64(self.value).ptrs(&self.neighbors).bytes(&self.pad);
            buf.extend_from_slice(&w.finish());
        }

        fn footprint(&self) -> usize {
            8 + 8 * self.neighbors.len() + self.pad.len() + 48
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn h_ring(obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        let hops = r.u64().unwrap();
        let cell = obj.as_any_mut().downcast_mut::<Cell>().unwrap();
        cell.value += 1;
        // Grow a little on every visit so the out-of-core layer has to
        // re-balance (exercises Resize + Budget events).
        cell.pad.extend_from_slice(&[0u8; 16]);
        if hops > 0 {
            let next = cell.neighbors[0];
            let mut w = PayloadWriter::new();
            w.u64(hops - 1);
            ctx.send(next, H_RING, w.finish());
        }
    }

    fn h_move(_obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        let dest = r.u64().unwrap() as NodeId;
        ctx.migrate(ctx.self_ptr(), dest);
    }

    fn u64_payload(v: u64) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.u64(v);
        w.finish()
    }

    fn des_sweep() -> Result<(), String> {
        let mut reference: Option<u64> = None;
        for seed in [None, Some(7u64), Some(1234), Some(0x5EED)] {
            let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
            let mut cfg = MrtsConfig::out_of_core(3, 600);
            cfg.soft_threshold_frac = 0.25;
            let nodes = cfg.nodes;
            let mut rt = DesRuntime::new(cfg);
            rt.register_type(CELL_TAG, Cell::decode);
            rt.register_handler(H_RING, "ring", h_ring);
            rt.register_handler(H_MOVE, "move", h_move);
            rt.set_schedule_seed(seed);
            rt.attach_audit(chk.clone());
            let cells: Vec<MobilePtr> = (0..nodes)
                .map(|n| MobilePtr::new(ObjectId::new(n as NodeId, 0)))
                .collect();
            for (i, &p) in cells.iter().enumerate() {
                let cell = Box::new(Cell {
                    value: 0,
                    neighbors: vec![cells[(i + 1) % nodes]],
                    pad: vec![0x5A; 256],
                });
                rt.create_object(i as NodeId, cell, 128);
                rt.post(p, H_RING, u64_payload(15));
            }
            rt.post(cells[0], H_MOVE, u64_payload(2));
            rt.run();
            if !chk.violations().is_empty() {
                return Err(format!(
                    "DES run (seed {seed:?}) violated invariants: {:?}",
                    chk.violations()
                ));
            }
            let total: u64 = cells
                .iter()
                .map(|&p| rt.with_object(p, |o| o.as_any().downcast_ref::<Cell>().unwrap().value))
                .sum();
            match reference {
                None => reference = Some(total),
                Some(want) if want != total => {
                    return Err(format!(
                        "seed {seed:?} changed application results: {total} != {want}"
                    ));
                }
                Some(_) => {}
            }
            println!(
                "    DES seed {:>10}: {} events checked, results stable",
                format!("{seed:?}"),
                chk.events_seen()
            );
        }
        Ok(())
    }

    fn threaded_sweep() -> Result<(), String> {
        let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
        let det = Arc::new(RaceDetector::new(3));
        let mut rt = ThreadedRuntime::new(MrtsConfig::in_core(3));
        rt.register_type(CELL_TAG, Cell::decode);
        rt.register_handler(H_RING, "ring", h_ring);
        rt.register_handler(H_MOVE, "move", h_move);
        rt.attach_audit(chk.clone());
        rt.attach_race_detector(det.clone());
        let cells: Vec<MobilePtr> = (0..3)
            .map(|n| MobilePtr::new(ObjectId::new(n, 0)))
            .collect();
        for (i, &p) in cells.iter().enumerate() {
            let cell = Box::new(Cell {
                value: 0,
                neighbors: vec![cells[(i + 1) % 3]],
                pad: vec![0x5A; 64],
            });
            rt.create_object(i as NodeId, cell, 128);
            rt.post(p, H_RING, u64_payload(10));
        }
        rt.post(cells[1], H_MOVE, u64_payload(2));
        rt.run();
        if !chk.violations().is_empty() {
            return Err(format!(
                "threaded run violated invariants: {:?}",
                chk.violations()
            ));
        }
        if !det.races().is_empty() {
            return Err(format!("threaded run raced: {:?}", det.races()));
        }
        println!(
            "    threaded: {} events checked, {} races",
            chk.events_seen(),
            det.races().len()
        );
        Ok(())
    }

    /// Out-of-core threaded run over real spill files: tiny budget and
    /// tiny segments so the segmented spill log rolls and compacts while
    /// the prefetch window streams reloads — the checker validates the
    /// Prefetch (window bound, on-disk state) and Compaction (no live
    /// object lost) invariants against a live run.
    fn threaded_ooc_sweep() -> Result<(), String> {
        let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
        let det = Arc::new(RaceDetector::new(3));
        let mut cfg = MrtsConfig::out_of_core(3, 600);
        cfg.soft_threshold_frac = 0.25;
        cfg.segment_bytes = 512;
        cfg.segment_garbage_frac = 0.3;
        cfg.spill_dir =
            Some(std::env::temp_dir().join(format!("mrts-audit-ooc-{}", std::process::id())));
        let spill = cfg.spill_dir.clone().unwrap();
        let mut rt = ThreadedRuntime::new(cfg);
        rt.register_type(CELL_TAG, Cell::decode);
        rt.register_handler(H_RING, "ring", h_ring);
        rt.register_handler(H_MOVE, "move", h_move);
        rt.attach_audit(chk.clone());
        rt.attach_race_detector(det.clone());
        let cells: Vec<MobilePtr> = (0..3)
            .map(|n| MobilePtr::new(ObjectId::new(n, 0)))
            .collect();
        for (i, &p) in cells.iter().enumerate() {
            let cell = Box::new(Cell {
                value: 0,
                neighbors: vec![cells[(i + 1) % 3]],
                pad: vec![0x5A; 256],
            });
            rt.create_object(i as NodeId, cell, 128);
            rt.post(p, H_RING, u64_payload(15));
        }
        rt.post(cells[0], H_MOVE, u64_payload(2));
        let stats = rt.run();
        let _ = std::fs::remove_dir_all(spill);
        if !chk.violations().is_empty() {
            return Err(format!(
                "threaded OOC run violated invariants: {:?}",
                chk.violations()
            ));
        }
        if !det.races().is_empty() {
            return Err(format!("threaded OOC run raced: {:?}", det.races()));
        }
        if stats.total_of(|n| n.stores) == 0 {
            return Err("threaded OOC run never spilled — sweep is vacuous".into());
        }
        println!(
            "    threaded-ooc: {} events checked ({} stores, {} loads, hit rate {:.0}%, \
             {} elided, {} batches, {} pool hits)",
            chk.events_seen(),
            stats.total_of(|n| n.stores),
            stats.total_of(|n| n.loads),
            100.0 * stats.prefetch_hit_rate(),
            stats.total_of(|n| n.evictions_elided),
            stats.total_of(|n| n.spill_batches),
            stats.total_of(|n| n.buffer_pool_hits),
        );
        Ok(())
    }

    pub fn run() -> bool {
        println!("==> invariant sweep (DES schedule permutations + threaded race check)");
        for (name, res) in [
            ("des", des_sweep()),
            ("threaded", threaded_sweep()),
            ("threaded-ooc", threaded_ooc_sweep()),
        ] {
            if let Err(e) = res {
                eprintln!("audit: {name} sweep failed: {e}");
                return false;
            }
        }
        true
    }
}

#[cfg(not(any(feature = "audit", debug_assertions)))]
mod invariant_sweep {
    pub fn run() -> bool {
        // Release build without the `audit` feature: the instrumentation
        // is compiled out, so there is nothing to sweep in-process. The
        // subprocess steps above already ran the (debug) test suite,
        // which carries the checker.
        println!("==> invariant sweep skipped (instrumentation compiled out)");
        true
    }
}

#[cfg(any(feature = "audit", debug_assertions))]
mod chaos_sweep {
    //! Seeded storage-fault schedules through both engines on OPCDM:
    //! every schedule must finish with zero invariant violations and the
    //! fault-free mesh (transient faults cost time, never correctness);
    //! ENOSPC schedules must degrade and recover.

    use pumg::methods::domain::Workload;
    use pumg::methods::ooc_pcdm::{
        opcdm_run, opcdm_run_threaded, opcdm_run_threaded_with, opcdm_run_with,
    };
    use pumg::methods::pcdm::PcdmParams;
    use pumg::mrts::audit::{FailMode, InvariantChecker, RaceDetector};
    use pumg::mrts::config::MrtsConfig;
    use pumg::mrts::fault::FaultPlan;
    use pumg::mrts::stats::RunStats;
    use std::io::Write;
    use std::sync::Arc;
    use std::time::Duration;

    fn params() -> PcdmParams {
        PcdmParams::new(Workload::uniform_square(6_000), 2)
    }

    fn mixed_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(0xC0FF_EE00 ^ seed)
            .with_eio(60)
            .with_torn_writes(40)
            .with_latency(80, Duration::from_micros(300))
    }

    fn counters(stats: &RunStats) -> String {
        format!(
            "faults={} retries={} gave_up={} degraded={} elided={} batches={}",
            stats.total_of(|n| n.faults_injected),
            stats.total_of(|n| n.io_retries),
            stats.total_of(|n| n.io_gave_up),
            stats.total_of(|n| n.degraded_entries),
            stats.total_of(|n| n.evictions_elided),
            stats.total_of(|n| n.spill_batches),
        )
    }

    pub fn run(quick: bool) -> bool {
        let (des_seeds, thr_seeds) = if quick { (4u64, 2u64) } else { (14, 6) };
        let enospc_seeds: &[u64] = if quick { &[1] } else { &[1, 2, 3] };
        let mut report = Vec::<String>::new();
        let mut ok = true;
        let mut say = |line: String| {
            println!("    {line}");
            report.push(line);
        };

        let budget = 70_000usize;
        println!("==> chaos sweep (seeded storage-fault schedules, both engines)");
        let reference = opcdm_run(&params(), MrtsConfig::out_of_core(2, budget));

        for seed in 0..des_seeds {
            let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
            let sink = chk.clone();
            let r = opcdm_run_with(
                &params(),
                MrtsConfig::out_of_core(2, budget).with_faults(mixed_plan(seed)),
                move |rt| rt.attach_audit(sink),
            );
            let clean = chk.violations().is_empty()
                && (r.elements, r.vertices) == (reference.elements, reference.vertices);
            ok &= clean;
            say(format!(
                "des seed {seed:>2}: {} [{}] mesh {}",
                if clean { "ok" } else { "FAIL" },
                counters(&r.stats),
                r.elements
            ));
            if !chk.violations().is_empty() {
                say(format!("  violations: {:?}", chk.violations()));
            }
        }

        let thr_budget = 70_000usize;
        let thr_reference = {
            let mut cfg = MrtsConfig::out_of_core(2, thr_budget);
            cfg.spill_dir = Some(spill_dir("chaos-ref"));
            let r = opcdm_run_threaded(&params(), cfg);
            let _ = std::fs::remove_dir_all(spill_dir("chaos-ref"));
            r
        };
        for seed in 0..thr_seeds {
            let plan = FaultPlan::new(0xBAD_D15C ^ seed)
                .with_eio(120)
                .with_torn_writes(80)
                .with_latency(60, Duration::from_micros(200));
            let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
            let det = Arc::new(RaceDetector::new(2));
            let dir = spill_dir(&format!("chaos-t{seed}"));
            let mut cfg = MrtsConfig::out_of_core(2, thr_budget).with_faults(plan);
            cfg.spill_dir = Some(dir.clone());
            let (sink, races) = (chk.clone(), det.clone());
            let r = opcdm_run_threaded_with(&params(), cfg, move |rt| {
                rt.attach_audit(sink);
                rt.attach_race_detector(races);
            });
            let _ = std::fs::remove_dir_all(dir);
            let clean = chk.violations().is_empty()
                && det.races().is_empty()
                && (r.elements, r.vertices) == (thr_reference.elements, thr_reference.vertices);
            ok &= clean;
            say(format!(
                "threaded seed {seed:>2}: {} [{}] mesh {}",
                if clean { "ok" } else { "FAIL" },
                counters(&r.stats),
                r.elements
            ));
            if !chk.violations().is_empty() {
                say(format!("  violations: {:?}", chk.violations()));
            }
        }

        for &seed in enospc_seeds {
            let plan = FaultPlan::new(seed).with_enospc_window(4, 6);
            let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
            let sink = chk.clone();
            let r = opcdm_run_with(
                &params(),
                MrtsConfig::out_of_core(2, budget).with_faults(plan),
                move |rt| rt.attach_audit(sink),
            );
            let ratio = r.elements as f64 / reference.elements as f64;
            let clean = chk.violations().is_empty()
                && r.stats.total_of(|n| n.degraded_entries) > 0
                && (0.97..1.03).contains(&ratio);
            ok &= clean;
            say(format!(
                "enospc seed {seed:>2}: {} [{}] mesh {}",
                if clean { "ok" } else { "FAIL" },
                counters(&r.stats),
                r.elements
            ));
        }

        let _ = std::fs::create_dir_all("target");
        if let Ok(mut f) = std::fs::File::create("target/chaos-report.txt") {
            for line in &report {
                let _ = writeln!(f, "{line}");
            }
        }
        println!(
            "    {} schedules swept — report in target/chaos-report.txt",
            des_seeds + thr_seeds + enospc_seeds.len() as u64
        );
        ok
    }

    fn spill_dir(label: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mrts-audit-{label}-{}", std::process::id()))
    }
}

#[cfg(not(any(feature = "audit", debug_assertions)))]
mod chaos_sweep {
    pub fn run(_quick: bool) -> bool {
        println!("==> chaos sweep skipped (instrumentation compiled out)");
        true
    }
}

#[cfg(any(feature = "audit", debug_assertions))]
mod chaos_net_sweep {
    //! Seeded fabric-fault schedules (message drops, duplicates, delays,
    //! reorders, partition windows) through both engines on OPCDM. The
    //! reliable-delivery layer — sequence numbers, positive acks,
    //! bounded-exponential retransmit, receiver dedup — must finish every
    //! schedule with zero invariant violations and the byte-identical
    //! fault-free mesh; a duplicate storm must never re-execute a handler.

    use pumg::methods::domain::Workload;
    use pumg::methods::ooc_pcdm::{
        opcdm_run, opcdm_run_threaded, opcdm_run_threaded_with, opcdm_run_with,
    };
    use pumg::methods::pcdm::PcdmParams;
    use pumg::mrts::audit::{FailMode, InvariantChecker, RaceDetector};
    use pumg::mrts::config::MrtsConfig;
    use pumg::mrts::netfault::NetFaultPlan;
    use pumg::mrts::stats::RunStats;
    use std::io::Write;
    use std::sync::Arc;
    use std::time::Duration;

    fn params() -> PcdmParams {
        PcdmParams::new(Workload::uniform_square(6_000), 2)
    }

    // Rates run hotter than the `tests/chaos.rs` schedules: the mesh
    // workload exchanges only a handful of remote messages per run, so a
    // sweep at realistic rates could pass without injecting anything.
    fn net_plan(seed: u64) -> NetFaultPlan {
        NetFaultPlan::new(0x6E7F_A017 ^ seed)
            .with_drops(200)
            .with_dups(150)
            .with_delay(80, Duration::from_micros(300))
            .with_reorder(60)
    }

    fn counters(stats: &RunStats) -> String {
        format!(
            "dropped={} retransmits={} dups={} hints={} acks={}",
            stats.total_of(|n| n.messages_dropped),
            stats.total_of(|n| n.retransmits),
            stats.total_of(|n| n.dup_suppressed),
            stats.total_of(|n| n.hints_invalidated),
            stats.total_of(|n| n.acks_sent),
        )
    }

    pub fn run(quick: bool) -> bool {
        let (des_seeds, thr_seeds) = if quick { (4u64, 2u64) } else { (20, 20) };
        let partition_seeds: &[u64] = if quick { &[1] } else { &[1, 2, 3] };
        let mut report = Vec::<String>::new();
        let mut ok = true;
        let mut say = |line: String| {
            println!("    {line}");
            report.push(line);
        };

        let budget = 70_000usize;
        println!("==> chaos-net sweep (seeded fabric-fault schedules, both engines)");
        let reference = opcdm_run(&params(), MrtsConfig::out_of_core(2, budget));

        let mut injected = 0usize;
        for seed in 0..des_seeds {
            let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
            let sink = chk.clone();
            let r = opcdm_run_with(
                &params(),
                MrtsConfig::out_of_core(2, budget).with_net_faults(net_plan(seed)),
                move |rt| rt.attach_audit(sink),
            );
            let clean = chk.violations().is_empty()
                && (r.elements, r.vertices) == (reference.elements, reference.vertices);
            ok &= clean;
            injected +=
                r.stats.total_of(|n| n.messages_dropped) + r.stats.total_of(|n| n.dup_suppressed);
            say(format!(
                "des seed {seed:>2}: {} [{}] mesh {}",
                if clean { "ok" } else { "FAIL" },
                counters(&r.stats),
                r.elements
            ));
            if !chk.violations().is_empty() {
                say(format!("  violations: {:?}", chk.violations()));
            }
        }

        // Partition windows: a contiguous range of sequence numbers per
        // edge is dropped on every attempt the bounded-drop guarantee
        // allows, then the fabric heals. The window sits at low sequence
        // numbers because the mesh workload exchanges only a handful of
        // remote messages per edge.
        for &seed in partition_seeds {
            let plan = NetFaultPlan::new(0x9A27 ^ seed).with_partition(1, 6);
            let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
            let sink = chk.clone();
            let r = opcdm_run_with(
                &params(),
                MrtsConfig::out_of_core(2, budget).with_net_faults(plan),
                move |rt| rt.attach_audit(sink),
            );
            let clean = chk.violations().is_empty()
                && (r.elements, r.vertices) == (reference.elements, reference.vertices);
            ok &= clean;
            say(format!(
                "partition seed {seed:>2}: {} [{}] mesh {}",
                if clean { "ok" } else { "FAIL" },
                counters(&r.stats),
                r.elements
            ));
        }

        let thr_reference = {
            let mut cfg = MrtsConfig::out_of_core(2, budget);
            cfg.spill_dir = Some(spill_dir("chaos-net-ref"));
            let r = opcdm_run_threaded(&params(), cfg);
            let _ = std::fs::remove_dir_all(spill_dir("chaos-net-ref"));
            r
        };
        for seed in 0..thr_seeds {
            let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
            let det = Arc::new(RaceDetector::new(2));
            let dir = spill_dir(&format!("chaos-net-t{seed}"));
            let mut cfg = MrtsConfig::out_of_core(2, budget).with_net_faults(net_plan(seed));
            cfg.spill_dir = Some(dir.clone());
            let (sink, races) = (chk.clone(), det.clone());
            let r = opcdm_run_threaded_with(&params(), cfg, move |rt| {
                rt.attach_audit(sink);
                rt.attach_race_detector(races);
            });
            let _ = std::fs::remove_dir_all(dir);
            let clean = chk.violations().is_empty()
                && det.races().is_empty()
                && (r.elements, r.vertices) == (thr_reference.elements, thr_reference.vertices);
            ok &= clean;
            injected +=
                r.stats.total_of(|n| n.messages_dropped) + r.stats.total_of(|n| n.dup_suppressed);
            say(format!(
                "threaded seed {seed:>2}: {} [{}] mesh {}",
                if clean { "ok" } else { "FAIL" },
                counters(&r.stats),
                r.elements
            ));
            if !chk.violations().is_empty() {
                say(format!("  violations: {:?}", chk.violations()));
            }
        }

        // Duplicate storm: half of all transmissions duplicated; a handler
        // executed twice drives the checker's outstanding-delivery count
        // negative (DuplicateDelivery) and would mutate the mesh.
        {
            let plan = NetFaultPlan::new(0xD0D0).with_dups(500);
            let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
            let dir = spill_dir("chaos-net-dup");
            let mut cfg = MrtsConfig::out_of_core(2, budget).with_net_faults(plan);
            cfg.spill_dir = Some(dir.clone());
            let sink = chk.clone();
            let r = opcdm_run_threaded_with(&params(), cfg, move |rt| rt.attach_audit(sink));
            let _ = std::fs::remove_dir_all(dir);
            let clean = chk.violations().is_empty()
                && r.stats.total_of(|n| n.dup_suppressed) > 0
                && (r.elements, r.vertices) == (thr_reference.elements, thr_reference.vertices);
            ok &= clean;
            say(format!(
                "dup storm:       {} [{}] mesh {}",
                if clean { "ok" } else { "FAIL" },
                counters(&r.stats),
                r.elements
            ));
        }

        if injected == 0 {
            say("FAIL: sweep injected no fabric faults — vacuous".into());
            ok = false;
        }

        let _ = std::fs::create_dir_all("target");
        if let Ok(mut f) = std::fs::File::create("target/chaos-net-report.txt") {
            for line in &report {
                let _ = writeln!(f, "{line}");
            }
        }
        println!(
            "    {} schedules swept — report in target/chaos-net-report.txt",
            des_seeds + thr_seeds + partition_seeds.len() as u64 + 1
        );
        ok
    }

    fn spill_dir(label: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mrts-audit-{label}-{}", std::process::id()))
    }
}

#[cfg(not(any(feature = "audit", debug_assertions)))]
mod chaos_net_sweep {
    pub fn run(_quick: bool) -> bool {
        println!("==> chaos-net sweep skipped (instrumentation compiled out)");
        true
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let chaos = args.iter().any(|a| a == "--chaos");
    let chaos_net = args.iter().any(|a| a == "--chaos-net");
    let quick = args.iter().any(|a| a == "--quick");
    let analyze = args.iter().any(|a| a == "--analyze");
    if let Some(bad) = args.iter().find(|a| {
        a.as_str() != "--chaos"
            && a.as_str() != "--chaos-net"
            && a.as_str() != "--quick"
            && a.as_str() != "--analyze"
    }) {
        eprintln!(
            "audit: unknown flag {bad} (expected --chaos, --chaos-net, --analyze and/or --quick)"
        );
        return ExitCode::FAILURE;
    }
    let ok = if analyze {
        static_analysis()
    } else if chaos_net {
        chaos_net_sweep::run(quick)
    } else if chaos {
        chaos_sweep::run(quick)
    } else {
        lint_and_test()
            && static_analysis()
            && invariant_sweep::run()
            && chaos_sweep::run(true)
            && chaos_net_sweep::run(true)
    };
    if ok {
        println!("audit: all gates passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
