//! Integration: out-of-core layer behavior at the application level —
//! overlap, budgets, swap policies, threaded-engine parity.

use pumg::methods::domain::Workload;
use pumg::methods::ooc_pcdm::{opcdm_run, opcdm_run_threaded};
use pumg::methods::ooc_updr::oupdr_run;
use pumg::methods::pcdm::PcdmParams;
use pumg::methods::updr::UpdrParams;
use pumg::mrts::config::MrtsConfig;
use pumg::mrts::policy::PolicyKind;

#[test]
fn overlap_emerges_on_large_ooc_runs() {
    // Tables IV–VI: on problems well past memory, disk I/O runs while
    // other objects compute, so busy-time overlap must be visible.
    let p = UpdrParams::new(Workload::uniform_square(24_000), 6);
    // ~24k elements ≈ 0.9 MB arena (plus buffer-zone overlap); 4 × 120 KB
    // is roughly 3x over-subscribed. Compute is scaled ~30x to model the
    // paper's 650 MHz-class nodes against the period-realistic disk model
    // (otherwise a modern CPU makes disk dominate and nothing overlaps).
    let budget = 120_000usize;
    let mut cfg = MrtsConfig::out_of_core(4, budget);
    cfg.compute_scale = 32.0;
    let r = oupdr_run(&p, cfg);
    assert!(r.stats.disk_pct() > 3.0, "{}", r.stats.summary());
    assert!(
        r.stats.overlap_pct() > 0.0,
        "disk must overlap compute: {}",
        r.stats.summary()
    );
}

#[test]
fn peak_memory_respects_budget_with_slack() {
    let p = UpdrParams::new(Workload::uniform_square(16_000), 6);
    let budget = 120_000usize;
    let r = oupdr_run(&p, MrtsConfig::out_of_core(4, budget));
    assert!(r.stats.total_of(|n| n.stores) > 0);
    // The hard threshold may overshoot by roughly one largest object; 3x
    // is the failure line.
    assert!(
        r.stats.peak_mem() < 3 * budget,
        "peak {} vs budget {budget}",
        r.stats.peak_mem()
    );
}

#[test]
fn all_swap_policies_complete_correctly() {
    let p = PcdmParams::new(Workload::uniform_square(8_000), 3);
    let budget = 70_000usize;
    let reference = opcdm_run(&p, MrtsConfig::in_core(2)).elements;
    for policy in PolicyKind::ALL {
        let r = opcdm_run(&p, MrtsConfig::out_of_core(2, budget).with_policy(policy));
        // Out-of-core queueing can reorder refine/split handling, and
        // Delaunay refinement is order-dependent in its Steiner choices —
        // the meshes are equally valid but may differ by a few elements.
        let ratio = r.elements as f64 / reference as f64;
        assert!(
            (0.97..1.03).contains(&ratio),
            "policy {} changed the mesh materially: {} vs {reference}",
            policy.name(),
            r.elements
        );
        assert!(
            r.stats.total_of(|n| n.stores) > 0,
            "policy {} never spilled",
            policy.name()
        );
    }
}

#[test]
fn threaded_engine_produces_identical_mesh() {
    // The same OPCDM application on real OS threads with real spill files
    // must produce exactly the mesh the virtual-time engine produced.
    let p = PcdmParams::new(Workload::uniform_square(6_000), 2);
    let des = opcdm_run(&p, MrtsConfig::in_core(2));
    let mut cfg = MrtsConfig::out_of_core(2, 300_000);
    cfg.spill_dir = Some(std::env::temp_dir().join(format!("mrts-parity-{}", std::process::id())));
    let spill = cfg.spill_dir.clone().unwrap();
    let threaded = opcdm_run_threaded(&p, cfg);
    assert_eq!(des.elements, threaded.elements);
    assert_eq!(des.vertices, threaded.vertices);
    let _ = std::fs::remove_dir_all(spill);
}

#[test]
fn prefetch_overlaps_loads_with_compute() {
    // The message-driven prefetcher must turn queued-but-on-disk objects
    // into look-ahead loads that complete while other objects compute.
    let p = UpdrParams::new(Workload::uniform_square(24_000), 6);
    let mut cfg = MrtsConfig::out_of_core(4, 120_000);
    cfg.compute_scale = 32.0;
    let r = oupdr_run(&p, cfg);
    let stats = &r.stats;
    let loads = stats.total_of(|n| n.loads);
    assert!(
        loads > 0,
        "workload must be out-of-core: {}",
        stats.summary()
    );
    // Every completed load is classified exactly once.
    assert_eq!(
        stats.total_of(|n| n.prefetch_hits) + stats.total_of(|n| n.prefetch_misses),
        loads,
        "hit/miss classification must cover every load"
    );
    assert!(
        stats.total_of(|n| n.prefetch_issued) > 0,
        "no look-ahead loads were issued: {}",
        stats.summary()
    );
    assert!(
        stats.prefetch_hit_rate() > 0.0,
        "no load was masked by computation: {}",
        stats.summary()
    );
}

#[test]
fn prefetch_pacing_respects_budget_under_pressure() {
    // A paced prefetch window must not blow the memory budget even on a
    // severely over-subscribed node (the look-ahead loads are charged
    // against the same budget as demand loads).
    let p = PcdmParams::new(Workload::uniform_square(8_000), 3);
    let budget = 70_000usize;
    let r = opcdm_run(
        &p,
        MrtsConfig::out_of_core(2, budget).with_prefetch_window(8, 1 << 20),
    );
    assert!(r.stats.total_of(|n| n.stores) > 0);
    assert!(
        r.stats.peak_mem() < 3 * budget,
        "peak {} vs budget {budget}",
        r.stats.peak_mem()
    );
    let loads = r.stats.total_of(|n| n.loads);
    assert_eq!(
        r.stats.total_of(|n| n.prefetch_hits) + r.stats.total_of(|n| n.prefetch_misses),
        loads
    );
}

#[test]
fn wider_disk_pipeline_never_slows_the_des() {
    // Virtual disk channels model the I/O pool: two channels must not be
    // slower than one on the same deterministic OOC workload.
    let p = PcdmParams::new(Workload::uniform_square(8_000), 3);
    let budget = 70_000usize;
    let t1 = opcdm_run(&p, MrtsConfig::out_of_core(2, budget).with_io_threads(1))
        .stats
        .total;
    let t2 = opcdm_run(&p, MrtsConfig::out_of_core(2, budget).with_io_threads(2))
        .stats
        .total;
    assert!(
        t2 <= t1,
        "2 disk channels ({t2:?}) must not lose to 1 ({t1:?})"
    );
}

#[test]
fn threaded_legacy_io_path_stays_correct() {
    // The pre-overlap shape (single FIFO I/O thread, per-object spill
    // files, unpaced loads) remains as the benchmark baseline and must
    // still produce the reference mesh.
    let p = PcdmParams::new(Workload::uniform_square(6_000), 2);
    let des = opcdm_run(&p, MrtsConfig::in_core(2));
    let mut cfg = MrtsConfig::out_of_core(2, 300_000).with_legacy_io();
    cfg.spill_dir = Some(std::env::temp_dir().join(format!("mrts-legacy-{}", std::process::id())));
    let spill = cfg.spill_dir.clone().unwrap();
    let threaded = opcdm_run_threaded(&p, cfg);
    assert_eq!(des.elements, threaded.elements);
    assert_eq!(des.vertices, threaded.vertices);
    let _ = std::fs::remove_dir_all(spill);
}

#[test]
fn more_nodes_means_less_virtual_time() {
    // Node-level scaling in the virtual-time model: same OOC workload on
    // more nodes finishes sooner (the sub-linear scaling of the paper).
    let p = PcdmParams::new(Workload::uniform_square(16_000), 4);
    let t2 = opcdm_run(&p, MrtsConfig::in_core(2)).stats.total;
    let t8 = opcdm_run(&p, MrtsConfig::in_core(8)).stats.total;
    assert!(t8 < t2, "8 nodes ({t8:?}) must beat 2 nodes ({t2:?})");
    let speedup = t2.as_secs_f64() / t8.as_secs_f64();
    assert!(
        speedup > 1.5,
        "expected meaningful scaling, got {speedup:.2}x"
    );
}
