//! Integration: out-of-core layer behavior at the application level —
//! overlap, budgets, swap policies, threaded-engine parity.

use pumg::methods::domain::Workload;
use pumg::methods::ooc_pcdm::{opcdm_run, opcdm_run_threaded};
use pumg::methods::ooc_updr::oupdr_run;
use pumg::methods::pcdm::PcdmParams;
use pumg::methods::updr::UpdrParams;
use pumg::mrts::config::MrtsConfig;
use pumg::mrts::policy::PolicyKind;

#[test]
fn overlap_emerges_on_large_ooc_runs() {
    // Tables IV–VI: on problems well past memory, disk I/O runs while
    // other objects compute, so busy-time overlap must be visible.
    let p = UpdrParams::new(Workload::uniform_square(24_000), 6);
    // ~24k elements ≈ 0.9 MB arena (plus buffer-zone overlap); 4 × 120 KB
    // is roughly 3x over-subscribed. Compute is scaled ~30x to model the
    // paper's 650 MHz-class nodes against the period-realistic disk model
    // (otherwise a modern CPU makes disk dominate and nothing overlaps).
    let budget = 120_000usize;
    let mut cfg = MrtsConfig::out_of_core(4, budget);
    cfg.compute_scale = 32.0;
    let r = oupdr_run(&p, cfg);
    assert!(r.stats.disk_pct() > 3.0, "{}", r.stats.summary());
    assert!(
        r.stats.overlap_pct() > 0.0,
        "disk must overlap compute: {}",
        r.stats.summary()
    );
}

#[test]
fn peak_memory_respects_budget_with_slack() {
    let p = UpdrParams::new(Workload::uniform_square(16_000), 6);
    let budget = 120_000usize;
    let r = oupdr_run(&p, MrtsConfig::out_of_core(4, budget));
    assert!(r.stats.total_of(|n| n.stores) > 0);
    // The hard threshold may overshoot by roughly one largest object; 3x
    // is the failure line.
    assert!(
        r.stats.peak_mem() < 3 * budget,
        "peak {} vs budget {budget}",
        r.stats.peak_mem()
    );
}

#[test]
fn all_swap_policies_complete_correctly() {
    let p = PcdmParams::new(Workload::uniform_square(8_000), 3);
    let budget = 70_000usize;
    let reference = opcdm_run(&p, MrtsConfig::in_core(2)).elements;
    for policy in PolicyKind::ALL {
        let r = opcdm_run(&p, MrtsConfig::out_of_core(2, budget).with_policy(policy));
        // Out-of-core queueing can reorder refine/split handling, and
        // Delaunay refinement is order-dependent in its Steiner choices —
        // the meshes are equally valid but may differ by a few elements.
        let ratio = r.elements as f64 / reference as f64;
        assert!(
            (0.97..1.03).contains(&ratio),
            "policy {} changed the mesh materially: {} vs {reference}",
            policy.name(),
            r.elements
        );
        assert!(
            r.stats.total_of(|n| n.stores) > 0,
            "policy {} never spilled",
            policy.name()
        );
    }
}

#[test]
fn threaded_engine_produces_identical_mesh() {
    // The same OPCDM application on real OS threads with real spill files
    // must produce exactly the mesh the virtual-time engine produced.
    let p = PcdmParams::new(Workload::uniform_square(6_000), 2);
    let des = opcdm_run(&p, MrtsConfig::in_core(2));
    let mut cfg = MrtsConfig::out_of_core(2, 300_000);
    cfg.spill_dir = Some(std::env::temp_dir().join(format!("mrts-parity-{}", std::process::id())));
    let spill = cfg.spill_dir.clone().unwrap();
    let threaded = opcdm_run_threaded(&p, cfg);
    assert_eq!(des.elements, threaded.elements);
    assert_eq!(des.vertices, threaded.vertices);
    let _ = std::fs::remove_dir_all(spill);
}

#[test]
fn more_nodes_means_less_virtual_time() {
    // Node-level scaling in the virtual-time model: same OOC workload on
    // more nodes finishes sooner (the sub-linear scaling of the paper).
    let p = PcdmParams::new(Workload::uniform_square(16_000), 4);
    let t2 = opcdm_run(&p, MrtsConfig::in_core(2)).stats.total;
    let t8 = opcdm_run(&p, MrtsConfig::in_core(8)).stats.total;
    assert!(t8 < t2, "8 nodes ({t8:?}) must beat 2 nodes ({t2:?})");
    let speedup = t2.as_secs_f64() / t8.as_secs_f64();
    assert!(
        speedup > 1.5,
        "expected meaningful scaling, got {speedup:.2}x"
    );
}
