//! Integration: deterministic record/replay of the threaded engine.
//!
//! A chaos-net OPCDM schedule is recorded (every fabric poll, I/O
//! completion, deferred flush, and retransmit timer routed through the
//! decision log) and re-executed under the log; with a single I/O pool
//! thread both lanes of the canonical audit stream must come back
//! byte-identical. A deliberately perturbed stream must be pinpointed
//! at the exact first-divergence index, and a perturbed decision log
//! must be caught by the sequencer. Finally, a threaded run under
//! replay must still produce the mesh the DES engine produces.

use pumg::methods::domain::Workload;
use pumg::methods::ooc_pcdm::{opcdm_collect_threaded, opcdm_run, opcdm_setup_threaded};
use pumg::methods::pcdm::PcdmParams;
use pumg::mrts::audit::EventLog;
use pumg::mrts::config::MrtsConfig;
use pumg::mrts::netfault::NetFaultPlan;
use pumg::mrts::replay::{canonicalize, compare, CanonicalStream, Decision, DecisionLog};
use pumg::mrts::stats::RunStats;
use std::sync::Arc;
use std::time::Duration;

const NODES: usize = 2;

fn params() -> PcdmParams {
    PcdmParams::new(Workload::uniform_square(6_000), 2)
}

fn cfg(seed: u64, label: &str) -> MrtsConfig {
    let plan = NetFaultPlan::new(0x6E7F_A017 ^ seed)
        .with_drops(200)
        .with_dups(150)
        .with_delay(80, Duration::from_micros(300))
        .with_reorder(60);
    let mut cfg = MrtsConfig::out_of_core(NODES, 70_000)
        .with_net_faults(plan)
        // One pool thread makes the pool lane a deterministic sequence,
        // so byte-identity is provable rather than merely multiset-equal.
        .with_io_threads(1);
    cfg.spill_dir =
        Some(std::env::temp_dir().join(format!("mrts-replay-{label}-{}", std::process::id())));
    cfg
}

struct Run {
    elements: u64,
    vertices: u64,
    stats: RunStats,
    decisions: DecisionLog,
    stream: CanonicalStream,
}

fn run_once(seed: u64, label: &str, replay: Option<DecisionLog>) -> Run {
    let cfg = cfg(seed, label);
    let spill = cfg.spill_dir.clone().expect("spill dir set");
    let log = Arc::new(EventLog::new());
    let mut rt = opcdm_setup_threaded(&params(), cfg);
    rt.attach_audit(log.clone());
    match replay {
        Some(d) => rt.replay_decisions(d),
        None => rt.record_decisions(),
    }
    let stats = rt.run();
    let (elements, vertices) = opcdm_collect_threaded(&rt);
    let decisions = rt
        .take_decision_log()
        .unwrap_or_else(|| DecisionLog::new(NODES));
    let _ = std::fs::remove_dir_all(spill);
    Run {
        elements,
        vertices,
        stats,
        decisions,
        stream: canonicalize(&log.snapshot(), NODES),
    }
}

#[test]
fn recorded_chaos_net_schedule_replays_byte_identically() {
    let rec = run_once(11, "e2e-rec", None);
    assert!(
        rec.stats.total_of(|n| n.decisions_recorded) > 0,
        "recording was vacuous: {}",
        rec.stats.summary()
    );
    let rep = run_once(11, "e2e-rep", Some(rec.decisions.clone()));
    assert_eq!(
        rep.stats.total_of(|n| n.replay_divergences),
        0,
        "sequencer diverged: {}",
        rep.stats.summary()
    );
    let report = compare(&rec.stream, &rep.stream);
    assert!(report.events_compared > 0, "no events compared — vacuous");
    assert!(
        report.is_clean(),
        "audit streams must be byte-identical:\n{report}"
    );
    assert_eq!((rec.elements, rec.vertices), (rep.elements, rep.vertices));
}

#[test]
fn perturbed_stream_reports_the_exact_first_divergence_index() {
    let rec = run_once(12, "e2e-cut", None);
    let node = rec
        .stream
        .nodes
        .iter()
        .position(|n| n.control.len() >= 2)
        .expect("a chaos-net run emits control events");
    let idx = rec.stream.nodes[node].control.len() / 2;
    let mut cut = rec.stream.clone();
    cut.nodes[node].control.truncate(idx);
    let report = compare(&cut, &rec.stream);
    assert!(!report.is_clean(), "a shortened lane must diverge");
    let d = report
        .divergences
        .iter()
        .find(|d| d.node as usize == node)
        .expect("divergence on the perturbed node");
    assert_eq!(d.index, idx, "first divergence must sit at the cut:\n{d}");
    assert!(d.expected.is_none(), "recorded lane ended at the cut");
    assert!(d.actual.is_some(), "live lane continues past the cut");
    assert!(!d.window.is_empty(), "triage window must be rendered");
}

#[test]
fn perturbed_decision_log_is_caught_by_the_sequencer() {
    let rec = run_once(13, "e2e-bad", None);
    let mut bad = rec.decisions.clone();
    let tag = bad
        .nodes
        .iter_mut()
        .flatten()
        .find_map(|d| match d {
            Decision::FabricRecv { tag, .. } => Some(tag),
            _ => None,
        })
        .expect("a chaos-net run records fabric receives");
    *tag ^= 0x5A5A;
    let rep = run_once(13, "e2e-bad-rep", Some(bad));
    let report = compare(&rec.stream, &rep.stream);
    assert!(
        rep.stats.total_of(|n| n.replay_divergences) > 0 || !report.is_clean(),
        "a corrupted decision must be detected"
    );
    // Divergence is detection, not failure: the replay falls back to
    // live execution and must still finish the mesh.
    assert_eq!((rep.elements, rep.vertices), (rec.elements, rec.vertices));
}

#[test]
fn threaded_under_replay_matches_des_mesh() {
    // The cross-engine contract of `threaded_engine_produces_identical_mesh`
    // (tests/ooc_behavior.rs) survives replay: the same fault-free config
    // pair, with the threaded side re-executed under a recorded decision
    // log, still produces exactly the virtual-time engine's mesh.
    let des = opcdm_run(&params(), MrtsConfig::in_core(NODES));
    let parity_cfg = |label: &str| {
        let mut cfg = MrtsConfig::out_of_core(NODES, 300_000).with_io_threads(1);
        cfg.spill_dir =
            Some(std::env::temp_dir().join(format!("mrts-replay-{label}-{}", std::process::id())));
        cfg
    };
    let run = |cfg: MrtsConfig, replay: Option<DecisionLog>| {
        let spill = cfg.spill_dir.clone().expect("spill dir set");
        let mut rt = opcdm_setup_threaded(&params(), cfg);
        match replay {
            Some(d) => rt.replay_decisions(d),
            None => rt.record_decisions(),
        }
        let stats = rt.run();
        let mesh = opcdm_collect_threaded(&rt);
        let decisions = rt.take_decision_log();
        let _ = std::fs::remove_dir_all(spill);
        (mesh, stats, decisions)
    };
    let (rec_mesh, rec_stats, decisions) = run(parity_cfg("e2e-des-rec"), None);
    assert!(rec_stats.total_of(|n| n.decisions_recorded) > 0);
    let decisions = decisions.expect("recording run yields a log");
    let (rep_mesh, rep_stats, _) = run(parity_cfg("e2e-des-rep"), Some(decisions));
    assert_eq!(rep_stats.total_of(|n| n.replay_divergences), 0);
    assert_eq!((des.elements, des.vertices), rec_mesh);
    assert_eq!((des.elements, des.vertices), rep_mesh);
}
