//! Chaos harness: seeded storage-fault schedules driven through both
//! engines on a real mesh workload (OPCDM), checking that
//!
//! * no audit invariant is ever violated under injected faults,
//! * the final mesh is the one the fault-free run produces (faults cost
//!   time, never correctness),
//! * a full disk degrades the run instead of killing it, and the run
//!   recovers when space returns,
//! * an unreadable spilled object surfaces as a typed error, not a panic,
//! * a kill between mesh phases recovers from the on-disk checkpoint and
//!   finishes with the identical mesh.
//!
//! The same schedules run in the audit gate (`--chaos`); these tests keep
//! the behavior pinned under plain `cargo test`.

use pumg::methods::domain::Workload;
use pumg::methods::ooc_pcdm::{
    opcdm_collect_threaded, opcdm_run, opcdm_run_threaded, opcdm_run_threaded_with, opcdm_run_with,
    opcdm_setup_threaded, register_threaded, SubObj, H_REFINE,
};
use pumg::methods::pcdm::PcdmParams;
use pumg::mrts::audit::{FailMode, InvariantChecker, RaceDetector};
use pumg::mrts::checkpoint::Checkpoint;
use pumg::mrts::codec::{PayloadReader, PayloadWriter};
use pumg::mrts::config::MrtsConfig;
use pumg::mrts::ctx::Ctx;
use pumg::mrts::des::DesRuntime;
use pumg::mrts::fault::{FaultPlan, MrtsError};
use pumg::mrts::ids::{HandlerId, MobilePtr, ObjectId, TypeTag};
use pumg::mrts::object::MobileObject;
use pumg::mrts::threaded::ThreadedRuntime;
use std::any::Any;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tmp(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mrts-chaos-{label}-{}", std::process::id()))
}

fn small() -> PcdmParams {
    PcdmParams::new(Workload::uniform_square(6_000), 2)
}

/// Mixed transient schedule: EIO on stores and loads, torn writes,
/// latency spikes — everything the retry layer must absorb.
fn mixed_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(0xC0FF_EE00 ^ seed)
        .with_eio(60)
        .with_torn_writes(40)
        .with_latency(80, Duration::from_micros(300))
}

#[test]
fn des_chaos_schedules_preserve_mesh_and_invariants() {
    let budget = 70_000usize;
    let reference = opcdm_run(&small(), MrtsConfig::out_of_core(2, budget));
    let mut faults_total = 0usize;
    for seed in 0..12u64 {
        let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
        let sink = chk.clone();
        let r = opcdm_run_with(
            &small(),
            MrtsConfig::out_of_core(2, budget).with_faults(mixed_plan(seed)),
            move |rt| rt.attach_audit(sink),
        );
        assert!(
            chk.violations().is_empty(),
            "seed {seed} violated invariants: {:?}",
            chk.violations()
        );
        assert_eq!(
            (r.elements, r.vertices),
            (reference.elements, reference.vertices),
            "seed {seed}: faults changed the mesh"
        );
        assert!(
            r.stats.total_of(|n| n.io_gave_up) == 0,
            "seed {seed}: transient schedule must never exhaust retries"
        );
        faults_total += r.stats.total_of(|n| n.faults_injected);
    }
    assert!(faults_total > 0, "sweep injected no faults — vacuous");
}

#[test]
fn threaded_chaos_schedules_preserve_mesh_and_invariants() {
    let budget = 70_000usize;
    let reference = {
        let mut cfg = MrtsConfig::out_of_core(2, budget);
        cfg.spill_dir = Some(tmp("t-ref"));
        let r = opcdm_run_threaded(&small(), cfg);
        let _ = std::fs::remove_dir_all(tmp("t-ref"));
        r
    };
    let mut faults_total = 0usize;
    for seed in 0..6u64 {
        // Load EIO stays well under the exhaustion knee (p^4 per op) so a
        // transient schedule can never turn into a fatal LoadFailed.
        let plan = FaultPlan::new(0xBAD_D15C ^ seed)
            .with_eio(120)
            .with_torn_writes(80)
            .with_latency(60, Duration::from_micros(200));
        let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
        let det = Arc::new(RaceDetector::new(2));
        let dir = tmp(&format!("t-{seed}"));
        let mut cfg = MrtsConfig::out_of_core(2, budget).with_faults(plan);
        cfg.spill_dir = Some(dir.clone());
        let (sink, races) = (chk.clone(), det.clone());
        let r = opcdm_run_threaded_with(&small(), cfg, move |rt| {
            rt.attach_audit(sink);
            rt.attach_race_detector(races);
        });
        let _ = std::fs::remove_dir_all(dir);
        assert!(
            chk.violations().is_empty(),
            "seed {seed} violated invariants: {:?}",
            chk.violations()
        );
        assert!(
            det.races().is_empty(),
            "seed {seed} raced: {:?}",
            det.races()
        );
        assert_eq!(
            (r.elements, r.vertices),
            (reference.elements, reference.vertices),
            "seed {seed}: faults changed the mesh"
        );
        faults_total += r.stats.total_of(|n| n.faults_injected);
    }
    assert!(faults_total > 0, "sweep injected no faults — vacuous");
}

#[test]
fn enospc_window_degrades_and_recovers_des() {
    let budget = 70_000usize;
    let reference = opcdm_run(&small(), MrtsConfig::out_of_core(2, budget));
    for seed in [1u64, 2] {
        let plan = FaultPlan::new(seed).with_enospc_window(4, 6);
        let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
        let sink = chk.clone();
        let r = opcdm_run_with(
            &small(),
            MrtsConfig::out_of_core(2, budget).with_faults(plan),
            move |rt| rt.attach_audit(sink),
        );
        assert!(
            chk.violations().is_empty(),
            "seed {seed}: {:?}",
            chk.violations()
        );
        assert!(
            r.stats.total_of(|n| n.degraded_entries) > 0,
            "seed {seed}: full disk never entered degraded mode"
        );
        // Degraded windows pause eviction, which reorders refinement;
        // the mesh stays equally valid but may differ slightly.
        let ratio = r.elements as f64 / reference.elements as f64;
        assert!(
            (0.97..1.03).contains(&ratio),
            "seed {seed}: degraded run changed the mesh materially: {} vs {}",
            r.elements,
            reference.elements
        );
        assert!(
            r.stats.total_of(|n| n.stores) > 0,
            "seed {seed}: never spilled after recovery"
        );
    }
}

#[test]
fn enospc_window_degrades_and_recovers_threaded() {
    let budget = 70_000usize;
    // The threaded engine's spill count varies with thread interleaving;
    // open the window on the second store so any run that spills at all
    // walks into the full disk.
    let plan = FaultPlan::new(7).with_enospc_window(1, 6);
    let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
    let det = Arc::new(RaceDetector::new(2));
    let dir = tmp("t-enospc");
    let mut cfg = MrtsConfig::out_of_core(2, budget).with_faults(plan);
    cfg.spill_dir = Some(dir.clone());
    let (sink, races) = (chk.clone(), det.clone());
    let r = opcdm_run_threaded_with(&small(), cfg, move |rt| {
        rt.attach_audit(sink);
        rt.attach_race_detector(races);
    });
    let _ = std::fs::remove_dir_all(dir);
    assert!(chk.violations().is_empty(), "{:?}", chk.violations());
    assert!(det.races().is_empty(), "{:?}", det.races());
    assert!(
        r.stats.total_of(|n| n.degraded_entries) > 0,
        "full disk never entered degraded mode"
    );
    assert!(r.elements > 0);
}

// ---------------------------------------------------------------------------
// Typed load-failure errors: a tiny two-object ping-pong under a budget
// that holds only one of them, with every load failing permanently.
// ---------------------------------------------------------------------------

const PAD_TAG: TypeTag = TypeTag(0x7A0);
const H_PING: HandlerId = HandlerId(0x7A1);

struct Pad {
    peer: Option<MobilePtr>,
    data: Vec<u8>,
}

impl Pad {
    fn decode(buf: &[u8]) -> Box<dyn MobileObject> {
        let mut r = PayloadReader::new(buf);
        let peer = if r.u8().unwrap() == 1 {
            Some(r.ptr().unwrap())
        } else {
            None
        };
        let data = r.bytes().unwrap().to_vec();
        Box::new(Pad { peer, data })
    }
}

impl MobileObject for Pad {
    fn type_tag(&self) -> TypeTag {
        PAD_TAG
    }
    fn encode(&self, buf: &mut Vec<u8>) {
        let mut w = PayloadWriter::new();
        match self.peer {
            Some(p) => {
                w.u8(1).ptr(p);
            }
            None => {
                w.u8(0);
            }
        }
        w.bytes(&self.data);
        buf.extend_from_slice(&w.finish());
    }
    fn footprint(&self) -> usize {
        self.data.len() + 64
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn h_ping(obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    let hops = r.u64().unwrap();
    let pad = obj.as_any_mut().downcast_mut::<Pad>().unwrap();
    if hops > 0 {
        if let Some(peer) = pad.peer {
            let mut w = PayloadWriter::new();
            w.u64(hops - 1);
            ctx.send(peer, H_PING, w.finish());
        }
    }
}

/// Every load fails permanently; the first reload of a spilled object
/// must exhaust the retry budget and surface as `MrtsError::LoadFailed`.
fn dead_load_plan() -> FaultPlan {
    let mut plan = FaultPlan::new(0xDEAD);
    plan.load_eio_permille = 1000;
    plan
}

fn pad_cfg() -> MrtsConfig {
    MrtsConfig::out_of_core(1, 3_000).with_faults(dead_load_plan())
}

fn ping_payload(hops: u64) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(hops);
    w.finish()
}

#[test]
fn load_exhaustion_is_typed_error_des() {
    let mut rt = DesRuntime::new(pad_cfg());
    rt.register_type(PAD_TAG, Pad::decode);
    rt.register_handler(H_PING, "ping", h_ping);
    let a = MobilePtr::new(ObjectId::new(0, 0));
    let b = MobilePtr::new(ObjectId::new(0, 1));
    rt.create_object(
        0,
        Box::new(Pad {
            peer: Some(b),
            data: vec![0x11; 2_500],
        }),
        128,
    );
    rt.create_object(
        0,
        Box::new(Pad {
            peer: Some(a),
            data: vec![0x22; 2_500],
        }),
        128,
    );
    rt.post(a, H_PING, ping_payload(6));
    match rt.try_run() {
        Err(MrtsError::LoadFailed { attempts, .. }) => {
            assert!(attempts >= 1, "error must report the attempts made");
        }
        other => panic!("expected LoadFailed, got {other:?}"),
    }
}

#[test]
fn load_exhaustion_is_typed_error_threaded() {
    let dir = tmp("exhaust");
    let mut cfg = pad_cfg();
    cfg.spill_dir = Some(dir.clone());
    let mut rt = ThreadedRuntime::new(cfg);
    rt.register_type(PAD_TAG, Pad::decode);
    rt.register_handler(H_PING, "ping", h_ping);
    let a = MobilePtr::new(ObjectId::new(0, 0));
    let b = MobilePtr::new(ObjectId::new(0, 1));
    rt.create_object(
        0,
        Box::new(Pad {
            peer: Some(b),
            data: vec![0x11; 2_500],
        }),
        128,
    );
    rt.create_object(
        0,
        Box::new(Pad {
            peer: Some(a),
            data: vec![0x22; 2_500],
        }),
        128,
    );
    rt.post(a, H_PING, ping_payload(6));
    let res = rt.try_run();
    let _ = std::fs::remove_dir_all(dir);
    match res {
        Err(MrtsError::LoadFailed { attempts, .. }) => {
            assert!(attempts >= 1, "error must report the attempts made");
        }
        other => panic!("expected LoadFailed, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Kill-between-phases recovery: phase 1 meshes a coarse workload, the
// checkpoint is the phase barrier, phase 2 retunes every subdomain to a
// finer workload and refines again. The crashed path persists the
// checkpoint segmented on disk, "dies" (drops the runtime), reads the
// checkpoint back — past a torn tail — and must finish with the mesh the
// uninterrupted path produced.
// ---------------------------------------------------------------------------

const H_RETUNE: HandlerId = HandlerId(0x902);

fn h_retune(obj: &mut dyn MobileObject, ctx: &mut Ctx, _payload: &[u8]) {
    let so = obj.as_any_mut().downcast_mut::<SubObj>().unwrap();
    so.workload = Workload::uniform_square(9_000);
    ctx.send(ctx.self_ptr(), H_REFINE, Vec::new());
}

fn run_phase2(cp: &Checkpoint, spill: PathBuf) -> (u64, u64) {
    let mut cfg = MrtsConfig::out_of_core(2, 300_000);
    cfg.spill_dir = Some(spill.clone());
    let mut rt = ThreadedRuntime::new(cfg);
    register_threaded(&mut rt);
    rt.register_handler(H_RETUNE, "retune", h_retune);
    cp.restore_into_threaded(&mut rt);
    for e in &cp.objects {
        rt.post(MobilePtr::new(e.oid), H_RETUNE, Vec::new());
    }
    rt.run();
    let counts = opcdm_collect_threaded(&rt);
    let _ = std::fs::remove_dir_all(spill);
    counts
}

#[test]
fn kill_between_phases_recovers_identical_mesh() {
    let p = PcdmParams::new(Workload::uniform_square(4_000), 2);
    let spill1 = tmp("kill-p1");
    let mut cfg = MrtsConfig::out_of_core(2, 300_000);
    cfg.spill_dir = Some(spill1.clone());
    let mut rt = opcdm_setup_threaded(&p, cfg);
    rt.run();
    let cp = rt.checkpoint();
    assert!(!cp.objects.is_empty());

    // Uninterrupted path: the in-memory checkpoint is the phase barrier.
    let uninterrupted = run_phase2(&cp, tmp("kill-a"));

    // Crashed path: persist, kill the runtime, restart from disk.
    let ckpt_dir = tmp("kill-ckpt");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    cp.write_segmented(&ckpt_dir).unwrap();
    drop(rt);
    let _ = std::fs::remove_dir_all(spill1);

    // A torn tail after the seal (crash mid-append of a later record)
    // must not impede recovery: the segment replay discards it.
    let mut segs: Vec<_> = std::fs::read_dir(&ckpt_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segs.sort();
    if let Some(last) = segs.last() {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(last).unwrap();
        f.write_all(&[0xFF, 0x00, 0xAB, 0x13, 0x37]).unwrap();
    }

    let recovered = Checkpoint::read_segmented(&ckpt_dir).unwrap();
    assert_eq!(recovered, cp, "recovered checkpoint must match the capture");
    let restarted = run_phase2(&recovered, tmp("kill-b"));
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    assert_eq!(
        restarted, uninterrupted,
        "restart from checkpoint must reproduce the uninterrupted mesh"
    );
    // Phase 2 actually refined past phase 1's mesh.
    let phase1: u64 = cp.objects.len() as u64;
    assert!(restarted.0 > phase1, "phase 2 must have refined the mesh");
}
