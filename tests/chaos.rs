//! Chaos harness: seeded storage-fault schedules driven through both
//! engines on a real mesh workload (OPCDM), checking that
//!
//! * no audit invariant is ever violated under injected faults,
//! * the final mesh is the one the fault-free run produces (faults cost
//!   time, never correctness),
//! * a full disk degrades the run instead of killing it, and the run
//!   recovers when space returns,
//! * an unreadable spilled object surfaces as a typed error, not a panic,
//! * a kill between mesh phases recovers from the on-disk checkpoint and
//!   finishes with the identical mesh.
//!
//! Network chaos (the `netfault` module) gets the same treatment: seeded
//! message drop/duplicate/delay/reorder schedules through both engines
//! with byte-identical meshes, exactly-once handler execution under
//! duplication, directory self-healing past a dead hint, and a mid-run
//! node crash that re-homes from the checkpoint onto surviving nodes.
//!
//! The same schedules run in the audit gate (`--chaos` / `--chaos-net`);
//! these tests keep the behavior pinned under plain `cargo test`.

use pumg::methods::domain::Workload;
use pumg::methods::ooc_pcdm::{
    opcdm_collect_threaded, opcdm_run, opcdm_run_threaded, opcdm_run_threaded_with, opcdm_run_with,
    opcdm_setup_threaded, register_threaded, SubObj, H_REFINE,
};
use pumg::methods::pcdm::PcdmParams;
use pumg::mrts::audit::{EventLog, FailMode, InvariantChecker, RaceDetector, RuntimeEvent};
use pumg::mrts::checkpoint::Checkpoint;
use pumg::mrts::codec::{PayloadReader, PayloadWriter};
use pumg::mrts::config::MrtsConfig;
use pumg::mrts::ctx::Ctx;
use pumg::mrts::des::DesRuntime;
use pumg::mrts::fault::{FaultPlan, MrtsError};
use pumg::mrts::ids::{HandlerId, MobilePtr, ObjectId, TypeTag};
use pumg::mrts::netfault::NetFaultPlan;
use pumg::mrts::object::{MobileObject, ObjectDecodeError};
use pumg::mrts::threaded::ThreadedRuntime;
use std::any::Any;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tmp(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mrts-chaos-{label}-{}", std::process::id()))
}

fn small() -> PcdmParams {
    PcdmParams::new(Workload::uniform_square(6_000), 2)
}

/// Mixed transient schedule: EIO on stores and loads, torn writes,
/// latency spikes — everything the retry layer must absorb.
fn mixed_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(0xC0FF_EE00 ^ seed)
        .with_eio(60)
        .with_torn_writes(40)
        .with_latency(80, Duration::from_micros(300))
}

#[test]
fn des_chaos_schedules_preserve_mesh_and_invariants() {
    let budget = 70_000usize;
    let reference = opcdm_run(&small(), MrtsConfig::out_of_core(2, budget));
    let mut faults_total = 0usize;
    for seed in 0..12u64 {
        let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
        let sink = chk.clone();
        let r = opcdm_run_with(
            &small(),
            MrtsConfig::out_of_core(2, budget).with_faults(mixed_plan(seed)),
            move |rt| rt.attach_audit(sink),
        );
        assert!(
            chk.violations().is_empty(),
            "seed {seed} violated invariants: {:?}",
            chk.violations()
        );
        assert_eq!(
            (r.elements, r.vertices),
            (reference.elements, reference.vertices),
            "seed {seed}: faults changed the mesh"
        );
        assert!(
            r.stats.total_of(|n| n.io_gave_up) == 0,
            "seed {seed}: transient schedule must never exhaust retries"
        );
        faults_total += r.stats.total_of(|n| n.faults_injected);
    }
    assert!(faults_total > 0, "sweep injected no faults — vacuous");
}

#[test]
fn threaded_chaos_schedules_preserve_mesh_and_invariants() {
    let budget = 70_000usize;
    let reference = {
        let mut cfg = MrtsConfig::out_of_core(2, budget);
        cfg.spill_dir = Some(tmp("t-ref"));
        let r = opcdm_run_threaded(&small(), cfg);
        let _ = std::fs::remove_dir_all(tmp("t-ref"));
        r
    };
    let mut faults_total = 0usize;
    for seed in 0..6u64 {
        // Load EIO stays well under the exhaustion knee (p^4 per op) so a
        // transient schedule can never turn into a fatal LoadFailed.
        let plan = FaultPlan::new(0xBAD_D15C ^ seed)
            .with_eio(120)
            .with_torn_writes(80)
            .with_latency(60, Duration::from_micros(200));
        let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
        let det = Arc::new(RaceDetector::new(2));
        let dir = tmp(&format!("t-{seed}"));
        let mut cfg = MrtsConfig::out_of_core(2, budget).with_faults(plan);
        cfg.spill_dir = Some(dir.clone());
        let (sink, races) = (chk.clone(), det.clone());
        let r = opcdm_run_threaded_with(&small(), cfg, move |rt| {
            rt.attach_audit(sink);
            rt.attach_race_detector(races);
        });
        let _ = std::fs::remove_dir_all(dir);
        assert!(
            chk.violations().is_empty(),
            "seed {seed} violated invariants: {:?}",
            chk.violations()
        );
        assert!(
            det.races().is_empty(),
            "seed {seed} raced: {:?}",
            det.races()
        );
        assert_eq!(
            (r.elements, r.vertices),
            (reference.elements, reference.vertices),
            "seed {seed}: faults changed the mesh"
        );
        faults_total += r.stats.total_of(|n| n.faults_injected);
    }
    assert!(faults_total > 0, "sweep injected no faults — vacuous");
}

#[test]
fn enospc_window_degrades_and_recovers_des() {
    let budget = 70_000usize;
    let reference = opcdm_run(&small(), MrtsConfig::out_of_core(2, budget));
    for seed in [1u64, 2] {
        let plan = FaultPlan::new(seed).with_enospc_window(4, 6);
        let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
        let sink = chk.clone();
        let r = opcdm_run_with(
            &small(),
            MrtsConfig::out_of_core(2, budget).with_faults(plan),
            move |rt| rt.attach_audit(sink),
        );
        assert!(
            chk.violations().is_empty(),
            "seed {seed}: {:?}",
            chk.violations()
        );
        assert!(
            r.stats.total_of(|n| n.degraded_entries) > 0,
            "seed {seed}: full disk never entered degraded mode"
        );
        // Degraded windows pause eviction, which reorders refinement;
        // the mesh stays equally valid but may differ slightly.
        let ratio = r.elements as f64 / reference.elements as f64;
        assert!(
            (0.97..1.03).contains(&ratio),
            "seed {seed}: degraded run changed the mesh materially: {} vs {}",
            r.elements,
            reference.elements
        );
        assert!(
            r.stats.total_of(|n| n.stores) > 0,
            "seed {seed}: never spilled after recovery"
        );
    }
}

#[test]
fn enospc_window_degrades_and_recovers_threaded() {
    let budget = 70_000usize;
    // The threaded engine's spill count varies with thread interleaving;
    // open the window on the second store so any run that spills at all
    // walks into the full disk.
    let plan = FaultPlan::new(7).with_enospc_window(1, 6);
    let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
    let det = Arc::new(RaceDetector::new(2));
    let dir = tmp("t-enospc");
    let mut cfg = MrtsConfig::out_of_core(2, budget).with_faults(plan);
    cfg.spill_dir = Some(dir.clone());
    let (sink, races) = (chk.clone(), det.clone());
    let r = opcdm_run_threaded_with(&small(), cfg, move |rt| {
        rt.attach_audit(sink);
        rt.attach_race_detector(races);
    });
    let _ = std::fs::remove_dir_all(dir);
    assert!(chk.violations().is_empty(), "{:?}", chk.violations());
    assert!(det.races().is_empty(), "{:?}", det.races());
    assert!(
        r.stats.total_of(|n| n.degraded_entries) > 0,
        "full disk never entered degraded mode"
    );
    assert!(r.elements > 0);
}

// ---------------------------------------------------------------------------
// Typed load-failure errors: a tiny two-object ping-pong under a budget
// that holds only one of them, with every load failing permanently.
// ---------------------------------------------------------------------------

const PAD_TAG: TypeTag = TypeTag(0x7A0);
const H_PING: HandlerId = HandlerId(0x7A1);

struct Pad {
    peer: Option<MobilePtr>,
    data: Vec<u8>,
}

impl Pad {
    fn decode(buf: &[u8]) -> Result<Box<dyn MobileObject>, ObjectDecodeError> {
        let mut r = PayloadReader::new(buf);
        let peer = if r.u8().unwrap() == 1 {
            Some(r.ptr().unwrap())
        } else {
            None
        };
        let data = r.bytes().unwrap().to_vec();
        Ok(Box::new(Pad { peer, data }))
    }
}

impl MobileObject for Pad {
    fn type_tag(&self) -> TypeTag {
        PAD_TAG
    }
    fn encode(&self, buf: &mut Vec<u8>) {
        let mut w = PayloadWriter::new();
        match self.peer {
            Some(p) => {
                w.u8(1).ptr(p);
            }
            None => {
                w.u8(0);
            }
        }
        w.bytes(&self.data);
        buf.extend_from_slice(&w.finish());
    }
    fn footprint(&self) -> usize {
        self.data.len() + 64
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn h_ping(obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    let hops = r.u64().unwrap();
    let pad = obj.as_any_mut().downcast_mut::<Pad>().unwrap();
    if hops > 0 {
        if let Some(peer) = pad.peer {
            let mut w = PayloadWriter::new();
            w.u64(hops - 1);
            ctx.send(peer, H_PING, w.finish());
        }
    }
}

/// Every load fails permanently; the first reload of a spilled object
/// must exhaust the retry budget and surface as `MrtsError::LoadFailed`.
fn dead_load_plan() -> FaultPlan {
    let mut plan = FaultPlan::new(0xDEAD);
    plan.load_eio_permille = 1000;
    plan
}

fn pad_cfg() -> MrtsConfig {
    MrtsConfig::out_of_core(1, 3_000).with_faults(dead_load_plan())
}

fn ping_payload(hops: u64) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(hops);
    w.finish()
}

#[test]
fn load_exhaustion_is_typed_error_des() {
    let mut rt = DesRuntime::new(pad_cfg());
    rt.register_type(PAD_TAG, Pad::decode);
    rt.register_handler(H_PING, "ping", h_ping);
    let a = MobilePtr::new(ObjectId::new(0, 0));
    let b = MobilePtr::new(ObjectId::new(0, 1));
    rt.create_object(
        0,
        Box::new(Pad {
            peer: Some(b),
            data: vec![0x11; 2_500],
        }),
        128,
    );
    rt.create_object(
        0,
        Box::new(Pad {
            peer: Some(a),
            data: vec![0x22; 2_500],
        }),
        128,
    );
    rt.post(a, H_PING, ping_payload(6));
    match rt.try_run() {
        Err(MrtsError::LoadFailed { attempts, .. }) => {
            assert!(attempts >= 1, "error must report the attempts made");
        }
        other => panic!("expected LoadFailed, got {other:?}"),
    }
}

#[test]
fn load_exhaustion_is_typed_error_threaded() {
    let dir = tmp("exhaust");
    let mut cfg = pad_cfg();
    cfg.spill_dir = Some(dir.clone());
    let mut rt = ThreadedRuntime::new(cfg);
    rt.register_type(PAD_TAG, Pad::decode);
    rt.register_handler(H_PING, "ping", h_ping);
    let a = MobilePtr::new(ObjectId::new(0, 0));
    let b = MobilePtr::new(ObjectId::new(0, 1));
    rt.create_object(
        0,
        Box::new(Pad {
            peer: Some(b),
            data: vec![0x11; 2_500],
        }),
        128,
    );
    rt.create_object(
        0,
        Box::new(Pad {
            peer: Some(a),
            data: vec![0x22; 2_500],
        }),
        128,
    );
    rt.post(a, H_PING, ping_payload(6));
    let res = rt.try_run();
    let _ = std::fs::remove_dir_all(dir);
    match res {
        Err(MrtsError::LoadFailed { attempts, .. }) => {
            assert!(attempts >= 1, "error must report the attempts made");
        }
        other => panic!("expected LoadFailed, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Kill-between-phases recovery: phase 1 meshes a coarse workload, the
// checkpoint is the phase barrier, phase 2 retunes every subdomain to a
// finer workload and refines again. The crashed path persists the
// checkpoint segmented on disk, "dies" (drops the runtime), reads the
// checkpoint back — past a torn tail — and must finish with the mesh the
// uninterrupted path produced.
// ---------------------------------------------------------------------------

const H_RETUNE: HandlerId = HandlerId(0x902);

fn h_retune(obj: &mut dyn MobileObject, ctx: &mut Ctx, _payload: &[u8]) {
    let so = obj.as_any_mut().downcast_mut::<SubObj>().unwrap();
    so.workload = Workload::uniform_square(9_000);
    ctx.send(ctx.self_ptr(), H_REFINE, Vec::new());
}

/// Phase 2 from a checkpoint on a cluster of `nodes` workers. Homes wrap
/// modulo the cluster size, so a checkpoint taken on two nodes restores
/// cleanly onto one (the crash re-homing path).
fn run_phase2_on(cp: &Checkpoint, spill: PathBuf, nodes: usize) -> (u64, u64) {
    let mut cfg = MrtsConfig::out_of_core(nodes, 300_000);
    cfg.spill_dir = Some(spill.clone());
    let mut rt = ThreadedRuntime::new(cfg);
    register_threaded(&mut rt);
    rt.register_handler(H_RETUNE, "retune", h_retune);
    cp.restore_into_threaded(&mut rt);
    for e in &cp.objects {
        rt.post(MobilePtr::new(e.oid), H_RETUNE, Vec::new());
    }
    rt.run();
    let counts = opcdm_collect_threaded(&rt);
    let _ = std::fs::remove_dir_all(spill);
    counts
}

fn run_phase2(cp: &Checkpoint, spill: PathBuf) -> (u64, u64) {
    run_phase2_on(cp, spill, 2)
}

#[test]
fn kill_between_phases_recovers_identical_mesh() {
    let p = PcdmParams::new(Workload::uniform_square(4_000), 2);
    let spill1 = tmp("kill-p1");
    let mut cfg = MrtsConfig::out_of_core(2, 300_000);
    cfg.spill_dir = Some(spill1.clone());
    let mut rt = opcdm_setup_threaded(&p, cfg);
    rt.run();
    let cp = rt.checkpoint();
    assert!(!cp.objects.is_empty());

    // Uninterrupted path: the in-memory checkpoint is the phase barrier.
    let uninterrupted = run_phase2(&cp, tmp("kill-a"));

    // Crashed path: persist, kill the runtime, restart from disk.
    let ckpt_dir = tmp("kill-ckpt");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    cp.write_segmented(&ckpt_dir).unwrap();
    drop(rt);
    let _ = std::fs::remove_dir_all(spill1);

    // A torn tail after the seal (crash mid-append of a later record)
    // must not impede recovery: the segment replay discards it.
    let mut segs: Vec<_> = std::fs::read_dir(&ckpt_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segs.sort();
    if let Some(last) = segs.last() {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(last).unwrap();
        f.write_all(&[0xFF, 0x00, 0xAB, 0x13, 0x37]).unwrap();
    }

    let recovered = Checkpoint::read_segmented(&ckpt_dir).unwrap();
    assert_eq!(recovered, cp, "recovered checkpoint must match the capture");
    let restarted = run_phase2(&recovered, tmp("kill-b"));
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    assert_eq!(
        restarted, uninterrupted,
        "restart from checkpoint must reproduce the uninterrupted mesh"
    );
    // Phase 2 actually refined past phase 1's mesh.
    let phase1: u64 = cp.objects.len() as u64;
    assert!(restarted.0 > phase1, "phase 2 must have refined the mesh");
}

// ---------------------------------------------------------------------------
// Network chaos: the same mesh workload over an unreliable fabric. The
// reliable-delivery layer (sequence numbers + acks + bounded-exponential
// retransmit) must absorb every seeded drop/dup/delay/reorder schedule
// without changing the mesh, executing a handler twice, or declaring
// termination with a message still in flight.
// ---------------------------------------------------------------------------

/// Mixed fabric schedule: drops under the bounded-drop guarantee, dups
/// for the receiver dedup, delays and reorders for the in-order release.
fn net_plan(seed: u64) -> NetFaultPlan {
    NetFaultPlan::new(0x6E7F_A017 ^ seed)
        .with_drops(80)
        .with_dups(60)
        .with_delay(50, Duration::from_micros(300))
        .with_reorder(40)
}

#[test]
fn des_net_chaos_schedules_preserve_mesh_and_counters() {
    let budget = 70_000usize;
    let reference = opcdm_run(&small(), MrtsConfig::out_of_core(2, budget));
    let (mut dropped, mut dups, mut acks) = (0usize, 0usize, 0usize);
    for seed in 0..12u64 {
        let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
        let sink = chk.clone();
        let r = opcdm_run_with(
            &small(),
            MrtsConfig::out_of_core(2, budget).with_net_faults(net_plan(seed)),
            move |rt| rt.attach_audit(sink),
        );
        // A clean checker run includes clean termination: Safra never
        // declared with an unacked message still in flight.
        assert!(
            chk.violations().is_empty(),
            "seed {seed} violated invariants: {:?}",
            chk.violations()
        );
        assert_eq!(
            (r.elements, r.vertices),
            (reference.elements, reference.vertices),
            "seed {seed}: fabric faults changed the mesh"
        );
        assert_eq!(
            r.stats.total_of(|n| n.messages_dropped),
            r.stats.total_of(|n| n.retransmits),
            "seed {seed}: every drop is recovered by exactly one retransmit"
        );
        dropped += r.stats.total_of(|n| n.messages_dropped);
        dups += r.stats.total_of(|n| n.dup_suppressed);
        acks += r.stats.total_of(|n| n.acks_sent);
    }
    assert!(dropped > 0, "sweep dropped no messages — vacuous");
    assert!(dups > 0, "sweep suppressed no duplicates — vacuous");
    assert!(acks > 0, "delivered data messages must be acknowledged");
}

#[test]
fn threaded_net_chaos_schedules_preserve_mesh_and_counters() {
    let budget = 70_000usize;
    let reference = {
        let mut cfg = MrtsConfig::out_of_core(2, budget);
        cfg.spill_dir = Some(tmp("net-ref"));
        let r = opcdm_run_threaded(&small(), cfg);
        let _ = std::fs::remove_dir_all(tmp("net-ref"));
        r
    };
    let (mut dropped, mut retrans, mut dups, mut acks) = (0usize, 0usize, 0usize, 0usize);
    for seed in 0..6u64 {
        let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
        let det = Arc::new(RaceDetector::new(2));
        let dir = tmp(&format!("net-{seed}"));
        let mut cfg = MrtsConfig::out_of_core(2, budget).with_net_faults(net_plan(seed));
        cfg.spill_dir = Some(dir.clone());
        let (sink, races) = (chk.clone(), det.clone());
        let r = opcdm_run_threaded_with(&small(), cfg, move |rt| {
            rt.attach_audit(sink);
            rt.attach_race_detector(races);
        });
        let _ = std::fs::remove_dir_all(dir);
        assert!(
            chk.violations().is_empty(),
            "seed {seed} violated invariants: {:?}",
            chk.violations()
        );
        assert!(
            det.races().is_empty(),
            "seed {seed} raced: {:?}",
            det.races()
        );
        assert_eq!(
            (r.elements, r.vertices),
            (reference.elements, reference.vertices),
            "seed {seed}: fabric faults changed the mesh"
        );
        assert_eq!(
            r.stats.total_of(|n| n.hints_invalidated),
            0,
            "seed {seed}: no node died, so no hint may be invalidated"
        );
        dropped += r.stats.total_of(|n| n.messages_dropped);
        retrans += r.stats.total_of(|n| n.retransmits);
        dups += r.stats.total_of(|n| n.dup_suppressed);
        acks += r.stats.total_of(|n| n.acks_sent);
    }
    assert!(dropped > 0, "sweep dropped no messages — vacuous");
    assert!(
        retrans >= dropped,
        "every drop needs at least one retransmit"
    );
    assert!(dups > 0, "sweep suppressed no duplicates — vacuous");
    assert!(acks > 0, "delivered data messages must be acknowledged");
}

/// Half of all transmissions are duplicated; the receiver's sequence-number
/// dedup must make every handler run exactly once. A double execution
/// drives the checker's outstanding-delivery count negative
/// (`Invariant::DuplicateDelivery`), and a mutated mesh would diverge.
#[test]
fn duplicate_storm_executes_handlers_exactly_once() {
    let budget = 70_000usize;
    let reference = {
        let mut cfg = MrtsConfig::out_of_core(2, budget);
        cfg.spill_dir = Some(tmp("dup-ref"));
        let r = opcdm_run_threaded(&small(), cfg);
        let _ = std::fs::remove_dir_all(tmp("dup-ref"));
        r
    };
    let plan = NetFaultPlan::new(0xD0D0).with_dups(500);
    let chk = Arc::new(InvariantChecker::new(FailMode::Collect));
    let dir = tmp("dup-storm");
    let mut cfg = MrtsConfig::out_of_core(2, budget).with_net_faults(plan);
    cfg.spill_dir = Some(dir.clone());
    let sink = chk.clone();
    let r = opcdm_run_threaded_with(&small(), cfg, move |rt| rt.attach_audit(sink));
    let _ = std::fs::remove_dir_all(dir);
    assert!(chk.violations().is_empty(), "{:?}", chk.violations());
    assert!(
        r.stats.total_of(|n| n.dup_suppressed) > 0,
        "a 500‰ dup storm must exercise the dedup path"
    );
    assert_eq!(
        (r.elements, r.vertices),
        (reference.elements, reference.vertices),
        "duplicated transmissions changed the mesh"
    );
}

// ---------------------------------------------------------------------------
// Directory self-healing: a three-node relay where X migrates
// 2 -> 0 -> 1 -> 2 (home again) and node 1 then dies. Node 0 performed
// the 0 -> 1 migration, so it deterministically holds the stale hint
// X -> 1; its next send to X must exhaust the retransmit budget against
// the dead node, invalidate the hint, and re-route to X's home — where
// the message is delivered. The final step sends to an object *homed* on
// the dead node, for which no fallback exists: that is the typed
// `NodeUnreachable` error.
// ---------------------------------------------------------------------------

const SAGA_TAG: TypeTag = TypeTag(0x5A6);
const H_SAGA: HandlerId = HandlerId(0x5A7);

struct Saga {
    x: MobilePtr,
    a: MobilePtr,
    b: MobilePtr,
}

impl Saga {
    fn decode(buf: &[u8]) -> Result<Box<dyn MobileObject>, ObjectDecodeError> {
        let mut r = PayloadReader::new(buf);
        Ok(Box::new(Saga {
            x: r.ptr().unwrap(),
            a: r.ptr().unwrap(),
            b: r.ptr().unwrap(),
        }))
    }
}

impl MobileObject for Saga {
    fn type_tag(&self) -> TypeTag {
        SAGA_TAG
    }
    fn encode(&self, buf: &mut Vec<u8>) {
        let mut w = PayloadWriter::new();
        w.ptr(self.x).ptr(self.a).ptr(self.b);
        buf.extend_from_slice(&w.finish());
    }
    fn footprint(&self) -> usize {
        96
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn h_saga(obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let s = obj.as_any_mut().downcast_mut::<Saga>().unwrap();
    let (x, a, b) = (s.x, s.a, s.b);
    let me = ctx.self_ptr();
    match payload[0] {
        // A kicks the relay off.
        0 => ctx.send(x, H_SAGA, vec![1]),
        // X walks 2 -> 0 -> 1 -> 2; the self-send chases it through the
        // forwarding tombstones. The 0 -> 1 leg plants node 0's hint.
        1 => {
            ctx.migrate(me, 0);
            ctx.send(me, H_SAGA, vec![2]);
        }
        2 => {
            ctx.migrate(me, 1);
            ctx.send(me, H_SAGA, vec![3]);
        }
        // Node 1's first and only handler execution: it dies right after,
        // with the install to node 2 already on the wire.
        3 => {
            ctx.migrate(me, 2);
            ctx.send(me, H_SAGA, vec![4]);
        }
        // X (home again on node 2) pings A so A's next send uses the
        // stale hint...
        4 => ctx.send(a, H_SAGA, vec![5]),
        // ...here: node 0 routes to dead node 1, exhausts, invalidates
        // the hint, re-routes to home — X must receive step 6.
        5 => ctx.send(x, H_SAGA, vec![6]),
        // B is homed on the dead node: no hint to heal, no fallback.
        6 => ctx.send(b, H_SAGA, vec![7]),
        _ => unreachable!("B is homed on the dead node; its handler must never run"),
    }
}

#[test]
fn stale_hint_self_heals_and_dead_home_is_typed_error() {
    let log = Arc::new(EventLog::new());
    let plan = NetFaultPlan::new(0xBEEF).with_kill_node(1, 1);
    let mut rt = ThreadedRuntime::new(MrtsConfig::in_core(3).with_net_faults(plan));
    rt.attach_audit(log.clone());
    rt.register_type(SAGA_TAG, Saga::decode);
    rt.register_handler(H_SAGA, "saga", h_saga);
    let a = MobilePtr::new(ObjectId::new(0, 0));
    let b = MobilePtr::new(ObjectId::new(1, 0));
    let x = MobilePtr::new(ObjectId::new(2, 0));
    let pa = rt.create_object(0, Box::new(Saga { x, a, b }), 128);
    let pb = rt.create_object(1, Box::new(Saga { x, a, b }), 128);
    let px = rt.create_object(2, Box::new(Saga { x, a, b }), 128);
    assert_eq!((pa.id, pb.id, px.id), (a.id, b.id, x.id));
    rt.post(a, H_SAGA, vec![0]);
    match rt.try_run() {
        Err(MrtsError::NodeUnreachable {
            node,
            dest,
            attempts,
        }) => {
            // Node 2 only reaches step 6 if node 0's re-route delivered
            // step 5's message past the invalidated hint — the error's
            // origin is itself the proof of self-healing.
            assert_eq!(
                (node, dest),
                (2, 1),
                "the unreachable send must be X's node contacting B's dead home"
            );
            assert!(attempts > 0, "exhaustion must report its attempts");
        }
        other => panic!("expected NodeUnreachable, got {other:?}"),
    }
    // The healing step is also visible in the event stream (audit events
    // compile into debug builds).
    if cfg!(debug_assertions) {
        let healed = log.snapshot().iter().any(|e| {
            matches!(
                e,
                RuntimeEvent::HintInvalidated { node: 0, oid, loc: 1 } if *oid == x.id
            )
        });
        assert!(
            healed,
            "node 0 must invalidate the stale hint before re-routing"
        );
    }
}

/// Cross-node heartbeat for the crash test: a bounded ping-pong between
/// one subdomain on each node. Each leg is sent only after the peer's
/// reply arrived, so while hops remain there is always a data message
/// bound for the other node — the killed node is guaranteed to leave one
/// unacknowledged in flight.
const H_CHAT: HandlerId = HandlerId(0x903);

fn h_chat(_obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    let hops = r.u64().unwrap();
    let peer = r.ptr().unwrap();
    if hops > 0 {
        let mut w = PayloadWriter::new();
        w.u64(hops - 1).ptr(ctx.self_ptr());
        ctx.send(peer, H_CHAT, w.finish());
    }
}

/// A node dies mid-refinement under fabric faults. The survivors must
/// surface the typed error (not hang), and restoring the pre-crash
/// checkpoint onto the surviving node alone — homes wrap modulo the
/// smaller cluster — must finish with the exact mesh the uninterrupted
/// two-node run produces.
#[test]
fn node_crash_rehomes_from_checkpoint_onto_survivors() {
    let p = PcdmParams::new(Workload::uniform_square(4_000), 2);
    let spill1 = tmp("net-kill-p1");
    let mut cfg = MrtsConfig::out_of_core(2, 300_000);
    cfg.spill_dir = Some(spill1.clone());
    let mut rt = opcdm_setup_threaded(&p, cfg);
    rt.run();
    let cp = rt.checkpoint();
    drop(rt);
    let _ = std::fs::remove_dir_all(spill1);
    assert!(!cp.objects.is_empty());

    let uninterrupted = run_phase2(&cp, tmp("net-kill-ref"));

    // Crashed attempt: node 1 goes silent 25 handlers into phase 2 while
    // the fabric drops and duplicates. The heartbeat keeps both nodes
    // talking, so node 0 is still owed replies when node 1 dies: its next
    // send exhausts the retransmit budget and brings the run down with
    // the typed error.
    let plan = NetFaultPlan::new(0xC4A5)
        .with_drops(60)
        .with_dups(40)
        .with_kill_node(1, 25);
    let spill2 = tmp("net-kill-crash");
    let mut cfg = MrtsConfig::out_of_core(2, 300_000).with_net_faults(plan);
    cfg.spill_dir = Some(spill2.clone());
    let mut rt = ThreadedRuntime::new(cfg);
    register_threaded(&mut rt);
    rt.register_handler(H_RETUNE, "retune", h_retune);
    rt.register_handler(H_CHAT, "chat", h_chat);
    cp.restore_into_threaded(&mut rt);
    for e in &cp.objects {
        rt.post(MobilePtr::new(e.oid), H_RETUNE, Vec::new());
    }
    let on_node = |n: u8| {
        cp.objects
            .iter()
            .map(|e| e.oid)
            .find(|o| o.home() == n as pumg::mrts::ids::NodeId)
            .expect("a subdomain homed on each node")
    };
    let mut w = PayloadWriter::new();
    w.u64(600).ptr(MobilePtr::new(on_node(1)));
    rt.post(MobilePtr::new(on_node(0)), H_CHAT, w.finish());
    let crashed = rt.try_run();
    drop(rt);
    let _ = std::fs::remove_dir_all(spill2);
    match crashed {
        Err(MrtsError::NodeUnreachable { dest: 1, .. }) => {}
        other => panic!("expected NodeUnreachable for the killed node, got {other:?}"),
    }

    // Re-home the same checkpoint onto the survivor and finish the mesh.
    let rehomed = run_phase2_on(&cp, tmp("net-kill-rehome"), 1);
    assert_eq!(
        rehomed, uninterrupted,
        "re-homed recovery must reproduce the uninterrupted mesh"
    );
}
