//! Cross-crate integration: the three PUMG methods, their MRTS ports, and
//! the in-core/out-of-core relationships the paper's evaluation rests on.

use pumg::geometry::Point2;
use pumg::methods::domain::{DomainSpec, SizingSpec, Workload};
use pumg::methods::nupdr::{nupdr_incore, NupdrParams};
use pumg::methods::ooc_nupdr::{onupdr_run, OnupdrOpts};
use pumg::methods::ooc_pcdm::opcdm_run;
use pumg::methods::ooc_updr::oupdr_run;
use pumg::methods::pcdm::{pcdm_incore, PcdmParams};
use pumg::methods::updr::{updr_incore, UpdrParams};
use pumg::mrts::config::MrtsConfig;

const BIG: u64 = 1 << 34; // "infinite" per-PE memory for baselines

fn graded(elements: u64) -> Workload {
    let domain = DomainSpec::unit_square();
    let h_avg = pumg::methods::domain::h_for_elements(domain.area(), elements);
    let h_min = h_avg / 1.6;
    Workload {
        domain,
        sizing: SizingSpec::Graded {
            focus: Point2::new(0.0, 0.0),
            h_min,
            h_max: h_min * 4.0,
            radius: 1.4,
        },
    }
}

#[test]
fn all_three_methods_mesh_the_same_square() {
    let elements = 4000;
    let updr = updr_incore(
        &UpdrParams::new(Workload::uniform_square(elements), 2),
        4,
        BIG,
    )
    .unwrap();
    let pcdm = pcdm_incore(
        &PcdmParams::new(Workload::uniform_square(elements), 2),
        4,
        BIG,
    )
    .unwrap();
    let nupdr = nupdr_incore(&NupdrParams::new(graded(elements)), 4, BIG).unwrap();
    // All land in the same ballpark for the same target size.
    for (name, r) in [("updr", &updr), ("pcdm", &pcdm), ("nupdr", &nupdr)] {
        let ratio = r.elements as f64 / elements as f64;
        assert!(
            (0.4..2.5).contains(&ratio),
            "{name}: {} elements for target {elements}",
            r.elements
        );
        assert!(r.stats.total > std::time::Duration::ZERO, "{name}");
    }
    // UPDR's buffer-zone overlap makes it produce ≥ PCDM's conforming
    // decomposition for equal sizing.
    assert!(updr.elements as f64 > 0.5 * pcdm.elements as f64);
}

#[test]
fn ports_track_their_baselines_in_core() {
    // The paper's figures 5–7: the MRTS port running in-core stays within
    // a modest overhead of the native baseline (paper: ≤12–18%). Our
    // virtual-time accounting measures the same real kernels plus runtime
    // machinery, so the counts must match and the time must be close.
    let p = UpdrParams::new(Workload::uniform_square(3000), 2);
    let base = updr_incore(&p, 4, BIG).unwrap();
    let port = oupdr_run(&p, MrtsConfig::in_core(4));
    // Element counts track the baseline tightly but not bit-exactly: the
    // runtime's interface-point exchanges arrive in measured-duration
    // order, and Ruppert refinement is insertion-order sensitive, so a
    // loaded machine can shift a handful of Steiner points.
    let drift = (port.elements as f64 - base.elements as f64).abs() / base.elements as f64;
    assert!(
        drift < 0.02,
        "port produced {} elements vs baseline {}",
        port.elements,
        base.elements
    );
    // Time ratios are noisy here: the harness runs tests on parallel
    // threads of one core, and both engines charge *measured* durations.
    // The precise overhead claims are made by the single-process report
    // binaries (EXPERIMENTS.md); this is a sanity bound.
    let overhead = port.total_secs() / base.total_secs();
    assert!(
        overhead < 6.0,
        "in-core OUPDR overhead {overhead:.2}x vs baseline"
    );
}

#[test]
fn out_of_core_ports_complete_where_baselines_die() {
    // The defining capability: a problem too large for the in-core
    // baseline's aggregate memory completes on the out-of-core port with
    // the same per-node budget.
    let p = PcdmParams::new(Workload::uniform_square(20_000), 3);
    // ~20k elements ≈ 800 KB of mesh arena; 2 × 250 KB cannot hold it.
    let budget_per_node = 250_000u64; // bytes
    let baseline = pcdm_incore(&p, 2, budget_per_node);
    assert!(
        baseline.is_err(),
        "baseline should exhaust 2x{budget_per_node}B"
    );
    let port = opcdm_run(&p, MrtsConfig::out_of_core(2, budget_per_node as usize));
    assert!(port.elements > 10_000);
    assert!(
        port.stats.total_of(|n| n.stores) > 0,
        "{}",
        port.stats.summary()
    );
}

#[test]
fn onupdr_out_of_core_tracks_in_core_counts() {
    let params = NupdrParams::new(graded(5000));
    let incore = onupdr_run(&params, MrtsConfig::in_core(2), OnupdrOpts::default());
    let budget = (incore.stats.peak_mem() / 4).max(60_000);
    let ooc = onupdr_run(
        &params,
        MrtsConfig::out_of_core(2, budget),
        OnupdrOpts::default(),
    );
    let ratio = ooc.elements as f64 / incore.elements as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "ooc {} vs incore {}",
        ooc.elements,
        incore.elements
    );
    // Out-of-core must actually pay for disk...
    assert!(ooc.stats.disk_pct() > 0.0);
    // ...and be slower than in-core, but boundedly so (paper fig. 6).
    assert!(ooc.stats.total >= incore.stats.total);
}

#[test]
fn speed_metric_roughly_flat_across_sizes() {
    // Tables I–III: Speed = S/(T·N) stays roughly constant as the problem
    // grows (the methods scale).
    let mut speeds = Vec::new();
    for elements in [2000u64, 4000, 8000] {
        let p = PcdmParams::new(Workload::uniform_square(elements), 2);
        let r = opcdm_run(&p, MrtsConfig::in_core(4));
        speeds.push(r.speed());
    }
    let max = speeds.iter().cloned().fold(0.0f64, f64::max);
    let min = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
    // Loose bound: measured-duration noise under parallel test threads can
    // easily stretch single runs severalfold (the tight flatness claim is
    // checked by the report binaries in a quiet process).
    assert!(
        max / min < 12.0,
        "speed should be roughly flat, got {speeds:?}"
    );
}
