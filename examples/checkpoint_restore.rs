//! Fault tolerance / elasticity: checkpoint a meshing run at a phase
//! boundary and restore it onto a *smaller* cluster.
//!
//! The paper's conclusion proposes exactly this: "check and restore
//! functionality for fault tolerance can be implemented with little effort
//! on top of the out-of-core subsystem". The snapshot reuses the same
//! serialization the spill path uses; the restored runtime may have a
//! different node count and memory budget — the out-of-core layer absorbs
//! the difference.
//!
//! ```sh
//! cargo run --release --example checkpoint_restore
//! ```

use pumg::methods::domain::Workload;
use pumg::methods::ooc_pcdm::{register, SubObj, H_REFINE, SUB_TAG};
use pumg::methods::pcdm::{build_subdomains, PcdmParams, SIDES};
use pumg::mrts::checkpoint::Checkpoint;
use pumg::mrts::config::MrtsConfig;
use pumg::mrts::des::DesRuntime;
use pumg::mrts::ids::{MobilePtr, NodeId, ObjectId};

fn count_elements(rt: &mut DesRuntime) -> u64 {
    let mut elements = 0;
    rt.for_each_object(|_, obj| {
        if let Some(so) = obj.as_any().downcast_ref::<SubObj>() {
            elements += so.sd.mesh.num_tris() as u64;
        }
    });
    elements
}

fn main() {
    // Phase 1: coarse meshing on 8 nodes.
    let coarse = PcdmParams::new(Workload::uniform_pipe(20_000), 4);
    let mut rt = DesRuntime::new(MrtsConfig::in_core(8));
    register(&mut rt);

    let subs = build_subdomains(&coarse);
    let n = subs.len();
    let mut counters = [0u64; 8];
    let ptrs: Vec<MobilePtr> = (0..n)
        .map(|i| {
            let node = (i % 8) as NodeId;
            let seq = counters[i % 8];
            counters[i % 8] += 1;
            MobilePtr::new(ObjectId::new(node, seq))
        })
        .collect();
    for sd in subs {
        let i = sd.idx;
        let mut neighbor_ptrs = [None; SIDES];
        for (np, nb) in neighbor_ptrs.iter_mut().zip(&sd.neighbors) {
            *np = nb.map(|nb| ptrs[nb]);
        }
        rt.create_object(
            (i % 8) as NodeId,
            Box::new(SubObj {
                sd,
                workload: coarse.workload,
                neighbor_ptrs,
            }),
            128,
        );
    }
    for &p in &ptrs {
        rt.post(p, H_REFINE, Vec::new());
    }
    let stats = rt.run();
    println!(
        "phase 1 on 8 nodes: {} elements in {:.3}s (virtual)",
        count_elements(&mut rt),
        stats.total.as_secs_f64()
    );

    // Snapshot at quiescence — bytes you could write to a file.
    let cp = rt.checkpoint();
    let bytes = cp.encode();
    println!(
        "checkpoint: {} objects, {:.1} KiB serialized",
        cp.objects.len(),
        bytes.len() as f64 / 1024.0
    );
    let cp = Checkpoint::decode(&bytes).expect("checkpoint round-trips");

    // Phase 2: restore onto TWO nodes with small budgets; the out-of-core
    // layer spills what no longer fits, and meshing continues.
    let mut rt2 = DesRuntime::new(MrtsConfig::out_of_core(2, 400 << 10));
    register(&mut rt2);
    let mut rt2 = cp.restore_into(rt2);
    assert_eq!(rt2.num_objects(), n);
    // Kick every subdomain again (e.g. the application tightened sizing —
    // here we just re-run refinement to quiescence).
    for &p in &ptrs {
        rt2.post(p, H_REFINE, Vec::new());
    }
    let stats2 = rt2.run();
    println!(
        "phase 2 on 2 nodes (400 KiB each): {} elements, {}",
        count_elements(&mut rt2),
        stats2.summary()
    );
    assert!(count_elements(&mut rt2) > 0);
    let _ = SUB_TAG;
}
