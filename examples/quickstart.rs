//! Quickstart: sequential quality meshing, then the same workload through
//! the MRTS out-of-core runtime.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pumg::delaunay::builder::MeshBuilder;
use pumg::delaunay::refine::{refine, RefineParams};
use pumg::geometry::Point2;
use pumg::methods::domain::Workload;
use pumg::methods::ooc_pcdm::opcdm_run;
use pumg::methods::pcdm::PcdmParams;
use pumg::mrts::config::MrtsConfig;

fn main() {
    // 1. Sequential: mesh the paper's pipe cross-section at uniform sizing.
    let mut mesh = MeshBuilder::pipe_cross_section(Point2::new(0.0, 0.0), 1.0, 0.3, 64)
        .build()
        .expect("valid PSLG");
    let report = refine(&mut mesh, &RefineParams::with_uniform_size(0.02));
    mesh.validate().expect("structurally valid");
    mesh.validate_delaunay().expect("constrained Delaunay");
    println!("sequential pipe mesh:");
    println!("  triangles      {:>10}", mesh.num_tris());
    println!("  steiner points {:>10}", report.inserted);
    println!("  segment splits {:>10}", report.seg_splits);
    println!("  area           {:>13.6}", mesh.total_area());

    // 2. Parallel + out-of-core: the same class of workload through PCDM
    //    on the MRTS virtual-time engine, with a memory budget that forces
    //    the runtime to spill subdomains to (modeled) disk.
    let params = PcdmParams::new(Workload::uniform_pipe(60_000), 4);
    // ~60k elements need ~2.2 MiB of mesh arena; 4 × 300 KiB forces the
    // runtime to keep most subdomains on disk. Compute is scaled ~30x to
    // model the paper's 650 MHz-class nodes (DESIGN.md §3).
    let mut cfg = MrtsConfig::out_of_core(4, 300 << 10);
    cfg.compute_scale = 32.0;
    let result = opcdm_run(&params, cfg);
    println!("\nOPCDM on MRTS (4 nodes, 300 KiB budget each):");
    println!("  elements   {:>12}", result.elements);
    println!("  virtual T  {:>10.3} s", result.total_secs());
    println!("  speed      {:>12.0} elements/s/PE", result.speed());
    println!("  {}", result.stats.summary());
    println!(
        "  overlap of comp/comm/disk: {:.1}%",
        result.stats.overlap_pct()
    );
}
