//! In-core vs out-of-core: the paper's headline trade-off on one screen.
//!
//! Runs the NUPDR graded-meshing workload three ways:
//!  * the in-core baseline on "enough" nodes,
//!  * the in-core baseline on half the nodes — which runs out of memory,
//!  * the MRTS out-of-core port on half the nodes — which completes.
//!
//! ```sh
//! cargo run --release --example out_of_core_meshing
//! ```

use pumg::methods::domain::Workload;
use pumg::methods::nupdr::{nupdr_incore_scaled, NupdrParams};
use pumg::methods::ooc_nupdr::{onupdr_run, OnupdrOpts};
use pumg::mrts::config::MrtsConfig;

fn main() {
    let elements = 120_000u64;
    let params = NupdrParams::new(Workload::graded_pipe(elements));
    // Budget chosen so 8 nodes fit the problem but 2 nodes do not (the
    // NUPDR baseline resides ~43 MiB of leaf-region meshes at 120k elements).
    let mem_per_node: u64 = 6 << 20; // 6 MiB

    println!("workload: graded pipe cross-section, ~{elements} elements");
    println!("memory:   {} KiB per node\n", mem_per_node >> 10);

    // 1. Plenty of nodes: the in-core baseline works.
    match nupdr_incore_scaled(&params, 8, mem_per_node, 32.0) {
        Ok(r) => println!(
            "NUPDR  in-core,  8 PEs: {:>9} elements, T = {:>8.3} s, speed {:>9.0}/s/PE",
            r.elements,
            r.total_secs(),
            r.speed()
        ),
        Err(e) => println!("NUPDR  in-core,  8 PEs: FAILED ({e})"),
    }

    // 2. Half the nodes: the aggregate memory no longer suffices.
    match nupdr_incore_scaled(&params, 2, mem_per_node, 32.0) {
        Ok(r) => println!(
            "NUPDR  in-core,  2 PEs: {:>9} elements, T = {:>8.3} s",
            r.elements,
            r.total_secs()
        ),
        Err(e) => println!("NUPDR  in-core,  2 PEs: FAILED ({e})"),
    }

    // 3. The out-of-core port on the same 2 nodes completes by spilling.
    //    Its resident state is the leaves' point sets (not whole region
    //    meshes), so to exercise the disk we give it a deliberately small
    //    512 KiB budget — a fraction of what the baseline needed.
    let mut cfg = MrtsConfig::out_of_core(2, 512 << 10);
    cfg.compute_scale = 32.0; // period-appropriate CPU speed (DESIGN.md §3)
    let r = onupdr_run(&params, cfg, OnupdrOpts::default());
    println!(
        "ONUPDR out-of-core, 2 PEs (512 KiB each): {:>6} elements, T = {:>8.3} s, speed {:>9.0}/s/PE",
        r.elements,
        r.total_secs(),
        r.speed()
    );
    println!("  {}", r.stats.summary());
    println!(
        "  disk traffic: {:.1} MiB out, {:.1} MiB back",
        r.stats.bytes_to_disk() as f64 / (1 << 20) as f64,
        r.stats.bytes_from_disk() as f64 / (1 << 20) as f64,
    );
    println!(
        "  comp/comm/disk overlap: {:.1}% (the runtime hides I/O latency behind computation)",
        r.stats.overlap_pct()
    );
}
