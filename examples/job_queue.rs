//! The paper's Figure 1 motivation, live: queue waits on a shared cluster
//! grow steeply with the number of requested nodes, so an out-of-core job
//! on few nodes can beat an in-core job on many nodes to the finish line.
//!
//! ```sh
//! cargo run --release --example job_queue
//! ```

use pumg::schedsim::{generate_trace, simulate, wait_by_width, SchedConfig, TraceConfig};

fn main() {
    let cluster = 128;
    let trace = generate_trace(
        cluster,
        &TraceConfig {
            n_jobs: 4000,
            mean_interarrival: 100.0,
            mean_runtime: 3600.0,
            seed: 11,
        },
    );
    let records = simulate(&SchedConfig::default(), &trace);

    println!(
        "{cluster}-node cluster, FCFS + EASY backfilling, {} jobs\n",
        trace.len()
    );
    println!("{:>10} {:>14} {:>8}", "nodes", "avg wait", "jobs");
    for (width, wait, n) in wait_by_width(&records) {
        println!("{width:>10} {:>11.1} min {n:>8}", wait / 60.0);
    }

    // The introduction example: PCDM needs 64 GB ≈ 32 nodes in-core
    // (310 s) or can run out-of-core on 16 nodes (731 s).
    let by = wait_by_width(&records);
    let wait_of = |w: usize| {
        by.iter()
            .min_by_key(|(x, _, _)| x.abs_diff(w))
            .map(|&(_, m, _)| m)
            .unwrap_or(0.0)
    };
    let in_core = wait_of(32) + 310.0;
    let out_of_core = wait_of(16) + 731.0;
    println!("\nthe paper's example (238M-element PCDM mesh):");
    println!(
        "  in-core,     32 nodes: wait {:>6.1} min + run  5.2 min = {:>6.1} min",
        wait_of(32) / 60.0,
        in_core / 60.0
    );
    println!(
        "  out-of-core, 16 nodes: wait {:>6.1} min + run 12.2 min = {:>6.1} min",
        wait_of(16) / 60.0,
        out_of_core / 60.0
    );
    if out_of_core < in_core {
        println!("  → the out-of-core job finishes first.");
    } else {
        println!("  → under this trace the in-core job finishes first (low contention).");
    }
}
