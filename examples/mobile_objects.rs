//! Programming the runtime directly: a custom mobile-object application.
//!
//! A 1-D heat-diffusion stencil where every strip of the rod is a mobile
//! object; step-tagged `ghost` messages carry edge values to the neighbors
//! (the classic async stencil: a strip relaxes step *k* once it holds both
//! neighbors' step-*k* ghosts, so neighbors may run at most one step
//! apart). The same application code executes on both engines:
//!
//!  * the deterministic virtual-time engine (used by the benchmarks), and
//!  * the threaded engine (one OS thread per node, real spill files,
//!    Safra termination detection),
//!
//! and both must compute bit-identical physics.
//!
//! ```sh
//! cargo run --release --example mobile_objects
//! ```

use pumg::mrts::codec::{PayloadReader, PayloadWriter};
use pumg::mrts::compute::ExecutorKind;
use pumg::mrts::config::MrtsConfig;
use pumg::mrts::ctx::Ctx;
use pumg::mrts::des::DesRuntime;
use pumg::mrts::ids::{HandlerId, MobilePtr, NodeId, ObjectId, TypeTag};
use pumg::mrts::object::{MobileObject, ObjectDecodeError};
use pumg::mrts::threaded::ThreadedRuntime;
use std::any::Any;
use std::collections::VecDeque;

const STRIP_TAG: TypeTag = TypeTag(1);
const H_START: HandlerId = HandlerId(1);
const H_GHOST: HandlerId = HandlerId(2);

/// A strip of the rod.
struct Strip {
    cells: Vec<f64>,
    left: Option<MobilePtr>,
    right: Option<MobilePtr>,
    /// Fixed boundary values used where a neighbor is missing.
    bc_left: f64,
    bc_right: f64,
    /// Step-tagged ghost values received per side (at most 2 queued: the
    /// async stencil keeps neighbors within one step of each other).
    ghosts_left: VecDeque<(u32, f64)>,
    ghosts_right: VecDeque<(u32, f64)>,
    /// Completed relaxation steps.
    step: u32,
    total_steps: u32,
    /// Has this strip already announced its current step's edge values?
    announced: bool,
}

impl Strip {
    fn decode(buf: &[u8]) -> Result<Box<dyn MobileObject>, ObjectDecodeError> {
        let mut r = PayloadReader::new(buf);
        let n = r.u32().unwrap() as usize;
        let mut cells = Vec::with_capacity(n);
        for _ in 0..n {
            cells.push(r.f64().unwrap());
        }
        let left = (r.u8().unwrap() == 1).then(|| r.ptr().unwrap());
        let right = (r.u8().unwrap() == 1).then(|| r.ptr().unwrap());
        let bc_left = r.f64().unwrap();
        let bc_right = r.f64().unwrap();
        let mut ghosts_left = VecDeque::new();
        for _ in 0..r.u32().unwrap() {
            ghosts_left.push_back((r.u32().unwrap(), r.f64().unwrap()));
        }
        let mut ghosts_right = VecDeque::new();
        for _ in 0..r.u32().unwrap() {
            ghosts_right.push_back((r.u32().unwrap(), r.f64().unwrap()));
        }
        let step = r.u32().unwrap();
        let total_steps = r.u32().unwrap();
        let announced = r.u8().unwrap() != 0;
        Ok(Box::new(Strip {
            cells,
            left,
            right,
            bc_left,
            bc_right,
            ghosts_left,
            ghosts_right,
            step,
            total_steps,
            announced,
        }))
    }
}

impl MobileObject for Strip {
    fn type_tag(&self) -> TypeTag {
        STRIP_TAG
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        let mut w = PayloadWriter::with_capacity(64 + 8 * self.cells.len());
        w.u32(self.cells.len() as u32);
        for &c in &self.cells {
            w.f64(c);
        }
        for p in [self.left, self.right] {
            match p {
                Some(p) => {
                    w.u8(1).ptr(p);
                }
                None => {
                    w.u8(0);
                }
            }
        }
        w.f64(self.bc_left).f64(self.bc_right);
        w.u32(self.ghosts_left.len() as u32);
        for &(s, v) in &self.ghosts_left {
            w.u32(s).f64(v);
        }
        w.u32(self.ghosts_right.len() as u32);
        for &(s, v) in &self.ghosts_right {
            w.u32(s).f64(v);
        }
        w.u32(self.step)
            .u32(self.total_steps)
            .u8(self.announced as u8);
        buf.extend_from_slice(&w.finish());
    }

    fn footprint(&self) -> usize {
        96 + 8 * self.cells.len() + 16 * (self.ghosts_left.len() + self.ghosts_right.len())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn strip_mut(obj: &mut dyn MobileObject) -> &mut Strip {
    obj.as_any_mut().downcast_mut::<Strip>().unwrap()
}

/// Announce this step's edge values to the neighbors, then relax as far as
/// the buffered ghosts allow.
fn advance(s: &mut Strip, ctx: &mut Ctx) {
    loop {
        if s.step >= s.total_steps {
            return;
        }
        if !s.announced {
            let first = *s.cells.first().unwrap();
            let last = *s.cells.last().unwrap();
            for (p, from_right, v) in [(s.left, 1u8, first), (s.right, 0u8, last)] {
                if let Some(p) = p {
                    let mut w = PayloadWriter::new();
                    w.u8(from_right).u32(s.step).f64(v);
                    ctx.send(p, H_GHOST, w.finish());
                }
            }
            s.announced = true;
        }
        // Ready when both sides have this step's ghost (or are fixed BCs).
        let step = s.step;
        let left_val = match (s.left, s.ghosts_left.front()) {
            (None, _) => Some(s.bc_left),
            (Some(_), Some(&(gs, v))) if gs == step => Some(v),
            _ => None,
        };
        let right_val = match (s.right, s.ghosts_right.front()) {
            (None, _) => Some(s.bc_right),
            (Some(_), Some(&(gs, v))) if gs == step => Some(v),
            _ => None,
        };
        let (Some(gl), Some(gr)) = (left_val, right_val) else {
            return; // wait for ghosts
        };
        if s.left.is_some() {
            s.ghosts_left.pop_front();
        }
        if s.right.is_some() {
            s.ghosts_right.pop_front();
        }
        // Jacobi relaxation with the step's ghosts as boundary.
        let n = s.cells.len();
        let mut next = s.cells.clone();
        for (i, nx) in next.iter_mut().enumerate() {
            let l = if i == 0 { gl } else { s.cells[i - 1] };
            let r = if i + 1 == n { gr } else { s.cells[i + 1] };
            *nx = 0.5 * (l + r);
        }
        s.cells = next;
        s.step += 1;
        s.announced = false;
    }
}

fn h_start(obj: &mut dyn MobileObject, ctx: &mut Ctx, _payload: &[u8]) {
    advance(strip_mut(obj), ctx);
}

fn h_ghost(obj: &mut dyn MobileObject, ctx: &mut Ctx, payload: &[u8]) {
    let mut r = PayloadReader::new(payload);
    let from_right = r.u8().unwrap() == 1;
    let step = r.u32().unwrap();
    let v = r.f64().unwrap();
    let s = strip_mut(obj);
    if from_right {
        s.ghosts_right.push_back((step, v));
    } else {
        s.ghosts_left.push_back((step, v));
    }
    advance(s, ctx);
}

fn build_strips(strips: usize, cells_per_strip: usize, steps: u32) -> Vec<Strip> {
    // Hot left end (1.0), cold right end (0.0).
    (0..strips)
        .map(|i| Strip {
            cells: vec![0.0; cells_per_strip],
            left: None,
            right: None,
            bc_left: if i == 0 { 1.0 } else { 0.0 },
            bc_right: 0.0,
            ghosts_left: VecDeque::new(),
            ghosts_right: VecDeque::new(),
            step: 0,
            total_steps: steps,
            announced: false,
        })
        .collect()
}

fn main() {
    let (nodes, strips, cells, steps) = (4usize, 16usize, 64usize, 200u32);

    let run = |des: bool| -> (String, f64, u32) {
        let ptrs: Vec<MobilePtr> = (0..strips)
            .map(|i| MobilePtr::new(ObjectId::new((i % nodes) as NodeId, (i / nodes) as u64)))
            .collect();
        let built = build_strips(strips, cells, steps);
        if des {
            let mut rt = DesRuntime::new(MrtsConfig::out_of_core(nodes, 2048));
            rt.register_type(STRIP_TAG, Strip::decode);
            rt.register_handler(H_START, "start", h_start);
            rt.register_handler(H_GHOST, "ghost", h_ghost);
            for (i, mut s) in built.into_iter().enumerate() {
                s.left = (i > 0).then(|| ptrs[i - 1]);
                s.right = (i + 1 < strips).then(|| ptrs[i + 1]);
                let created = rt.create_object((i % nodes) as NodeId, Box::new(s), 128);
                assert_eq!(created, ptrs[i]);
            }
            for &p in &ptrs {
                rt.post(p, H_START, Vec::new());
            }
            let stats = rt.run();
            let mut temp = 0.0;
            let mut done_steps = 0;
            rt.with_object(ptrs[0], |o| {
                let s = o.as_any().downcast_ref::<Strip>().unwrap();
                temp = s.cells[0];
                done_steps = s.step;
            });
            (stats.summary(), temp, done_steps)
        } else {
            let mut cfg = MrtsConfig::out_of_core(nodes, 2048).with_executor(ExecutorKind::Fifo);
            cfg.spill_dir =
                Some(std::env::temp_dir().join(format!("mrts-example-{}", std::process::id())));
            let spill = cfg.spill_dir.clone().unwrap();
            let mut rt = ThreadedRuntime::new(cfg);
            rt.register_type(STRIP_TAG, Strip::decode);
            rt.register_handler(H_START, "start", h_start);
            rt.register_handler(H_GHOST, "ghost", h_ghost);
            for (i, mut s) in built.into_iter().enumerate() {
                s.left = (i > 0).then(|| ptrs[i - 1]);
                s.right = (i + 1 < strips).then(|| ptrs[i + 1]);
                let created = rt.create_object((i % nodes) as NodeId, Box::new(s), 128);
                assert_eq!(created, ptrs[i]);
            }
            for &p in &ptrs {
                rt.post(p, H_START, Vec::new());
            }
            let stats = rt.run();
            let mut temp = 0.0;
            let mut done_steps = 0;
            rt.with_object(ptrs[0], |o| {
                let s = o.as_any().downcast_ref::<Strip>().unwrap();
                temp = s.cells[0];
                done_steps = s.step;
            });
            let _ = std::fs::remove_dir_all(spill);
            (stats.summary(), temp, done_steps)
        }
    };

    let (summary, temp, done) = run(true);
    println!("virtual-time engine ({nodes} nodes, 2 KiB budget each):");
    println!("  {summary}");
    println!("  leftmost cell after {done}/{steps} steps: {temp:.6}");
    assert_eq!(done, steps);

    let (summary2, temp2, done2) = run(false);
    println!("\nthreaded engine ({nodes} OS threads, real spill files):");
    println!("  {summary2}");
    println!("  leftmost cell after {done2}/{steps} steps: {temp2:.6}");
    assert_eq!(done2, steps);
    assert!(
        (temp - temp2).abs() < 1e-15,
        "both engines must compute identical physics ({temp} vs {temp2})"
    );
    println!("\nboth engines agree bit-for-bit.");
}
